//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform range sampling, and
//! `gen::<f64>() / gen::<u64>()`. The generator is xoshiro256++ seeded via
//! SplitMix64 — high quality, deterministic, and stable across platforms,
//! which is all the simulation needs (reproducibility matters here, not
//! cryptographic strength, and the exact stream is workspace-internal).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard deterministic generator.
    ///
    /// Not the upstream `rand::rngs::StdRng` stream (that one is ChaCha12
    /// and version-dependent anyway); every consumer in this workspace
    /// seeds explicitly and only relies on run-to-run determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
