//! Strategy combinators: how test inputs are generated.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding exactly one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Weighted union of same-typed strategies; built by [`crate::prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Builds from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}
