//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro,
//! range / tuple / `any` / `prop_map` / `prop_oneof!` / `collection::vec`
//! strategies, `prop_assert!` family, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its debug representation and
//!   the per-test deterministic seed; rerunning reproduces it exactly.
//! - **Deterministic by construction.** Each test derives its RNG seed from
//!   the test name, so failures are stable across runs and machines (the
//!   simulation workspace treats reproducibility as a feature, not a bug).
//! - Default `cases` is 64 (upstream: 256) to keep simulation-heavy suites
//!   fast; tests that need more override it via `proptest_config`.

#![allow(clippy::type_complexity)] // vendored shim mirrors upstream signatures

pub mod strategy;

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Vec strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing: config, RNG, and the error type `prop_assert!`
/// produces.
pub mod test_runner {
    /// The deterministic RNG driving every strategy.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (field-compatible subset of upstream).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Derives a per-test seed from its fully-qualified name so each test
    /// gets an independent but fully reproducible stream.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)` left: `{:?}`, right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)` both: `{:?}`",
            l
        );
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                (
                    ($weight) as u32,
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Defines property tests: each `#[test] fn name(binding in strategy, ...)`
/// runs `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = <$crate::test_runner::TestRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..cfg.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        $(let $binding = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        cfg.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 10u64..20, w in 0u8..3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 3);
        }

        #[test]
        fn vecs_respect_size(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in xs {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                3 => (0u8..10).prop_map(|x| x as u32),
                1 => Just(99u32),
            ],
        ) {
            prop_assert!(v < 10u32 || v == 99u32);
        }

        #[test]
        fn tuples_work(t in (any::<u8>(), 0u64..5, any::<bool>())) {
            let (_a, b, _c) = t;
            prop_assert!(b < 5);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1_000_000, 5..10);
        let mut r1 = <crate::test_runner::TestRng as rand::SeedableRng>::seed_from_u64(9);
        let mut r2 = <crate::test_runner::TestRng as rand::SeedableRng>::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
