//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the macro/API surface its benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! `iter_batched`, `black_box`) on top of a simple wall-clock loop that
//! reports mean ns/iter. No statistics, plots, or comparisons — just
//! honest timings so `cargo bench` keeps working offline.
//!
//! Under `cargo test` (which runs `harness = false` bench binaries with
//! `--test`-style smoke expectations) each bench runs a single iteration,
//! keeping the test suite fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The bench harness: collects named closures and times them.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// True when invoked from `cargo test`: run everything once, no timing.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            smoke,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim has no warm-up phase knob.
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Times `f` and prints `name ... mean ns/iter`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: if self.smoke {
                1
            } else {
                self.sample_size as u64
            },
            elapsed: Duration::ZERO,
            measured: 0,
        };
        f(&mut b);
        if self.smoke {
            println!("bench {name}: ok (smoke)");
        } else if b.measured > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.measured as f64;
            println!("bench {name}: {per_iter:.0} ns/iter ({} iters)", b.measured);
        } else {
            println!("bench {name}: no iterations recorded");
        }
        self
    }
}

/// Passed to bench closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measured: u64,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.measured += self.iters;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.measured += 1;
        }
    }
}

/// Declares a bench group: either `criterion_group!(name, fn_a, fn_b)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
