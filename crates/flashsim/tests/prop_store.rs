//! Property-based tests: every multi-version backend must behave like a
//! simple in-memory model of version chains under arbitrary operation
//! streams — including GC churn, watermark pruning, and packing.

use std::collections::BTreeMap;

use flashsim::{value, Backend, BackendKind, Key, NandConfig, StoreError};
use proptest::prelude::*;
use simkit::Sim;
use timesync::{ClientId, Timestamp, Version};

/// A scripted operation against the store.
#[derive(Debug, Clone)]
enum Op {
    /// Put key (index into a small key set) with the next timestamp.
    Put(u8),
    /// Snapshot read of key at a timestamp offset back in history.
    GetAt(u8, u8),
    /// Raise the watermark to "now - lag".
    Watermark(u8),
    /// Delete a key outright.
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(Op::Put),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, d)| Op::GetAt(k, d)),
        1 => any::<u8>().prop_map(Op::Watermark),
        1 => any::<u8>().prop_map(Op::Delete),
    ]
}

/// Reference model: per-key sorted version chains with the same watermark
/// pruning rule (keep the youngest version at-or-below the watermark).
#[derive(Default)]
struct Model {
    chains: BTreeMap<u64, Vec<(Version, u8)>>, // youngest first
    watermark: Timestamp,
}

impl Model {
    fn put(&mut self, key: u64, version: Version, tag: u8) {
        let chain = self.chains.entry(key).or_default();
        let pos = chain
            .iter()
            .position(|&(v, _)| v < version)
            .unwrap_or(chain.len());
        chain.insert(pos, (version, tag));
    }

    fn prune(&mut self, key: u64) {
        let wm = self.watermark;
        if let Some(chain) = self.chains.get_mut(&key) {
            if let Some(keep) = chain.iter().position(|&(v, _)| v.ts <= wm) {
                chain.truncate(keep + 1);
            }
        }
    }

    fn get_at(&self, key: u64, at: Timestamp) -> Option<(Version, u8)> {
        self.chains
            .get(&key)?
            .iter()
            .find(|&&(v, _)| v.ts <= at)
            .copied()
    }

    fn delete(&mut self, key: u64) {
        self.chains.remove(&key);
    }
}

fn check_backend(kind: BackendKind, ops: Vec<Op>, seed: u64) {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let nand = NandConfig {
        channels: 4,
        queue_depth: 32,
        ..NandConfig::default()
    }
    .sized_for(4_000, 512, 0.10);
    let store = Backend::new(kind, &h, nand);
    let store2 = store.clone();
    let hh = h.clone();
    sim.block_on(async move {
        let mut model = Model::default();
        let mut clock = 1_000u64; // model timestamps advance per op
        let client = ClientId(1);
        for op in ops {
            clock += 1_000;
            match op {
                Op::Put(k) => {
                    let key = (k % 16) as u64;
                    let version = Version::new(Timestamp(clock), client);
                    let tag = (clock % 251) as u8;
                    match store2
                        .put(Key::from(key), value(vec![tag; 24]), version)
                        .await
                    {
                        Ok(()) => {
                            model.put(key, version, tag);
                            model.prune(key);
                        }
                        Err(StoreError::CapacityExhausted) => {
                            // Backpressure is allowed; the model skips too.
                        }
                        Err(e) => panic!("unexpected put error: {e}"),
                    }
                }
                Op::GetAt(k, back) => {
                    let key = (k % 16) as u64;
                    let at = Timestamp(clock.saturating_sub(back as u64 * 500));
                    // Only timestamps at/above the watermark are contractually
                    // readable (GC may discard older history).
                    if at < model.watermark {
                        continue;
                    }
                    let got = store2.get_at(&Key::from(key), at).await;
                    let expect = model.get_at(key, at);
                    match (got, expect) {
                        (Ok(vv), Some((version, tag))) => {
                            assert_eq!(vv.version, version, "key {key} at {at:?}");
                            assert_eq!(vv.value[0], tag, "key {key} wrong payload");
                        }
                        (Err(StoreError::NotFound), None) => {}
                        (got, expect) => {
                            panic!("key {key} at {at:?}: store={got:?} model={expect:?}")
                        }
                    }
                }
                Op::Watermark(lag) => {
                    let wm = Timestamp(clock.saturating_sub(lag as u64 * 1_000));
                    if wm > model.watermark {
                        model.watermark = wm;
                        let keys: Vec<u64> = model.chains.keys().copied().collect();
                        for k in keys {
                            model.prune(k);
                        }
                    }
                    store2.set_watermark(wm);
                }
                Op::Delete(k) => {
                    let key = (k % 16) as u64;
                    store2.delete(&Key::from(key));
                    model.delete(key);
                }
            }
        }
        // Drain in-flight flushes/GC before the final audit.
        hh.sleep(std::time::Duration::from_millis(10)).await;
        for key in 0..16u64 {
            let got = store2.get_at(&Key::from(key), Timestamp(u64::MAX)).await;
            let expect = model.get_at(key, Timestamp(u64::MAX));
            match (got, expect) {
                (Ok(vv), Some((version, _))) => assert_eq!(vv.version, version),
                (Err(StoreError::NotFound), None) => {}
                (got, expect) => panic!("final key {key}: store={got:?} model={expect:?}"),
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32, ..ProptestConfig::default()
    })]

    #[test]
    fn mftl_matches_version_chain_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in 0u64..1_000,
    ) {
        check_backend(BackendKind::Mftl, ops, seed);
    }

    #[test]
    fn vftl_matches_version_chain_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in 0u64..1_000,
    ) {
        check_backend(BackendKind::Vftl, ops, seed);
    }

    #[test]
    fn dram_matches_version_chain_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in 0u64..1_000,
    ) {
        check_backend(BackendKind::Dram, ops, seed);
    }

    /// The NAND contract itself: any interleaving of writes through the
    /// unified FTL ends with every block either erased or holding
    /// sequentially-programmed pages, and the erase counters only grow.
    #[test]
    fn nand_wear_and_ordering_invariants(
        puts in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200),
        seed in 0u64..1_000,
    ) {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let nand = NandConfig {
            channels: 2,
            queue_depth: 16,
            blocks: 48,
            pages_per_block: 8,
            ..NandConfig::default()
        };
        let store = flashsim::mftl::UnifiedStore::new(
            h.clone(),
            nand,
            flashsim::mftl::MftlConfig::default(),
        );
        let dev = store.device().clone();
        let store2 = store.clone();
        sim.block_on(async move {
            let mut ts = 0u64;
            for (k, _) in puts {
                ts += 1_000;
                let _ = store2
                    .put(
                        Key::from((k % 8) as u64),
                        value(vec![k; 400]),
                        Version::new(Timestamp(ts), ClientId(0)),
                    )
                    .await;
                if ts.is_multiple_of(16_000) {
                    store2.set_watermark(Timestamp(ts.saturating_sub(8_000)));
                }
            }
        });
        // All erase counters are sane and free accounting consistent.
        let cfg = dev.config().clone();
        for b in 0..cfg.blocks {
            let programmed = dev.pages_programmed(b);
            prop_assert!(programmed <= cfg.pages_per_block);
        }
        prop_assert!(dev.free_blocks() <= cfg.blocks as usize);
    }
}
