//! NAND flash device model (Open-Channel SSD style).
//!
//! Models the physical constraints the paper's FTLs are built around (§2.2):
//!
//! - **page-grained programs, block-grained erases** — a page can be written
//!   once after its block is erased (*erase-before-write*);
//! - **sequential programming** within a block (as real NAND requires, and as
//!   log-structured FTLs naturally do);
//! - **timing**: configurable page-read / page-program / block-erase
//!   latencies (defaults: 50 µs / 100 µs / 1 ms, the §5 settings), dispatched
//!   over parallel channels with a bounded hardware queue depth;
//! - **endurance accounting**: per-block erase counts; the free-block
//!   allocator hands out the least-worn block (wear leveling).
//!
//! Pages store typed payloads (`P`) rather than raw bytes so FTLs can keep
//! structured tuples without serialization overhead in the simulator; space
//! accounting uses the configured geometry, not `size_of::<P>()`.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use crate::oob::{PageOob, ScannedPage};

use simkit::sync::Semaphore;
use simkit::time::SimTime;
use simkit::SimHandle;

/// Geometry and timing of a simulated SSD.
#[derive(Debug, Clone)]
pub struct NandConfig {
    /// Bytes per flash page (accounting granularity).
    pub page_size: usize,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Total erase blocks on the device.
    pub blocks: u32,
    /// Independent channels; ops on different channels proceed in parallel.
    pub channels: u32,
    /// Hardware queue depth (max outstanding ops device-wide).
    pub queue_depth: usize,
    /// Page read latency.
    pub read_latency: Duration,
    /// Page program latency.
    pub write_latency: Duration,
    /// Block erase latency.
    pub erase_latency: Duration,
    /// Pages scanned per second by a mount-time recovery scan
    /// ([`NandDevice::mount_scan`]). Sequential OOB reads pipeline across
    /// all channels, so this is much faster than random page reads.
    pub mount_scan_rate: u64,
}

impl Default for NandConfig {
    /// The paper's evaluation device: 4 KB pages, 32 pages/block, 50 µs read,
    /// 100 µs write, 1 ms erase, queue depth 128 (§5), with 32 channels and a
    /// modest default capacity suitable for tests.
    fn default() -> NandConfig {
        NandConfig {
            page_size: 4096,
            pages_per_block: 32,
            blocks: 1024,
            channels: 32,
            queue_depth: 128,
            read_latency: Duration::from_micros(50),
            write_latency: Duration::from_micros(100),
            erase_latency: Duration::from_millis(1),
            mount_scan_rate: 100_000,
        }
    }
}

impl NandConfig {
    /// Total pages on the device.
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Sizes the device to hold `tuples` records of `tuple_size` bytes at
    /// `utilization` (e.g. 0.5 = half full), keeping other parameters.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    pub fn sized_for(mut self, tuples: u64, tuple_size: usize, utilization: f64) -> NandConfig {
        assert!(utilization > 0.0 && utilization <= 1.0);
        let per_page = (self.page_size / tuple_size).max(1) as u64;
        let data_pages = tuples.div_ceil(per_page);
        let need_pages = (data_pages as f64 / utilization).ceil() as u64;
        self.blocks = (need_pages.div_ceil(self.pages_per_block as u64)).max(4) as u32;
        self
    }
}

/// A physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysLoc {
    /// Erase-block index.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl std::fmt::Display for PhysLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}p{}", self.block, self.page)
    }
}

/// Violations of the NAND programming contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// Attempt to program a page that is not the block's next free page
    /// (out-of-order program or write to a non-erased page).
    ProgramOrder {
        /// The offending address.
        loc: PhysLoc,
        /// The page the block expects to be programmed next.
        expected_page: u32,
    },
    /// Read of a page that has never been programmed since its last erase.
    ReadUnwritten(PhysLoc),
    /// Address out of the device's range.
    OutOfRange(PhysLoc),
    /// Erase requested on a block currently in the free pool.
    EraseFreeBlock(u32),
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::ProgramOrder { loc, expected_page } => write!(
                f,
                "out-of-order program at {loc}; block expects page {expected_page}"
            ),
            NandError::ReadUnwritten(loc) => write!(f, "read of unwritten page {loc}"),
            NandError::OutOfRange(loc) => write!(f, "address {loc} out of range"),
            NandError::EraseFreeBlock(b) => write!(f, "erase of free block b{b}"),
        }
    }
}

impl std::error::Error for NandError {}

/// Device activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NandStats {
    /// Pages read.
    pub page_reads: u64,
    /// Pages programmed.
    pub page_writes: u64,
    /// Blocks erased.
    pub block_erases: u64,
    /// Operations that needed an injected media-error recovery retry.
    pub media_retries: u64,
    /// Blocks retired as worn out instead of returning to the free pool.
    pub retired_blocks: u64,
    /// Pages whose in-flight program was torn by a power failure.
    pub torn_pages: u64,
}

/// Injectable flash media faults (see [`NandDevice::inject_media_faults`]).
///
/// Media errors model ECC-recoverable bit errors: the operation still
/// succeeds but pays `recovery_latency` extra device time (real controllers
/// retry with tuned read-reference voltages). Worn-block retirement models
/// end-of-life blocks: the next `retire_next_erases` erases complete but
/// permanently remove their block from the free pool, shrinking usable
/// capacity the way bad-block management does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MediaFaultConfig {
    /// Probability a page read needs error recovery.
    pub read_error_prob: f64,
    /// Probability a page program needs error recovery.
    pub program_error_prob: f64,
    /// Extra device occupancy per recovery.
    pub recovery_latency: Duration,
    /// How many upcoming erases retire their block as worn out.
    pub retire_next_erases: u32,
}

impl MediaFaultConfig {
    fn is_noop(&self) -> bool {
        self.read_error_prob <= 0.0
            && self.program_error_prob <= 0.0
            && self.retire_next_erases == 0
    }
}

#[derive(Debug)]
struct BlockState<P> {
    pages: Vec<Option<P>>,
    oob: Vec<Option<PageOob>>,
    next_page: u32,
    erase_count: u32,
}

#[derive(Debug)]
struct NandInner<P> {
    blocks: Vec<BlockState<P>>,
    /// (erase_count, block) — allocation pops the least-worn block.
    free: BTreeSet<(u32, u32)>,
    channel_busy: Vec<SimTime>,
    stats: NandStats,
    /// Injected media faults; `None` = healthy device.
    faults: Option<MediaFaultConfig>,
    /// Trace sink for `FlashOp`/`GcRun` events; disabled by default.
    tracer: obskit::Tracer,
    /// Node id stamped on emitted trace events.
    node: u64,
    /// Pages whose program has been issued but not yet completed; a power
    /// failure tears exactly these (BTreeSet for deterministic iteration).
    in_flight: BTreeSet<PhysLoc>,
}

/// A simulated NAND device holding typed page payloads.
///
/// Cloning shares the device.
#[derive(Debug)]
pub struct NandDevice<P> {
    handle: SimHandle,
    cfg: Rc<NandConfig>,
    inner: Rc<RefCell<NandInner<P>>>,
    queue: Semaphore,
}

impl<P> Clone for NandDevice<P> {
    fn clone(&self) -> Self {
        NandDevice {
            handle: self.handle.clone(),
            cfg: self.cfg.clone(),
            inner: self.inner.clone(),
            queue: self.queue.clone(),
        }
    }
}

impl<P: Clone + 'static> NandDevice<P> {
    /// Creates a device; all blocks start erased (in the free pool).
    pub fn new(handle: SimHandle, cfg: NandConfig) -> NandDevice<P> {
        let blocks = (0..cfg.blocks)
            .map(|_| BlockState {
                pages: (0..cfg.pages_per_block).map(|_| None).collect(),
                oob: (0..cfg.pages_per_block).map(|_| None).collect(),
                next_page: 0,
                erase_count: 0,
            })
            .collect();
        let free = (0..cfg.blocks).map(|b| (0, b)).collect();
        let queue = Semaphore::new(cfg.queue_depth);
        NandDevice {
            handle,
            inner: Rc::new(RefCell::new(NandInner {
                blocks,
                free,
                channel_busy: vec![SimTime::ZERO; cfg.channels as usize],
                stats: NandStats::default(),
                faults: None,
                tracer: obskit::Tracer::disabled(),
                node: 0,
                in_flight: BTreeSet::new(),
            })),
            cfg: Rc::new(cfg),
            queue,
        }
    }

    /// Device geometry.
    pub fn config(&self) -> &NandConfig {
        &self.cfg
    }

    /// Takes the least-worn erased block out of the free pool for appending.
    pub fn alloc_block(&self) -> Option<u32> {
        let mut inner = self.inner.borrow_mut();
        let first = *inner.free.iter().next()?;
        inner.free.remove(&first);
        Some(first.1)
    }

    /// Number of erased blocks in the free pool.
    pub fn free_blocks(&self) -> usize {
        self.inner.borrow().free.len()
    }

    /// Erase count of `block` (wear instrumentation).
    pub fn erase_count(&self, block: u32) -> u32 {
        self.inner.borrow().blocks[block as usize].erase_count
    }

    /// Number of pages programmed in `block` since its last erase.
    pub fn pages_programmed(&self, block: u32) -> u32 {
        self.inner.borrow().blocks[block as usize].next_page
    }

    /// Activity counters so far.
    pub fn stats(&self) -> NandStats {
        self.inner.borrow().stats
    }

    /// Installs media faults applied to subsequent operations. A no-op
    /// config uninstalls, same as [`NandDevice::clear_media_faults`]. All
    /// randomness comes from the simulation RNG, so faulty runs stay
    /// deterministic.
    pub fn inject_media_faults(&self, cfg: MediaFaultConfig) {
        self.inner.borrow_mut().faults = if cfg.is_noop() { None } else { Some(cfg) };
    }

    /// Removes any injected media faults.
    pub fn clear_media_faults(&self) {
        self.inner.borrow_mut().faults = None;
    }

    /// Extra device occupancy if a media-error recovery fires for an
    /// operation whose error probability is `prob_of`.
    fn media_recovery(&self, prob_of: impl Fn(&MediaFaultConfig) -> f64) -> Duration {
        let (prob, latency) = match &self.inner.borrow().faults {
            Some(f) => (prob_of(f), f.recovery_latency),
            None => return Duration::ZERO,
        };
        if prob > 0.0 && self.handle.rand_f64() < prob {
            self.inner.borrow_mut().stats.media_retries += 1;
            latency
        } else {
            Duration::ZERO
        }
    }

    /// Attaches a trace sink; subsequent operations emit
    /// [`obskit::TraceEvent::FlashOp`] events stamped with `node`.
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, node: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.tracer = tracer.clone();
        inner.node = node;
    }

    fn trace_op(&self, op: obskit::FlashOpKind) {
        let inner = self.inner.borrow();
        inner.tracer.record(
            self.handle.now().as_nanos(),
            obskit::TraceEvent::FlashOp {
                node: inner.node,
                op,
            },
        );
    }

    /// Records a [`obskit::TraceEvent::GcRun`] on behalf of the FTL layer
    /// driving garbage collection over this device.
    pub fn trace_gc(&self, reclaimed: u64) {
        let inner = self.inner.borrow();
        inner.tracer.record(
            self.handle.now().as_nanos(),
            obskit::TraceEvent::GcRun {
                node: inner.node,
                reclaimed,
            },
        );
    }

    fn check_range(&self, loc: PhysLoc) -> Result<(), NandError> {
        if loc.block >= self.cfg.blocks || loc.page >= self.cfg.pages_per_block {
            Err(NandError::OutOfRange(loc))
        } else {
            Ok(())
        }
    }

    /// Waits for a queue slot and a channel, occupying the channel for `dur`.
    async fn timed(&self, block: u32, dur: Duration) {
        let _permit = self.queue.acquire().await;
        let end = {
            let mut inner = self.inner.borrow_mut();
            let ch = (block % self.cfg.channels) as usize;
            let start = inner.channel_busy[ch].max(self.handle.now());
            let end = start + dur;
            inner.channel_busy[ch] = end;
            end
        };
        self.handle.sleep_until(end).await;
    }

    /// Programs `loc` with `payload`.
    ///
    /// # Errors
    ///
    /// [`NandError::ProgramOrder`] unless `loc.page` is exactly the block's
    /// next unwritten page — NAND cannot overwrite in place, which is the
    /// remap-on-write property SEMEL exploits.
    pub async fn program(&self, loc: PhysLoc, payload: P) -> Result<(), NandError> {
        self.program_inner(loc, payload, None).await
    }

    /// Programs `loc` with `payload` plus OOB metadata written atomically
    /// with the page, making it recoverable by [`NandDevice::mount_scan`].
    ///
    /// # Errors
    ///
    /// Same as [`NandDevice::program`].
    pub async fn program_with_oob(
        &self,
        loc: PhysLoc,
        payload: P,
        oob: PageOob,
    ) -> Result<(), NandError> {
        self.program_inner(loc, payload, Some(oob)).await
    }

    async fn program_inner(
        &self,
        loc: PhysLoc,
        payload: P,
        oob: Option<PageOob>,
    ) -> Result<(), NandError> {
        self.check_range(loc)?;
        {
            let mut inner = self.inner.borrow_mut();
            let blk = &mut inner.blocks[loc.block as usize];
            if blk.next_page != loc.page {
                return Err(NandError::ProgramOrder {
                    loc,
                    expected_page: blk.next_page,
                });
            }
            blk.pages[loc.page as usize] = Some(payload);
            blk.oob[loc.page as usize] = oob;
            blk.next_page += 1;
            inner.stats.page_writes += 1;
            inner.in_flight.insert(loc);
        }
        self.trace_op(obskit::FlashOpKind::Write);
        let recovery = self.media_recovery(|f| f.program_error_prob);
        self.timed(loc.block, self.cfg.write_latency + recovery)
            .await;
        self.inner.borrow_mut().in_flight.remove(&loc);
        Ok(())
    }

    /// Injects a power failure: every program still in flight is torn (its
    /// OOB checksum is corrupted, so [`NandDevice::mount_scan`] will report
    /// it torn and the FTL will discard it). Completed programs are durable.
    /// Returns the number of pages torn.
    pub fn power_fail(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let torn: Vec<PhysLoc> = inner.in_flight.iter().copied().collect();
        inner.in_flight.clear();
        let mut count = 0;
        for loc in torn {
            let slot = &mut inner.blocks[loc.block as usize].oob[loc.page as usize];
            // Raw programs (no OOB) need no marking: mount already treats
            // metadata-less pages as garbage.
            if let Some(oob) = slot {
                oob.tear();
            }
            count += 1;
        }
        inner.stats.torn_pages += count;
        count
    }

    /// Sequentially scans every programmed page's OOB area, charging
    /// `pages / mount_scan_rate` of device time. Returns one record per
    /// programmed page in (block, page) order; the FTL rebuilds its mapping
    /// table from these plus zero-time [`NandDevice::peek`]s of the
    /// payloads the scan just read.
    pub async fn mount_scan(&self) -> Vec<ScannedPage> {
        let mut out = Vec::new();
        {
            let inner = self.inner.borrow();
            for (b, blk) in inner.blocks.iter().enumerate() {
                for p in 0..blk.next_page {
                    out.push(ScannedPage {
                        loc: PhysLoc {
                            block: b as u32,
                            page: p,
                        },
                        oob: blk.oob[p as usize],
                    });
                }
            }
        }
        let rate = self.cfg.mount_scan_rate.max(1);
        let nanos = (out.len() as u64).saturating_mul(1_000_000_000) / rate;
        self.handle.sleep(Duration::from_nanos(nanos)).await;
        out
    }

    /// Reads the payload at `loc`.
    ///
    /// # Errors
    ///
    /// [`NandError::ReadUnwritten`] if the page was never programmed.
    pub async fn read(&self, loc: PhysLoc) -> Result<P, NandError> {
        self.check_range(loc)?;
        let payload = {
            let mut inner = self.inner.borrow_mut();
            let p = inner.blocks[loc.block as usize].pages[loc.page as usize]
                .clone()
                .ok_or(NandError::ReadUnwritten(loc))?;
            inner.stats.page_reads += 1;
            p
        };
        self.trace_op(obskit::FlashOpKind::Read);
        let recovery = self.media_recovery(|f| f.read_error_prob);
        self.timed(loc.block, self.cfg.read_latency + recovery)
            .await;
        Ok(payload)
    }

    /// Erases `block`, returning it to the free pool.
    ///
    /// # Errors
    ///
    /// [`NandError::EraseFreeBlock`] if the block is already free.
    pub async fn erase(&self, block: u32) -> Result<(), NandError> {
        if block >= self.cfg.blocks {
            return Err(NandError::OutOfRange(PhysLoc { block, page: 0 }));
        }
        {
            let mut inner = self.inner.borrow_mut();
            let count = inner.blocks[block as usize].erase_count;
            if inner.free.contains(&(count, block)) {
                return Err(NandError::EraseFreeBlock(block));
            }
            let blk = &mut inner.blocks[block as usize];
            for p in &mut blk.pages {
                *p = None;
            }
            for o in &mut blk.oob {
                *o = None;
            }
            blk.next_page = 0;
            blk.erase_count += 1;
            let count = blk.erase_count;
            // Worn-block retirement: the erase completes, but the block is
            // permanently withheld from the free pool (bad-block list).
            let retire = match &mut inner.faults {
                Some(f) if f.retire_next_erases > 0 => {
                    f.retire_next_erases -= 1;
                    true
                }
                _ => false,
            };
            if retire {
                inner.stats.retired_blocks += 1;
            } else {
                inner.free.insert((count, block));
            }
            inner.stats.block_erases += 1;
        }
        self.trace_op(obskit::FlashOpKind::Erase);
        self.timed(block, self.cfg.erase_latency).await;
        Ok(())
    }

    /// Zero-time read for recovery scans and tests (no device timing, no
    /// stats).
    pub fn peek(&self, loc: PhysLoc) -> Option<P> {
        self.check_range(loc).ok()?;
        self.inner.borrow().blocks[loc.block as usize].pages[loc.page as usize].clone()
    }

    /// Zero-time program used for bulk-loading experiment datasets. Enforces
    /// the same ordering contract as [`NandDevice::program`].
    ///
    /// # Errors
    ///
    /// Same as [`NandDevice::program`].
    pub fn install(&self, loc: PhysLoc, payload: P) -> Result<(), NandError> {
        self.install_inner(loc, payload, None)
    }

    /// Zero-time program with OOB metadata — the bulk-load counterpart of
    /// [`NandDevice::program_with_oob`], so preloaded datasets survive a
    /// mount scan.
    ///
    /// # Errors
    ///
    /// Same as [`NandDevice::program`].
    pub fn install_with_oob(
        &self,
        loc: PhysLoc,
        payload: P,
        oob: PageOob,
    ) -> Result<(), NandError> {
        self.install_inner(loc, payload, Some(oob))
    }

    fn install_inner(
        &self,
        loc: PhysLoc,
        payload: P,
        oob: Option<PageOob>,
    ) -> Result<(), NandError> {
        self.check_range(loc)?;
        let mut inner = self.inner.borrow_mut();
        let blk = &mut inner.blocks[loc.block as usize];
        if blk.next_page != loc.page {
            return Err(NandError::ProgramOrder {
                loc,
                expected_page: blk.next_page,
            });
        }
        blk.pages[loc.page as usize] = Some(payload);
        blk.oob[loc.page as usize] = oob;
        blk.next_page += 1;
        Ok(())
    }

    /// Zero-time OOB read for recovery logic and tests.
    pub fn peek_oob(&self, loc: PhysLoc) -> Option<PageOob> {
        self.check_range(loc).ok()?;
        self.inner.borrow().blocks[loc.block as usize].oob[loc.page as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;

    fn small_cfg() -> NandConfig {
        NandConfig {
            blocks: 8,
            pages_per_block: 4,
            channels: 2,
            queue_depth: 4,
            ..NandConfig::default()
        }
    }

    #[test]
    fn program_then_read_round_trips() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let b = dev.alloc_block().unwrap();
            dev.program(PhysLoc { block: b, page: 0 }, 77)
                .await
                .unwrap();
            let v = dev.read(PhysLoc { block: b, page: 0 }).await.unwrap();
            assert_eq!(v, 77);
        });
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let b = dev.alloc_block().unwrap();
            let err = dev
                .program(PhysLoc { block: b, page: 2 }, 1)
                .await
                .unwrap_err();
            assert!(matches!(
                err,
                NandError::ProgramOrder {
                    expected_page: 0,
                    ..
                }
            ));
        });
    }

    #[test]
    fn overwrite_requires_erase() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let b = dev.alloc_block().unwrap();
            for p in 0..4 {
                dev.program(PhysLoc { block: b, page: p }, p).await.unwrap();
            }
            // Block full: next_page is past the end, any program fails.
            let err = dev
                .program(PhysLoc { block: b, page: 0 }, 9)
                .await
                .unwrap_err();
            assert!(matches!(err, NandError::ProgramOrder { .. }));
            dev.erase(b).await.unwrap();
            // After erase, block is in the free pool again and writable.
            let b2 = dev.alloc_block().unwrap();
            dev.program(PhysLoc { block: b2, page: 0 }, 9)
                .await
                .unwrap();
        });
    }

    #[test]
    fn read_unwritten_rejected() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let err = dev.read(PhysLoc { block: 0, page: 0 }).await.unwrap_err();
            assert_eq!(err, NandError::ReadUnwritten(PhysLoc { block: 0, page: 0 }));
        });
    }

    #[test]
    fn wear_leveling_prefers_least_worn() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let b0 = dev.alloc_block().unwrap();
            dev.program(PhysLoc { block: b0, page: 0 }, 0)
                .await
                .unwrap();
            dev.erase(b0).await.unwrap();
            // b0 now has erase_count 1; allocator must prefer a 0-count block.
            let next = dev.alloc_block().unwrap();
            assert_ne!(next, b0);
            assert_eq!(dev.erase_count(b0), 1);
        });
    }

    #[test]
    fn operations_take_configured_time() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), small_cfg());
            let b = dev.alloc_block().unwrap();
            let t0 = hh.now();
            dev.program(PhysLoc { block: b, page: 0 }, 1).await.unwrap();
            assert_eq!(hh.now() - t0, Duration::from_micros(100));
            let t1 = hh.now();
            dev.read(PhysLoc { block: b, page: 0 }).await.unwrap();
            assert_eq!(hh.now() - t1, Duration::from_micros(50));
        });
    }

    #[test]
    fn same_channel_ops_serialize_different_channels_overlap() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), small_cfg());
            // channels=2, so blocks 0 and 2 share channel 0; 1 is channel 1.
            for b in [0u32, 1, 2] {
                let got = dev.alloc_block().unwrap();
                assert_eq!(got, b, "expect in-order allocation of unworn blocks");
            }
            let t0 = hh.now();
            let d0 = dev.clone();
            let d1 = dev.clone();
            let d2 = dev.clone();
            let j0 = hh.spawn(async move { d0.program(PhysLoc { block: 0, page: 0 }, 0).await });
            let j1 = hh.spawn(async move { d1.program(PhysLoc { block: 1, page: 0 }, 0).await });
            let j2 = hh.spawn(async move { d2.program(PhysLoc { block: 2, page: 0 }, 0).await });
            j0.await.unwrap();
            j1.await.unwrap();
            j2.await.unwrap();
            // Two writes on channel 0 serialize (200us); channel 1 overlaps.
            assert_eq!(hh.now() - t0, Duration::from_micros(200));
        });
    }

    #[test]
    fn queue_depth_limits_outstanding_ops() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let cfg = NandConfig {
                blocks: 8,
                pages_per_block: 4,
                channels: 8,
                queue_depth: 2,
                ..NandConfig::default()
            };
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), cfg);
            for _ in 0..4 {
                dev.alloc_block().unwrap();
            }
            let t0 = hh.now();
            let mut joins = Vec::new();
            for b in 0..4u32 {
                let d = dev.clone();
                joins.push(hh.spawn(async move {
                    d.program(PhysLoc { block: b, page: 0 }, 0).await.unwrap();
                }));
            }
            for j in joins {
                j.await;
            }
            // 4 writes on 4 distinct channels, but only 2 may be in flight:
            // two waves of 100us.
            assert_eq!(hh.now() - t0, Duration::from_micros(200));
        });
    }

    #[test]
    fn sized_for_allocates_enough_blocks() {
        let cfg = NandConfig::default().sized_for(10_000, 512, 0.5);
        // 8 tuples per 4KB page -> 1250 data pages -> 2500 total pages
        // -> ceil(2500/32) = 79 blocks.
        assert_eq!(cfg.blocks, 79);
        assert!(cfg.total_pages() >= 2500);
    }

    #[test]
    fn media_retry_adds_recovery_latency() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), small_cfg());
            dev.inject_media_faults(MediaFaultConfig {
                read_error_prob: 1.0,
                recovery_latency: Duration::from_micros(400),
                ..MediaFaultConfig::default()
            });
            let b = dev.alloc_block().unwrap();
            // Writes are unaffected (program_error_prob = 0).
            let t0 = hh.now();
            dev.program(PhysLoc { block: b, page: 0 }, 1).await.unwrap();
            assert_eq!(hh.now() - t0, Duration::from_micros(100));
            // Every read hits ECC recovery: 50us + 400us.
            let t1 = hh.now();
            dev.read(PhysLoc { block: b, page: 0 }).await.unwrap();
            assert_eq!(hh.now() - t1, Duration::from_micros(450));
            assert_eq!(dev.stats().media_retries, 1);
            // Clearing faults restores nominal latency.
            dev.clear_media_faults();
            let t2 = hh.now();
            dev.read(PhysLoc { block: b, page: 0 }).await.unwrap();
            assert_eq!(hh.now() - t2, Duration::from_micros(50));
            assert_eq!(dev.stats().media_retries, 1);
        });
    }

    #[test]
    fn worn_block_retirement_shrinks_free_pool() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(h, small_cfg());
            let free0 = dev.free_blocks();
            dev.inject_media_faults(MediaFaultConfig {
                retire_next_erases: 1,
                ..MediaFaultConfig::default()
            });
            let b0 = dev.alloc_block().unwrap();
            let b1 = dev.alloc_block().unwrap();
            // First erase retires the block instead of returning it.
            dev.erase(b0).await.unwrap();
            assert_eq!(dev.free_blocks(), free0 - 2);
            assert_eq!(dev.stats().retired_blocks, 1);
            // Budget exhausted: the next erase recycles normally.
            dev.erase(b1).await.unwrap();
            assert_eq!(dev.free_blocks(), free0 - 1);
            assert_eq!(dev.stats().retired_blocks, 1);
        });
    }

    #[test]
    fn power_fail_tears_only_in_flight_programs() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), small_cfg());
            let b = dev.alloc_block().unwrap();
            dev.program_with_oob(PhysLoc { block: b, page: 0 }, 10, PageOob::new(0, 1, 0, 0))
                .await
                .unwrap();
            let d = dev.clone();
            hh.spawn(async move {
                // This program is still in its 100us device time when the
                // power fails 10us in.
                let _ = d
                    .program_with_oob(PhysLoc { block: b, page: 1 }, 11, PageOob::new(1, 2, 0, 0))
                    .await;
            });
            hh.sleep(Duration::from_micros(10)).await;
            assert_eq!(dev.power_fail(), 1);
            assert_eq!(dev.stats().torn_pages, 1);
            let scan = dev.mount_scan().await;
            let torn: Vec<bool> = scan
                .iter()
                .filter(|s| s.loc.block == b)
                .map(|s| s.oob.map(|o| o.is_torn()).unwrap_or(true))
                .collect();
            assert_eq!(torn, vec![false, true]);
        });
    }

    #[test]
    fn mount_scan_charges_scan_time() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let cfg = NandConfig {
                mount_scan_rate: 1000, // 1ms per page
                ..small_cfg()
            };
            let dev: NandDevice<u32> = NandDevice::new(hh.clone(), cfg);
            let b = dev.alloc_block().unwrap();
            for p in 0..3 {
                dev.install_with_oob(
                    PhysLoc { block: b, page: p },
                    p,
                    PageOob::new(p as u64, 1, 0, 0),
                )
                .unwrap();
            }
            let t0 = hh.now();
            let scan = dev.mount_scan().await;
            assert_eq!(scan.len(), 3);
            assert_eq!(hh.now() - t0, Duration::from_millis(3));
            assert!(scan.iter().all(|s| !s.oob.unwrap().is_torn()));
        });
    }

    #[test]
    fn install_and_peek_bypass_timing() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let dev: NandDevice<u32> = NandDevice::new(h.clone(), small_cfg());
        let b = dev.alloc_block().unwrap();
        dev.install(PhysLoc { block: b, page: 0 }, 5).unwrap();
        assert_eq!(dev.peek(PhysLoc { block: b, page: 0 }), Some(5));
        assert_eq!(h.now(), SimTime::ZERO);
        assert_eq!(dev.stats().page_writes, 0);
        drop(sim);
    }
}
