//! Common key/value/error types shared by all storage backends.

use std::fmt;
use std::rc::Rc;

use timesync::{Timestamp, Version};

/// A storage key. Keys are arbitrary byte strings (the paper evaluates with
/// 16-byte keys); cloning is cheap (reference-counted).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Rc<[u8]>);

impl Key {
    /// Creates a key from raw bytes.
    pub fn new(bytes: impl Into<Rc<[u8]>>) -> Key {
        Key(bytes.into())
    }

    /// The key's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A stable 64-bit identifier for trace events: keys built by
    /// `Key::from(u64)` map back to their integer id, anything else to an
    /// FNV-1a hash of the bytes. Deterministic across runs and platforms.
    pub fn trace_id(&self) -> u64 {
        if self.0.len() == 16 && self.0[8..].iter().all(|&b| b == 0) {
            let mut id = [0u8; 8];
            id.copy_from_slice(&self.0[..8]);
            return u64::from_be_bytes(id);
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in self.0.iter() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl From<u64> for Key {
    /// Builds a 16-byte key from an integer id, mirroring the paper's
    /// fixed-size keys: 8 bytes of big-endian id, zero-padded.
    fn from(id: u64) -> Key {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&id.to_be_bytes());
        Key(Rc::from(&b[..]))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key(Rc::from(s.as_bytes()))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 16 && self.0[8..].iter().all(|&b| b == 0) {
            let mut id = [0u8; 8];
            id.copy_from_slice(&self.0[..8]);
            write!(f, "k{}", u64::from_be_bytes(id))
        } else {
            write!(f, "k{:02x?}", &self.0[..self.0.len().min(8)])
        }
    }
}

/// A stored value; cloning is cheap (reference-counted).
pub type Value = Rc<[u8]>;

/// Builds a [`Value`] from anything byte-like.
pub fn value(bytes: impl Into<Rc<[u8]>>) -> Value {
    bytes.into()
}

/// A version-stamped value returned by reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The version stamp of this value.
    pub version: Version,
    /// The payload.
    pub value: Value,
}

/// Errors surfaced by storage backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The key has no visible version at the requested timestamp.
    NotFound,
    /// A single-version backend cannot serve a snapshot read: the key was
    /// overwritten after the requested timestamp. Carries the version that
    /// clobbered the snapshot.
    SnapshotUnavailable(Version),
    /// The device is out of space and garbage collection cannot reclaim any.
    CapacityExhausted,
    /// A write carried a version not newer than the key's latest version;
    /// rejected to preserve at-most-once semantics (§3.3). Carries the
    /// current latest version.
    StaleWrite(Version),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound => write!(f, "key not found at requested timestamp"),
            StoreError::SnapshotUnavailable(v) => {
                write!(f, "snapshot unavailable: overwritten by {v}")
            }
            StoreError::CapacityExhausted => write!(f, "device capacity exhausted"),
            StoreError::StaleWrite(v) => write!(f, "write older than current version {v}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters describing backend activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed get operations.
    pub gets: u64,
    /// Completed put operations.
    pub puts: u64,
    /// Pages written to the device (including GC relocation traffic).
    pub pages_written: u64,
    /// Pages read from the device (including GC traffic).
    pub pages_read: u64,
    /// Blocks (or logical segments) erased/trimmed by garbage collection.
    pub gc_collections: u64,
    /// Live tuples relocated by garbage collection.
    pub gc_relocated: u64,
    /// Versions discarded as dead (superseded below the watermark).
    pub versions_pruned: u64,
}

/// Per-tuple on-flash metadata overhead (version stamp, lengths, checksum) —
/// the accounting constant that makes a 16-byte key + 472-byte value a
/// 512-byte stored tuple, as in the paper's evaluation setup.
pub const TUPLE_HEADER: usize = 24;

/// One stored `(key, value, version)` tuple — the unit the packing logic
/// fits into flash pages (§5: 512-byte tuples, up to 8 per 4 KB page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleRecord {
    /// The key.
    pub key: Key,
    /// The version stamp (recovered along with the data after failover).
    pub version: Version,
    /// The payload.
    pub value: Value,
}

impl TupleRecord {
    /// Bytes this tuple occupies on flash.
    pub fn accounted_len(&self) -> usize {
        self.key.len() + self.value.len() + TUPLE_HEADER
    }
}

/// A timestamp visibility query: the youngest version with `ts <= at` wins.
/// Shared helper for multi-version chains sorted in descending version order.
pub(crate) fn visible_at<T>(chain: &[(Version, T)], at: Timestamp) -> Option<&(Version, T)> {
    chain.iter().find(|(v, _)| v.ts <= at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timesync::ClientId;

    #[test]
    fn key_from_u64_is_16_bytes() {
        let k = Key::from(42u64);
        assert_eq!(k.len(), 16);
        assert_eq!(k.to_string(), "k42");
    }

    #[test]
    fn keys_compare_by_bytes() {
        assert_eq!(Key::from(7u64), Key::from(7u64));
        assert_ne!(Key::from(7u64), Key::from(8u64));
        assert_eq!(Key::from("abc"), Key::new(&b"abc"[..]));
    }

    #[test]
    fn visible_at_picks_youngest_not_newer() {
        let v = |ts| Version::new(Timestamp(ts), ClientId(0));
        let chain = vec![(v(30), "c"), (v(20), "b"), (v(10), "a")];
        assert_eq!(visible_at(&chain, Timestamp(25)).unwrap().1, "b");
        assert_eq!(visible_at(&chain, Timestamp(30)).unwrap().1, "c");
        assert_eq!(visible_at(&chain, Timestamp(9)), None);
        assert_eq!(visible_at(&chain, Timestamp(u64::MAX)).unwrap().1, "c");
    }
}
