//! A uniform handle over the four storage backends the paper evaluates:
//! DRAM, SFTL (single-version), VFTL (split multi-version), and MFTL
//! (unified multi-version).
//!
//! SEMEL/MILANA servers hold a [`Backend`] so experiment configurations can
//! swap storage without touching protocol code, mirroring the backend sweep
//! of Figures 7–8.

use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::dram::{DramConfig, DramStore};
use crate::mftl::{MftlConfig, UnifiedStore};
use crate::nand::NandConfig;
use crate::pftl::PageFtlConfig;
use crate::sftl::SingleVersionStore;
use crate::types::{Key, StoreError, StoreStats, Value, VersionedValue};
use crate::vftl::{SplitStore, VftlConfig};

/// What a mount-time recovery scan reconstructed from the durable medium
/// (see [`Backend::mount`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MountReport {
    /// Pages whose OOB the scan read.
    pub pages_scanned: u64,
    /// Torn (checksum-mismatch) pages discarded.
    pub torn_pages: u64,
    /// Distinct keys reconstructed into the mapping table.
    pub keys: u64,
    /// Recovered durable write floor: the max floor record over intact
    /// pages. `Timestamp::ZERO` if the store never noted a floor.
    pub floor: Timestamp,
}

/// Which storage backend to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Battery-backed DRAM / NVM, multi-version.
    Dram,
    /// Single-version KV on a generic FTL.
    Sftl,
    /// Split multi-version KV layer on a generic FTL.
    Vftl,
    /// Unified multi-version FTL (SEMEL SDF).
    Mftl,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackendKind::Dram => "DRAM",
            BackendKind::Sftl => "SFTL",
            BackendKind::Vftl => "VFTL",
            BackendKind::Mftl => "MFTL",
        };
        write!(f, "{s}")
    }
}

impl BackendKind {
    /// True if the backend can serve snapshot reads of old versions.
    pub fn is_multi_version(self) -> bool {
        !matches!(self, BackendKind::Sftl)
    }
}

/// A storage backend instance; cloning shares it.
#[derive(Debug, Clone)]
pub enum Backend {
    /// See [`DramStore`].
    Dram(DramStore),
    /// See [`SingleVersionStore`].
    Sftl(SingleVersionStore),
    /// See [`SplitStore`].
    Vftl(SplitStore),
    /// See [`UnifiedStore`].
    Mftl(UnifiedStore),
}

impl Backend {
    /// Builds a backend of the given kind over a fresh simulated device.
    /// Garbage-collection trigger levels scale with device size so large
    /// devices start collecting before free space becomes critical.
    pub fn new(kind: BackendKind, handle: &SimHandle, nand: NandConfig) -> Backend {
        let blocks = nand.blocks as usize;
        match kind {
            BackendKind::Dram => {
                Backend::Dram(DramStore::new(handle.clone(), DramConfig::default()))
            }
            BackendKind::Sftl => Backend::Sftl(SingleVersionStore::new(
                handle.clone(),
                nand,
                PageFtlConfig {
                    gc_low_water: (blocks / 16).max(3),
                    gc_reserve: (blocks / 64).max(1),
                    ..PageFtlConfig::default()
                },
            )),
            BackendKind::Vftl => {
                let segments = (nand.total_pages() as f64 * 0.81) as usize; // after both OPs
                Backend::Vftl(SplitStore::new(
                    handle.clone(),
                    nand,
                    VftlConfig {
                        gc_low_water: (segments / 16).max(8),
                        gc_reserve: (segments / 64).max(4),
                        ..VftlConfig::default()
                    },
                ))
            }
            BackendKind::Mftl => Backend::Mftl(UnifiedStore::new(
                handle.clone(),
                nand,
                MftlConfig {
                    gc_low_water: (blocks / 16).max(4),
                    gc_reserve: (blocks / 64).max(2),
                    ..MftlConfig::default()
                },
            )),
        }
    }

    /// This backend's kind.
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Dram(_) => BackendKind::Dram,
            Backend::Sftl(_) => BackendKind::Sftl,
            Backend::Vftl(_) => BackendKind::Vftl,
            Backend::Mftl(_) => BackendKind::Mftl,
        }
    }

    /// Writes a new version of `key` (primary path; rejects stale versions).
    ///
    /// # Errors
    ///
    /// See the concrete stores — [`StoreError::StaleWrite`] and
    /// [`StoreError::CapacityExhausted`] are common to all.
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        match self {
            Backend::Dram(s) => s.put(key, value, version).await,
            Backend::Sftl(s) => s.put(key, value, version).await,
            Backend::Vftl(s) => s.put(key, value, version).await,
            Backend::Mftl(s) => s.put(key, value, version).await,
        }
    }

    /// Applies a replicated write that may arrive out of order (backup path).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the device fills.
    pub async fn apply_unordered(
        &self,
        key: Key,
        value: Value,
        version: Version,
    ) -> Result<(), StoreError> {
        match self {
            Backend::Dram(s) => {
                s.apply_unordered(key, value, version).await;
                Ok(())
            }
            Backend::Sftl(s) => s.apply_unordered(key, value, version).await,
            Backend::Vftl(s) => s.apply_unordered(key, value, version).await,
            Backend::Mftl(s) => s.apply_unordered(key, value, version).await,
        }
    }

    /// Applies a batch of replicated/committed writes with atomic
    /// visibility where the backend supports it (all multi-version
    /// backends; SFTL reconciles within one page-program latency).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the device fills.
    pub async fn apply_batch_unordered(
        &self,
        items: Vec<(Key, Value, Version)>,
    ) -> Result<(), StoreError> {
        match self {
            Backend::Dram(s) => {
                s.apply_batch_unordered(items).await;
                Ok(())
            }
            Backend::Sftl(s) => s.apply_batch_unordered(items).await,
            Backend::Vftl(s) => s.apply_batch_unordered(items).await,
            Backend::Mftl(s) => s.apply_batch_unordered(items).await,
        }
    }

    /// Snapshot read: youngest version with timestamp `<= at`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`]; on SFTL also
    /// [`StoreError::SnapshotUnavailable`] for overwritten snapshots.
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        match self {
            Backend::Dram(s) => s.get_at(key, at).await,
            Backend::Sftl(s) => s.get_at(key, at).await,
            Backend::Vftl(s) => s.get_at(key, at).await,
            Backend::Mftl(s) => s.get_at(key, at).await,
        }
    }

    /// Reads the latest version of `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for missing keys.
    pub async fn get_latest(&self, key: &Key) -> Result<VersionedValue, StoreError> {
        match self {
            Backend::Dram(s) => s.get_latest(key).await,
            Backend::Sftl(s) => s.get_latest(key).await,
            Backend::Vftl(s) => s.get_latest(key).await,
            Backend::Mftl(s) => s.get_latest(key).await,
        }
    }

    /// Removes all versions of `key`.
    pub fn delete(&self, key: &Key) {
        match self {
            Backend::Dram(s) => s.delete(key),
            Backend::Sftl(s) => s.delete(key),
            Backend::Vftl(s) => s.delete(key),
            Backend::Mftl(s) => s.delete(key),
        }
    }

    /// Raises the GC watermark.
    pub fn set_watermark(&self, ts: Timestamp) {
        match self {
            Backend::Dram(s) => s.set_watermark(ts),
            Backend::Sftl(s) => s.set_watermark(ts),
            Backend::Vftl(s) => s.set_watermark(ts),
            Backend::Mftl(s) => s.set_watermark(ts),
        }
    }

    /// Attaches a trace sink: flash backends emit
    /// [`obskit::TraceEvent::FlashOp`] / [`obskit::TraceEvent::GcRun`]
    /// events stamped with `node`. DRAM has no device and stays silent.
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, node: u64) {
        match self {
            Backend::Dram(_) => {}
            Backend::Sftl(s) => s.attach_tracer(tracer, node),
            Backend::Vftl(s) => s.attach_tracer(tracer, node),
            Backend::Mftl(s) => s.attach_tracer(tracer, node),
        }
    }

    /// Injects media faults (ECC-recovery retries, worn-block retirement)
    /// into the underlying flash device. DRAM has no media to degrade.
    pub fn inject_media_faults(&self, cfg: crate::nand::MediaFaultConfig) {
        match self {
            Backend::Dram(_) => {}
            Backend::Sftl(s) => s.inject_media_faults(cfg),
            Backend::Vftl(s) => s.inject_media_faults(cfg),
            Backend::Mftl(s) => s.inject_media_faults(cfg),
        }
    }

    /// Store counters.
    pub fn stats(&self) -> StoreStats {
        match self {
            Backend::Dram(s) => s.stats(),
            Backend::Sftl(s) => s.stats(),
            Backend::Vftl(s) => s.stats(),
            Backend::Mftl(s) => s.stats(),
        }
    }

    /// Zero-time bulk load for experiment setup; call
    /// [`Backend::finish_load`] when done.
    pub fn bulk_load(&self, key: Key, value: Value, version: Version) {
        match self {
            Backend::Dram(s) => s.bulk_load(key, value, version),
            Backend::Sftl(s) => s.bulk_load(key, value, version),
            Backend::Vftl(s) => s.bulk_load(key, value, version),
            Backend::Mftl(s) => s.bulk_load(key, value, version),
        }
    }

    /// Completes a bulk load (flushes partial pages on packed backends).
    pub fn finish_load(&self) {
        match self {
            Backend::Dram(_) | Backend::Sftl(_) => {}
            Backend::Vftl(s) => s.finish_load(),
            Backend::Mftl(s) => s.finish_load(),
        }
    }

    /// All distinct keys currently stored, sorted by byte order — the
    /// deterministic iteration order migration sweeps rely on.
    pub fn keys(&self) -> Vec<Key> {
        match self {
            Backend::Dram(s) => s.keys(),
            Backend::Sftl(s) => s.keys(),
            Backend::Vftl(s) => s.keys(),
            Backend::Mftl(s) => s.keys(),
        }
    }

    /// Records the replica's durable write floor; subsequently programmed
    /// pages carry it in their OOB so [`Backend::mount`] can recover it.
    /// DRAM is battery-backed: the floor survives in a protected register.
    pub fn note_floor(&self, ts: Timestamp) {
        match self {
            Backend::Dram(s) => s.note_floor(ts),
            Backend::Sftl(s) => s.note_floor(ts),
            Backend::Vftl(s) => s.note_floor(ts),
            Backend::Mftl(s) => s.note_floor(ts),
        }
    }

    /// Injects a power failure: in-flight page programs are torn and all
    /// volatile state (mapping tables, packer queues) is dropped. The store
    /// must be [`Backend::mount`]ed before use. DRAM is battery-backed and
    /// survives intact. Returns the number of torn pages.
    pub fn power_fail(&self) -> u64 {
        match self {
            Backend::Dram(s) => s.power_fail(),
            Backend::Sftl(s) => s.power_fail(),
            Backend::Vftl(s) => s.power_fail(),
            Backend::Mftl(s) => s.power_fail(),
        }
    }

    /// Deterministic mount scan: rebuilds mapping tables and version chains
    /// from per-page OOB metadata, discarding torn pages, and recovers the
    /// durable write floor. Charges scan time proportional to programmed
    /// pages at the device's `mount_scan_rate`.
    pub async fn mount(&self) -> MountReport {
        match self {
            Backend::Dram(s) => s.mount(),
            Backend::Sftl(s) => s.mount().await,
            Backend::Vftl(s) => s.mount().await,
            Backend::Mftl(s) => s.mount().await,
        }
    }

    /// All versions of `key` currently visible, youngest first (SFTL reports
    /// at most one).
    pub fn versions(&self, key: &Key) -> Vec<Version> {
        match self {
            Backend::Dram(s) => s.versions(key),
            Backend::Sftl(s) => s.latest_version(key).into_iter().collect(),
            Backend::Vftl(s) => s.versions(key),
            Backend::Mftl(s) => s.versions(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::value;
    use simkit::Sim;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn nand() -> NandConfig {
        NandConfig {
            blocks: 32,
            pages_per_block: 4,
            ..NandConfig::default()
        }
    }

    #[test]
    fn all_backends_round_trip() {
        for kind in [
            BackendKind::Dram,
            BackendKind::Sftl,
            BackendKind::Vftl,
            BackendKind::Mftl,
        ] {
            let mut sim = Sim::new(7);
            let h = sim.handle();
            let b = Backend::new(kind, &h, nand());
            assert_eq!(b.kind(), kind);
            sim.block_on(async move {
                let k = Key::from(5u64);
                b.put(k.clone(), value(&b"hello"[..]), v(10)).await.unwrap();
                let got = b.get_at(&k, Timestamp(10)).await.unwrap();
                assert_eq!(got.version, v(10), "{kind}");
                assert_eq!(&got.value[..], b"hello", "{kind}");
            });
        }
    }

    #[test]
    fn multi_version_flag_matches_snapshot_capability() {
        for kind in [
            BackendKind::Dram,
            BackendKind::Sftl,
            BackendKind::Vftl,
            BackendKind::Mftl,
        ] {
            let mut sim = Sim::new(3);
            let h = sim.handle();
            let b = Backend::new(kind, &h, nand());
            sim.block_on(async move {
                let k = Key::from(1u64);
                b.put(k.clone(), value(&b"a"[..]), v(10)).await.unwrap();
                b.put(k.clone(), value(&b"b"[..]), v(20)).await.unwrap();
                let old = b.get_at(&k, Timestamp(15)).await;
                if kind.is_multi_version() {
                    assert_eq!(old.unwrap().version, v(10), "{kind}");
                } else {
                    assert_eq!(
                        old.unwrap_err(),
                        StoreError::SnapshotUnavailable(v(20)),
                        "{kind}"
                    );
                }
            });
        }
    }
}
