//! MFTL — the unified multi-version flash translation layer (SEMEL SDF, §3.1).
//!
//! The paper's third contribution: instead of stacking a KV store on a block
//! FTL (two mapping steps, two garbage collectors), MFTL maps each **key
//! directly to the physical flash location of each of its versions**, and
//! version management rides along with flash management:
//!
//! - the mapping table keeps a per-key chain of versions sorted by
//!   descending version stamp (Figure 3);
//! - writes are packed into pages by a **packing logic** that waits up to a
//!   bounded window (1 ms in §5) to fill a 4 KB page with 512 B tuples —
//!   fresh puts and GC-relocated tuples share the same packer;
//! - old versions are *free*: flash's remap-on-write leaves them in place;
//! - one unified garbage collector relocates live tuples and discards
//!   versions that fell below the watermark (§3.1) in the same pass.

use perfkit::FastMap;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use simkit::sync::{mpsc, oneshot, Semaphore};
use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::backend::MountReport;
use crate::nand::{NandConfig, NandDevice, PhysLoc};
use crate::oob::PageOob;
use crate::types::{Key, StoreError, StoreStats, TupleRecord, Value, VersionedValue};

/// One flash page's payload: the packed tuples.
pub type Page = Rc<Vec<TupleRecord>>;

/// Tuning for a [`UnifiedStore`].
#[derive(Debug, Clone)]
pub struct MftlConfig {
    /// Per-operation software overhead: one unified mapping-table access
    /// (§3.1 — SDF collapses the two-step translation into one).
    pub op_overhead: Duration,
    /// Maximum time a tuple waits in the packer before a partial page is
    /// flushed (the paper's 1 ms packing delay).
    pub packing_window: Duration,
    /// Background GC starts when free blocks drop to this level.
    pub gc_low_water: usize,
    /// Blocks reserved for GC's own relocation writes.
    pub gc_reserve: usize,
}

impl Default for MftlConfig {
    fn default() -> MftlConfig {
        MftlConfig {
            op_overhead: Duration::from_micros(1),
            packing_window: Duration::from_millis(1),
            gc_low_water: 4,
            gc_reserve: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Still in the packer (or an in-flight flush): generation + slot.
    Buffered { gen: u64, idx: usize },
    /// Persisted at a physical page, at tuple index `slot`.
    Flash { loc: PhysLoc, slot: u16 },
}

#[derive(Debug, Clone, Copy)]
struct MapEntry {
    version: Version,
    loc: Loc,
}

#[derive(Debug, Clone)]
enum Origin {
    /// A fresh put / replicated write.
    Fresh,
    /// GC relocation of a tuple previously at this location.
    Reloc { old: PhysLoc, old_slot: u16 },
}

#[derive(Debug)]
struct Pending {
    rec: TupleRecord,
    origin: Origin,
}

struct Batch {
    gen: u64,
    /// Which packing stream (append channel) this page belongs to.
    stream: usize,
    /// Mount epoch the batch was packed under; a flush completing after a
    /// power failure (stale epoch) must not touch the rebuilt mapping table.
    epoch: u64,
    pendings: Vec<Pending>,
    waiters: Vec<oneshot::Sender<Result<(), StoreError>>>,
    page: Page,
}

/// One packing stream: an open page buffer bound to its own append point.
/// Real SSDs program pages on many channels in parallel; modeling one
/// stream per channel reproduces the paper's put-latency behavior (partial
/// pages usually wait out the packing window; GC traffic fills them early).
#[derive(Debug)]
struct Stream {
    open: Vec<Pending>,
    open_bytes: usize,
    gen: u64,
    waiters: Vec<oneshot::Sender<Result<(), StoreError>>>,
    append: Option<(u32, u32)>,
}

struct MftlInner {
    map: FastMap<Key, Vec<MapEntry>>,
    streams: Vec<Stream>,
    next_stream: usize,
    next_gen: u64,
    /// Pages taken from the packer whose program is still in flight,
    /// readable by generation.
    flushing: FastMap<u64, Page>,
    /// Append points used only by the zero-time bulk loader (striped across
    /// channels like the runtime packing streams).
    load_append: Vec<Option<(u32, u32)>>,
    next_load_append: usize,
    live: Vec<u32>,
    /// Tuples ever written to each block since its last erase (live +
    /// garbage); the GC victim picker maximizes `written - live`.
    written: Vec<u32>,
    watermark: Timestamp,
    stats: StoreStats,
    gc_nudge: mpsc::Sender<()>,
    /// Packer state for zero-time bulk loading.
    load_buf: Vec<TupleRecord>,
    load_bytes: usize,
    /// Mount epoch: bumped by power-fail and mount so surviving background
    /// tasks (GC, in-flight flushes — spawned off-node, they outlive the
    /// server process) cannot corrupt freshly-mounted state.
    epoch: u64,
    /// Durable write-floor record stamped into each programmed page's OOB;
    /// recovered at mount as the max over intact pages.
    floor: Timestamp,
}

/// The unified multi-version FTL store. Cloning shares the store.
#[derive(Clone)]
pub struct UnifiedStore {
    handle: SimHandle,
    dev: NandDevice<Page>,
    cfg: Rc<MftlConfig>,
    inner: Rc<RefCell<MftlInner>>,
    gc_lock: Semaphore,
}

impl std::fmt::Debug for UnifiedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("UnifiedStore")
            .field("keys", &inner.map.len())
            .field("free_blocks", &self.dev.free_blocks())
            .finish()
    }
}

impl UnifiedStore {
    /// Creates an MFTL store over a fresh device and spawns its GC task.
    pub fn new(handle: SimHandle, nand: NandConfig, cfg: MftlConfig) -> UnifiedStore {
        let dev = NandDevice::new(handle.clone(), nand);
        let blocks = dev.config().blocks as usize;
        let n_streams = (dev.config().channels as usize).min((blocks / 8).max(1));
        let streams = (0..n_streams)
            .map(|i| Stream {
                open: Vec::new(),
                open_bytes: 0,
                gen: i as u64,
                waiters: Vec::new(),
                append: None,
            })
            .collect::<Vec<_>>();
        let (tx, rx) = mpsc::channel();
        let store = UnifiedStore {
            handle: handle.clone(),
            dev,
            cfg: Rc::new(cfg),
            inner: Rc::new(RefCell::new(MftlInner {
                map: FastMap::default(),
                next_gen: n_streams as u64,
                next_stream: 0,
                streams,
                flushing: FastMap::default(),
                load_append: vec![None; n_streams],
                next_load_append: 0,
                live: vec![0; blocks],
                written: vec![0; blocks],
                watermark: Timestamp::ZERO,
                stats: StoreStats::default(),
                gc_nudge: tx,
                load_buf: Vec::new(),
                load_bytes: 0,
                epoch: 0,
                floor: Timestamp::ZERO,
            })),
            gc_lock: Semaphore::new(1),
        };
        let gc = store.clone();
        handle.spawn(async move {
            while rx.recv().await.is_some() {
                while gc.dev.free_blocks() <= gc.cfg.gc_low_water {
                    if !gc.collect_once().await {
                        break;
                    }
                }
            }
        });
        store
    }

    /// The underlying device.
    pub fn device(&self) -> &NandDevice<Page> {
        &self.dev
    }

    /// Store-level counters (device counters live on [`UnifiedStore::device`]).
    pub fn stats(&self) -> StoreStats {
        let mut s = self.inner.borrow().stats;
        let d = self.dev.stats();
        s.pages_written = d.page_writes;
        s.pages_read = d.page_reads;
        s
    }

    /// Attaches a trace sink to the device (flash-op and GC events stamped
    /// with `node`).
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, node: u64) {
        self.dev.attach_tracer(tracer, node);
    }

    /// Injects media faults into the underlying device (fault campaigns).
    pub fn inject_media_faults(&self, cfg: crate::nand::MediaFaultConfig) {
        self.dev.inject_media_faults(cfg);
    }

    /// Writes a new version of `key`. Completes when the tuple is persisted
    /// (packed page programmed to flash).
    ///
    /// # Errors
    ///
    /// - [`StoreError::StaleWrite`] if `version` is not newer than the key's
    ///   latest version (at-most-once, §3.3).
    /// - [`StoreError::CapacityExhausted`] if the device is full of live data.
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        self.handle.sleep(self.cfg.op_overhead).await;
        {
            let inner = self.inner.borrow();
            if let Some(head) = inner.map.get(&key).and_then(|c| c.first()) {
                if version <= head.version {
                    return Err(StoreError::StaleWrite(head.version));
                }
            }
        }
        self.insert_and_wait(key, value, version, true).await
    }

    /// Applies a replicated write that may arrive out of order (backup path
    /// of SEMEL's inconsistent replication, §3.2). Duplicate versions are
    /// acknowledged without rewriting (idempotence).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the device is full of live data.
    pub async fn apply_unordered(
        &self,
        key: Key,
        value: Value,
        version: Version,
    ) -> Result<(), StoreError> {
        {
            let inner = self.inner.borrow();
            if let Some(chain) = inner.map.get(&key) {
                if chain.iter().any(|e| e.version == version) {
                    return Ok(());
                }
            }
        }
        self.insert_and_wait(key, value, version, false).await
    }

    /// Applies a batch of unordered writes with **atomic visibility**: every
    /// entry is installed in the mapping table before the method first
    /// yields, so no reader can observe a prefix of a committed
    /// transaction's writes. Completes when all tuples are persisted.
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the device fills.
    pub async fn apply_batch_unordered(
        &self,
        items: Vec<(Key, Value, Version)>,
    ) -> Result<(), StoreError> {
        let mut waiters = Vec::new();
        let mut batches = Vec::new();
        for (key, value, version) in items {
            {
                let inner = self.inner.borrow();
                if let Some(chain) = inner.map.get(&key) {
                    if chain.iter().any(|e| e.version == version) {
                        continue; // duplicate
                    }
                }
            }
            let rec = TupleRecord {
                key: key.clone(),
                version,
                value,
            };
            let (gen, idx, rx, to_flush) = self.enqueue(rec, Origin::Fresh);
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            let pos = chain
                .iter()
                .position(|e| e.version < version)
                .unwrap_or(chain.len());
            chain.insert(
                pos,
                MapEntry {
                    version,
                    loc: Loc::Buffered { gen, idx },
                },
            );
            let watermark = inner.watermark;
            let (pruned_flash, pruned) = prune_chain(inner.map.get_mut(&key).unwrap(), watermark);
            for loc in pruned_flash {
                inner.live[loc.block as usize] -= 1;
            }
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
            drop(inner);
            waiters.push(rx);
            if let Some(b) = to_flush {
                batches.push(b);
            }
        }
        for b in batches {
            let me = self.clone();
            self.handle.spawn(async move { me.flush(b).await });
        }
        for rx in waiters {
            rx.await.unwrap_or(Err(StoreError::CapacityExhausted))?;
        }
        Ok(())
    }

    async fn insert_and_wait(
        &self,
        key: Key,
        value: Value,
        version: Version,
        expect_head: bool,
    ) -> Result<(), StoreError> {
        let rec = TupleRecord {
            key: key.clone(),
            version,
            value,
        };
        let rx = {
            let (gen, idx, rx, to_flush) = self.enqueue(rec, Origin::Fresh);
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            let entry = MapEntry {
                version,
                loc: Loc::Buffered { gen, idx },
            };
            if expect_head {
                chain.insert(0, entry);
            } else {
                let pos = chain
                    .iter()
                    .position(|e| e.version < version)
                    .unwrap_or(chain.len());
                chain.insert(pos, entry);
            }
            let watermark = inner.watermark;
            let (pruned_flash, pruned) = prune_chain(inner.map.get_mut(&key).unwrap(), watermark);
            for loc in pruned_flash {
                inner.live[loc.block as usize] -= 1;
            }
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
            drop(inner);
            if let Some(batch) = to_flush {
                let me = self.clone();
                self.handle.spawn(async move { me.flush(batch).await });
            }
            rx
        };
        rx.await.unwrap_or(Err(StoreError::CapacityExhausted))
    }

    /// Adds a tuple to the packer. Returns `(gen, idx, waiter, batch)` where
    /// `batch` is a full page that must be flushed by the caller.
    fn enqueue(
        &self,
        rec: TupleRecord,
        origin: Origin,
    ) -> (
        u64,
        usize,
        oneshot::Receiver<Result<(), StoreError>>,
        Option<Batch>,
    ) {
        let page_size = self.dev.config().page_size;
        let mut inner = self.inner.borrow_mut();
        let len = rec.rec_len();
        // Round-robin over the per-channel packing streams.
        let s = inner.next_stream;
        inner.next_stream = (s + 1) % inner.streams.len();
        let mut to_flush = None;
        if !inner.streams[s].open.is_empty() && inner.streams[s].open_bytes + len > page_size {
            to_flush = Some(take_open(&mut inner, s));
        }
        let gen = inner.streams[s].gen;
        let idx = inner.streams[s].open.len();
        let first = idx == 0;
        inner.streams[s].open.push(Pending { rec, origin });
        inner.streams[s].open_bytes += len;
        let (tx, rx) = oneshot::channel();
        inner.streams[s].waiters.push(tx);
        let full = inner.streams[s].open_bytes + crate::types::TUPLE_HEADER + 16 > page_size;
        if full && to_flush.is_none() {
            to_flush = Some(take_open(&mut inner, s));
        } else if full {
            // Rare: the tuple that forced the previous flush itself fills the
            // fresh page. Flush both: spawn the second here.
            let second = take_open(&mut inner, s);
            let me = self.clone();
            self.handle.spawn(async move { me.flush(second).await });
        } else if first {
            // First tuple of a fresh page: arm the packing-window timer.
            let me = self.clone();
            let deadline = self.handle.now() + self.cfg.packing_window;
            self.handle.spawn(async move {
                me.handle.sleep_until(deadline).await;
                let batch = {
                    let mut inner = me.inner.borrow_mut();
                    if inner.streams[s].gen == gen && !inner.streams[s].open.is_empty() {
                        Some(take_open(&mut inner, s))
                    } else {
                        None
                    }
                };
                if let Some(b) = batch {
                    me.flush(b).await;
                }
            });
        }
        (gen, idx, rx, to_flush)
    }

    /// Allocates the next append slot on stream `s`'s append point; GC
    /// flushes may use the reserve.
    fn alloc_slot(&self, s: usize, for_gc: bool) -> Option<PhysLoc> {
        let mut inner = self.inner.borrow_mut();
        let pages_per_block = self.dev.config().pages_per_block;
        if let Some((b, p)) = inner.streams[s].append {
            if p < pages_per_block {
                inner.streams[s].append = Some((b, p + 1));
                return Some(PhysLoc { block: b, page: p });
            }
        }
        let reserve = if for_gc { 0 } else { self.cfg.gc_reserve };
        if self.dev.free_blocks() <= reserve {
            return None;
        }
        let b = self.dev.alloc_block()?;
        inner.streams[s].append = Some((b, 1));
        Some(PhysLoc { block: b, page: 0 })
    }

    async fn flush(&self, batch: Batch) {
        let has_reloc = batch
            .pendings
            .iter()
            .any(|p| matches!(p.origin, Origin::Reloc { .. }));
        let loc = loop {
            if let Some(l) = self.alloc_slot(batch.stream, has_reloc) {
                break l;
            }
            // A batch carrying GC relocations must NEVER wait on the GC
            // lock: the collector may be blocked awaiting this very batch.
            // Fail fast; the collection aborts safely (old locations stay
            // valid) and retries when space frees up.
            if has_reloc {
                self.fail_batch(batch);
                return;
            }
            if !self.collect_once().await {
                self.fail_batch(batch);
                return;
            }
        };
        let oob = {
            let inner = self.inner.borrow();
            PageOob::new(
                batch.page.first().map(|r| r.key.trace_id()).unwrap_or(0),
                batch.page.iter().map(|r| r.version.ts.0).max().unwrap_or(0),
                inner.epoch,
                inner.floor.0,
            )
        };
        self.dev
            .program_with_oob(loc, batch.page.clone(), oob)
            .await
            .expect("MFTL program invariant");
        // A power failure while the program was in flight tore the page and
        // reset the store; the rebuilt mapping table must not see this batch.
        if self.inner.borrow().epoch != batch.epoch {
            for w in batch.waiters {
                let _ = w.send(Err(StoreError::CapacityExhausted));
            }
            return;
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.written[loc.block as usize] += batch.page.len() as u32;
            for (slot, p) in batch.pendings.iter().enumerate() {
                let Some(chain) = inner.map.get_mut(&p.rec.key) else {
                    continue;
                };
                let Some(e) = chain.iter_mut().find(|e| e.version == p.rec.version) else {
                    continue; // pruned or deleted while buffered
                };
                match p.origin {
                    Origin::Fresh => {
                        if e.loc
                            == (Loc::Buffered {
                                gen: batch.gen,
                                idx: slot,
                            })
                        {
                            e.loc = Loc::Flash {
                                loc,
                                slot: slot as u16,
                            };
                            inner.live[loc.block as usize] += 1;
                        }
                    }
                    Origin::Reloc { old, old_slot } => {
                        if e.loc
                            == (Loc::Flash {
                                loc: old,
                                slot: old_slot,
                            })
                        {
                            e.loc = Loc::Flash {
                                loc,
                                slot: slot as u16,
                            };
                            inner.live[old.block as usize] -= 1;
                            inner.live[loc.block as usize] += 1;
                            inner.stats.gc_relocated += 1;
                        }
                    }
                }
            }
            inner.flushing.remove(&batch.gen);
        }
        for w in batch.waiters {
            let _ = w.send(Ok(()));
        }
        if self.dev.free_blocks() <= self.cfg.gc_low_water {
            let _ = self.inner.borrow().gc_nudge.send(());
        }
    }

    fn fail_batch(&self, batch: Batch) {
        {
            let mut inner = self.inner.borrow_mut();
            for (slot, p) in batch.pendings.iter().enumerate() {
                if matches!(p.origin, Origin::Fresh) {
                    if let Some(chain) = inner.map.get_mut(&p.rec.key) {
                        chain.retain(|e| {
                            !(e.version == p.rec.version
                                && e.loc
                                    == Loc::Buffered {
                                        gen: batch.gen,
                                        idx: slot,
                                    })
                        });
                    }
                }
                // Relocations keep their old (still valid) location.
            }
            inner.flushing.remove(&batch.gen);
        }
        for w in batch.waiters {
            let _ = w.send(Err(StoreError::CapacityExhausted));
        }
    }

    /// Reads the youngest version of `key` with timestamp `<= at` —
    /// MILANA's snapshot read primitive.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the key has no visible version at `at`.
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        self.get_where(key, |e| e.version.ts <= at).await
    }

    /// Reads the latest version of `key` regardless of timestamp.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the key does not exist.
    pub async fn get_latest(&self, key: &Key) -> Result<VersionedValue, StoreError> {
        self.get_where(key, |_| true).await
    }

    async fn get_where(
        &self,
        key: &Key,
        pred: impl Fn(&MapEntry) -> bool,
    ) -> Result<VersionedValue, StoreError> {
        self.handle.sleep(self.cfg.op_overhead).await;
        for _ in 0..8 {
            let target = {
                let mut inner = self.inner.borrow_mut();
                let Some(chain) = inner.map.get(key) else {
                    return Err(StoreError::NotFound);
                };
                let Some(e) = chain.iter().find(|e| pred(e)) else {
                    return Err(StoreError::NotFound);
                };
                let e = *e;
                match e.loc {
                    Loc::Buffered { gen, idx } => {
                        // DRAM hit: serve from a packer stream or an
                        // in-flight page.
                        let rec = match inner.streams.iter().find(|st| st.gen == gen) {
                            Some(st) => st.open.get(idx).map(|p| p.rec.clone()),
                            None => inner.flushing.get(&gen).and_then(|pg| pg.get(idx).cloned()),
                        };
                        match rec {
                            Some(rec) => {
                                debug_assert_eq!(rec.key, *key);
                                inner.stats.gets += 1;
                                return Ok(VersionedValue {
                                    version: e.version,
                                    value: rec.value,
                                });
                            }
                            None => continue, // committed between checks; retry
                        }
                    }
                    Loc::Flash { loc, slot } => Some((e.version, loc, slot)),
                }
            };
            let Some((version, loc, slot)) = target else {
                continue;
            };
            match self.dev.read(loc).await {
                Ok(page) => match page.get(slot as usize) {
                    Some(rec) if rec.key == *key && rec.version == version => {
                        self.inner.borrow_mut().stats.gets += 1;
                        return Ok(VersionedValue {
                            version,
                            value: rec.value.clone(),
                        });
                    }
                    _ => continue, // relocated under us; retry with fresh map
                },
                Err(_) => continue, // erased under us; retry
            }
        }
        unreachable!("key {key} kept moving during read; GC livelock")
    }

    /// Removes all versions of `key` (§3 API). Metadata-only in this model.
    pub fn delete(&self, key: &Key) {
        let mut inner = self.inner.borrow_mut();
        if let Some(chain) = inner.map.remove(key) {
            for e in chain {
                if let Loc::Flash { loc, .. } = e.loc {
                    inner.live[loc.block as usize] -= 1;
                }
            }
        }
    }

    /// Raises the GC watermark: versions superseded at or below `ts` become
    /// collectible (§3.1). Watermarks never move backwards.
    pub fn set_watermark(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts > inner.watermark {
            inner.watermark = ts;
        }
    }

    /// Current watermark.
    pub fn watermark(&self) -> Timestamp {
        self.inner.borrow().watermark
    }

    /// All versions currently mapped for `key`, youngest first (test /
    /// recovery instrumentation).
    pub fn versions(&self, key: &Key) -> Vec<Version> {
        self.inner
            .borrow()
            .map
            .get(key)
            .map(|c| c.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.inner.borrow().map.len()
    }

    /// All distinct keys, sorted by byte order (deterministic iteration
    /// for bulk copy / migration sweeps).
    pub fn keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.inner.borrow().map.keys().cloned().collect();
        ks.sort();
        ks
    }

    /// Zero-time bulk load for experiment setup. Call
    /// [`UnifiedStore::finish_load`] after the last record.
    ///
    /// # Panics
    ///
    /// Panics if the device fills during the load.
    pub fn bulk_load(&self, key: Key, value: Value, version: Version) {
        let rec = TupleRecord {
            key,
            version,
            value,
        };
        let page_size = self.dev.config().page_size;
        let mut inner = self.inner.borrow_mut();
        if !inner.load_buf.is_empty() && inner.load_bytes + rec.rec_len() > page_size {
            drop(inner);
            self.install_load_page();
            inner = self.inner.borrow_mut();
        }
        inner.load_bytes += rec.rec_len();
        inner.load_buf.push(rec);
    }

    /// Flushes the bulk-load packer.
    pub fn finish_load(&self) {
        if !self.inner.borrow().load_buf.is_empty() {
            self.install_load_page();
        }
    }

    fn install_load_page(&self) {
        let recs = {
            let mut inner = self.inner.borrow_mut();
            inner.load_bytes = 0;
            std::mem::take(&mut inner.load_buf)
        };
        let loc = {
            let mut inner = self.inner.borrow_mut();
            let pages_per_block = self.dev.config().pages_per_block;
            let point = inner.next_load_append;
            inner.next_load_append = (point + 1) % inner.load_append.len();
            match inner.load_append[point] {
                Some((b, p)) if p < pages_per_block => {
                    inner.load_append[point] = Some((b, p + 1));
                    PhysLoc { block: b, page: p }
                }
                _ => {
                    let b = self
                        .dev
                        .alloc_block()
                        .expect("device full during bulk load");
                    inner.load_append[point] = Some((b, 1));
                    PhysLoc { block: b, page: 0 }
                }
            }
        };
        let oob = {
            let inner = self.inner.borrow();
            PageOob::new(
                recs.first().map(|r| r.key.trace_id()).unwrap_or(0),
                recs.iter().map(|r| r.version.ts.0).max().unwrap_or(0),
                inner.epoch,
                inner.floor.0,
            )
        };
        self.dev
            .install_with_oob(loc, Rc::new(recs.clone()), oob)
            .expect("bulk load program order");
        let mut inner = self.inner.borrow_mut();
        inner.written[loc.block as usize] += recs.len() as u32;
        for (slot, rec) in recs.into_iter().enumerate() {
            let entry = MapEntry {
                version: rec.version,
                loc: Loc::Flash {
                    loc,
                    slot: slot as u16,
                },
            };
            let chain = inner.map.entry(rec.key).or_default();
            let pos = chain
                .iter()
                .position(|e| e.version < entry.version)
                .unwrap_or(chain.len());
            chain.insert(pos, entry);
            inner.live[loc.block as usize] += 1;
        }
    }

    /// Records the replica's durable write floor: every page programmed from
    /// now on carries `ts` in its OOB floor field, so a future
    /// [`UnifiedStore::mount`] recovers at least this floor. Floors never
    /// move backwards.
    pub fn note_floor(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts > inner.floor {
            inner.floor = ts;
        }
    }

    /// Injects a power failure: tears in-flight page programs on the device
    /// and drops all RAM state (mapping table, packer queues, accounting) —
    /// the store is unusable until [`UnifiedStore::mount`]. Returns the
    /// number of torn pages.
    pub fn power_fail(&self) -> u64 {
        let torn = self.dev.power_fail();
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        reset_volatile(&mut inner);
        torn
    }

    /// Deterministic mount scan (§4.5 recovery): rebuilds the mapping table
    /// and version chains from every intact page's OOB + payload, discarding
    /// torn pages (their programs were never acknowledged, so no acked write
    /// is lost). Charges `pages / mount_scan_rate` of device time and
    /// returns what it found, including the recovered durable floor.
    pub async fn mount(&self) -> MountReport {
        let _gc = self.gc_lock.acquire().await;
        {
            let mut inner = self.inner.borrow_mut();
            inner.epoch += 1;
            reset_volatile(&mut inner);
        }
        let scan = self.dev.mount_scan().await;
        let mut inner = self.inner.borrow_mut();
        let mut torn = 0u64;
        let mut floor = Timestamp::ZERO;
        for sp in &scan {
            let block = sp.loc.block as usize;
            let page = self.dev.peek(sp.loc);
            let intact = sp.oob.map(|o| !o.is_torn()).unwrap_or(false);
            // The controller knows the page was programmed (write pointer),
            // so even discarded pages count toward `written`: GC can later
            // reclaim them as garbage.
            inner.written[block] += page.as_ref().map(|p| p.len() as u32).unwrap_or(1).max(1);
            if !intact {
                torn += 1;
                continue;
            }
            let oob = sp.oob.expect("intact page has OOB");
            floor = floor.max(Timestamp(oob.floor));
            let Some(page) = page else { continue };
            for (slot, rec) in page.iter().enumerate() {
                let chain = inner.map.entry(rec.key.clone()).or_default();
                // A GC relocation interrupted before its erase leaves two
                // identical copies; keep the first in scan order.
                if chain.iter().any(|e| e.version == rec.version) {
                    continue;
                }
                let pos = chain
                    .iter()
                    .position(|e| e.version < rec.version)
                    .unwrap_or(chain.len());
                chain.insert(
                    pos,
                    MapEntry {
                        version: rec.version,
                        loc: Loc::Flash {
                            loc: sp.loc,
                            slot: slot as u16,
                        },
                    },
                );
                inner.live[block] += 1;
            }
        }
        inner.floor = floor;
        MountReport {
            pages_scanned: scan.len() as u64,
            torn_pages: torn,
            keys: inner.map.len() as u64,
            floor,
        }
    }

    /// One unified GC pass: pick the emptiest full block, prune dead
    /// versions, relocate live tuples through the packer, erase.
    async fn collect_once(&self) -> bool {
        let _gc = self.gc_lock.acquire().await;
        let epoch = self.inner.borrow().epoch;
        let pages_per_block = self.dev.config().pages_per_block;
        let victim = {
            let inner = self.inner.borrow();
            let mut append_blocks: Vec<u32> = inner
                .streams
                .iter()
                .filter_map(|st| st.append.map(|(b, _)| b))
                .collect();
            append_blocks.extend(inner.load_append.iter().filter_map(|a| a.map(|(b, _)| b)));
            (0..inner.live.len() as u32)
                .filter(|&b| !append_blocks.contains(&b))
                .filter(|&b| inner.written[b as usize] > inner.live[b as usize])
                .max_by_key(|&b| inner.written[b as usize] - inner.live[b as usize])
        };
        // No block holds any garbage tuples: collecting would free nothing.
        let Some(victim) = victim else { return false };
        let mut waiters = Vec::new();
        let mut flush_batches = Vec::new();
        // Read every victim page concurrently (the device parallelism GC
        // relies on in practice); then scan tuples.
        let mut read_jobs = Vec::new();
        for page_no in 0..pages_per_block {
            let loc = PhysLoc {
                block: victim,
                page: page_no,
            };
            if self.dev.peek(loc).is_none() {
                continue;
            }
            let dev = self.dev.clone();
            read_jobs.push(
                self.handle
                    .spawn(async move { (loc, dev.read(loc).await.ok()) }),
            );
        }
        let mut pages = Vec::new();
        for j in read_jobs {
            let (loc, page) = j.await;
            if let Some(p) = page {
                pages.push((loc, p));
            }
        }
        for (loc, page) in pages {
            for (slot, rec) in page.iter().enumerate() {
                let live = {
                    let mut inner = self.inner.borrow_mut();
                    let watermark = inner.watermark;
                    // Prune this chain first so cold garbage dies here.
                    if let Some(chain) = inner.map.get_mut(&rec.key) {
                        let (pruned_flash, pruned) = prune_chain(chain, watermark);
                        for l in pruned_flash {
                            inner.live[l.block as usize] -= 1;
                        }
                        inner.stats.versions_pruned += pruned;
                    }
                    inner.map.get(&rec.key).is_some_and(|chain| {
                        chain.iter().any(|e| {
                            e.version == rec.version
                                && e.loc
                                    == Loc::Flash {
                                        loc,
                                        slot: slot as u16,
                                    }
                        })
                    })
                };
                if live {
                    let (_gen, _idx, rx, to_flush) = self.enqueue(
                        rec.clone(),
                        Origin::Reloc {
                            old: loc,
                            old_slot: slot as u16,
                        },
                    );
                    waiters.push(rx);
                    if let Some(b) = to_flush {
                        flush_batches.push(b);
                    }
                }
            }
        }
        // Force out partial pages holding relocation tails so the erase
        // below cannot outrun persistence.
        {
            let mut inner = self.inner.borrow_mut();
            for s in 0..inner.streams.len() {
                let has_reloc = inner.streams[s]
                    .open
                    .iter()
                    .any(|p| matches!(p.origin, Origin::Reloc { .. }));
                if has_reloc {
                    let b = take_open(&mut inner, s);
                    flush_batches.push(b);
                }
            }
        }
        for b in flush_batches {
            // Boxed to break the flush -> collect_once -> flush async cycle.
            Box::pin(self.flush(b)).await;
        }
        let relocated = waiters.len() as u64;
        for rx in waiters {
            match rx.await {
                Ok(Ok(())) => {}
                _ => return false, // relocation failed; keep victim intact
            }
        }
        // A power failure reset the store while this pass ran: abort without
        // erasing. The victim's tuples (and any relocated copies) are both
        // on flash; the next mount deduplicates them.
        if self.inner.borrow().epoch != epoch {
            return false;
        }
        self.dev.erase(victim).await.expect("GC erase");
        let reclaimed = {
            let mut inner = self.inner.borrow_mut();
            debug_assert_eq!(inner.live[victim as usize], 0, "live data erased");
            inner.live[victim as usize] = 0;
            let written = inner.written[victim as usize] as u64;
            inner.written[victim as usize] = 0;
            inner.stats.gc_collections += 1;
            written.saturating_sub(relocated)
        };
        self.dev.trace_gc(reclaimed);
        true
    }
}

fn take_open(inner: &mut MftlInner, s: usize) -> Batch {
    let gen = inner.streams[s].gen;
    inner.streams[s].gen = inner.next_gen;
    inner.next_gen += 1;
    let pendings = std::mem::take(&mut inner.streams[s].open);
    let waiters = std::mem::take(&mut inner.streams[s].waiters);
    inner.streams[s].open_bytes = 0;
    let page: Page = Rc::new(pendings.iter().map(|p| p.rec.clone()).collect());
    inner.flushing.insert(gen, page.clone());
    Batch {
        gen,
        stream: s,
        epoch: inner.epoch,
        pendings,
        waiters,
        page,
    }
}

/// Drops all RAM-resident state (mapping table, packer streams, in-flight
/// pages, accounting) the way a power failure would. Generations stay
/// monotone across resets so stale flushes can never alias fresh ones.
fn reset_volatile(inner: &mut MftlInner) {
    inner.map.clear();
    let n = inner.streams.len();
    for st in &mut inner.streams {
        st.open.clear();
        st.open_bytes = 0;
        st.waiters.clear();
        st.append = None;
        st.gen = inner.next_gen;
        inner.next_gen += 1;
    }
    inner.next_stream = 0;
    inner.flushing.clear();
    inner.load_append = vec![None; n];
    inner.next_load_append = 0;
    for b in &mut inner.live {
        *b = 0;
    }
    for b in &mut inner.written {
        *b = 0;
    }
    inner.watermark = Timestamp::ZERO;
    inner.load_buf.clear();
    inner.load_bytes = 0;
    inner.floor = Timestamp::ZERO;
}

/// Removes dead versions: everything strictly older than the youngest entry
/// with `ts <= watermark`. Returns flash locations freed and count pruned.
fn prune_chain(chain: &mut Vec<MapEntry>, watermark: Timestamp) -> (Vec<PhysLoc>, u64) {
    let Some(keep) = chain.iter().position(|e| e.version.ts <= watermark) else {
        return (Vec::new(), 0);
    };
    let mut freed = Vec::new();
    let mut pruned = 0;
    for e in chain.drain(keep + 1..) {
        if let Loc::Flash { loc, .. } = e.loc {
            freed.push(loc);
        }
        pruned += 1;
    }
    (freed, pruned)
}

impl TupleRecord {
    fn rec_len(&self) -> usize {
        self.accounted_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::value;
    use simkit::time::SimTime;
    use simkit::Sim;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn vc(ts: u64, c: u32) -> Version {
        Version::new(Timestamp(ts), ClientId(c))
    }

    fn nand(blocks: u32) -> NandConfig {
        NandConfig {
            blocks,
            pages_per_block: 4,
            channels: 2,
            queue_depth: 16,
            ..NandConfig::default()
        }
    }

    fn val(n: usize) -> Value {
        value(vec![0xabu8; n])
    }

    fn store(sim: &Sim, blocks: u32) -> UnifiedStore {
        UnifiedStore::new(sim.handle(), nand(blocks), MftlConfig::default())
    }

    #[test]
    fn put_get_round_trip() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            s.put(Key::from(1u64), val(100), v(10)).await.unwrap();
            let got = s.get_at(&Key::from(1u64), Timestamp(10)).await.unwrap();
            assert_eq!(got.version, v(10));
            assert_eq!(got.value, val(100));
        });
    }

    #[test]
    fn mount_recovers_chains_and_floor_after_power_fail() {
        let mut sim = Sim::new(13);
        let h = sim.handle();
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            for ts in [10u64, 20, 30] {
                s.put(k.clone(), val(100), v(ts)).await.unwrap();
            }
            for i in 2..6u64 {
                s.put(Key::from(i), val(100), v(i + 50)).await.unwrap();
            }
            // The floor promise rides in the OOB of every later program.
            s.note_floor(Timestamp(25));
            s.put(Key::from(6u64), val(100), v(60)).await.unwrap();
            // Let the packing windows flush everything durably.
            h.sleep(Duration::from_millis(5)).await;
            // A write still buffered at the failure is lost — never acked.
            let s2 = s.clone();
            h.spawn(async move {
                let _ = s2.put(Key::from(9u64), val(100), v(900)).await;
            });
            h.sleep(Duration::from_micros(2)).await;
            s.power_fail();
            assert!(s.keys().is_empty());
            let report = s.mount().await;
            assert_eq!(report.floor, Timestamp(25));
            assert_eq!(report.keys, 6);
            // Full version chain survives: snapshot reads still work.
            assert_eq!(s.versions(&k), vec![v(30), v(20), v(10)]);
            assert_eq!(s.get_at(&k, Timestamp(25)).await.unwrap().version, v(20));
            assert!(s.get_latest(&Key::from(9u64)).await.is_err());
            // The store keeps working after recovery.
            s.put(Key::from(7u64), val(100), v(700)).await.unwrap();
            assert_eq!(
                s.get_latest(&Key::from(7u64)).await.unwrap().version,
                v(700)
            );
        });
    }

    #[test]
    fn snapshot_reads_see_old_versions() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), val(1), v(10)).await.unwrap();
            s.put(k.clone(), val(2), v(20)).await.unwrap();
            s.put(k.clone(), val(3), v(30)).await.unwrap();
            assert_eq!(s.get_at(&k, Timestamp(10)).await.unwrap().version, v(10));
            assert_eq!(s.get_at(&k, Timestamp(25)).await.unwrap().version, v(20));
            assert_eq!(s.get_at(&k, Timestamp(99)).await.unwrap().version, v(30));
            assert_eq!(
                s.get_at(&k, Timestamp(5)).await.unwrap_err(),
                StoreError::NotFound
            );
        });
    }

    #[test]
    fn stale_writes_rejected_with_latest() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), val(1), v(20)).await.unwrap();
            let err = s.put(k.clone(), val(2), v(10)).await.unwrap_err();
            assert_eq!(err, StoreError::StaleWrite(v(20)));
            // Equal version also rejected (same-client replay handled above).
            let err = s.put(k.clone(), val(2), v(20)).await.unwrap_err();
            assert_eq!(err, StoreError::StaleWrite(v(20)));
        });
    }

    #[test]
    fn client_id_breaks_ties() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), val(1), vc(10, 1)).await.unwrap();
            s.put(k.clone(), val(2), vc(10, 2)).await.unwrap(); // later client wins
            let err = s.put(k.clone(), val(3), vc(10, 0)).await.unwrap_err();
            assert_eq!(err, StoreError::StaleWrite(vc(10, 2)));
        });
    }

    #[test]
    fn apply_unordered_accepts_any_order_and_dups() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.apply_unordered(k.clone(), val(3), v(30)).await.unwrap();
            s.apply_unordered(k.clone(), val(1), v(10)).await.unwrap();
            s.apply_unordered(k.clone(), val(2), v(20)).await.unwrap();
            s.apply_unordered(k.clone(), val(2), v(20)).await.unwrap(); // dup
            assert_eq!(s.versions(&k), vec![v(30), v(20), v(10)]);
            assert_eq!(s.get_at(&k, Timestamp(20)).await.unwrap().version, v(20));
        });
    }

    #[test]
    fn packing_window_bounds_put_latency() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = store(&sim, 16);
        let hh = h.clone();
        sim.block_on(async move {
            let t0 = hh.now();
            // One lonely small tuple: flushed by the 1ms window timer.
            s.put(Key::from(1u64), val(100), v(10)).await.unwrap();
            let lat = hh.now() - t0;
            assert!(
                lat >= Duration::from_millis(1) && lat < Duration::from_micros(1200),
                "latency {lat:?}"
            );
        });
    }

    #[test]
    fn full_page_flushes_immediately() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = store(&sim, 16);
        let hh = h.clone();
        sim.block_on(async move {
            // The test device has 2 packing streams (one per channel); 16
            // tuples of 512 accounted bytes fill one 4 KB page per stream.
            let t0 = hh.now();
            let mut joins = Vec::new();
            for i in 0..16u64 {
                let s2 = s.clone();
                joins.push(hh.spawn(async move {
                    s2.put(Key::from(i), val(472), v(10 + i)).await.unwrap();
                }));
            }
            for j in joins {
                j.await;
            }
            let lat = hh.now() - t0;
            // No packing wait: just the 100us program (plus epsilon).
            assert!(lat < Duration::from_micros(300), "latency {lat:?}");
        });
    }

    #[test]
    fn watermark_prunes_old_versions() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            for ts in [10, 20, 30, 40] {
                s.put(k.clone(), val(8), v(ts)).await.unwrap();
            }
            s.set_watermark(Timestamp(25));
            // Next write triggers pruning: versions older than the youngest
            // <= 25 (i.e. v20) die; v10 goes away.
            s.put(k.clone(), val(8), v(50)).await.unwrap();
            assert_eq!(s.versions(&k), vec![v(50), v(40), v(30), v(20)]);
            // Reads at/above the watermark still see a consistent snapshot.
            assert_eq!(s.get_at(&k, Timestamp(25)).await.unwrap().version, v(20));
        });
    }

    #[test]
    fn gc_reclaims_space_under_overwrites() {
        let mut sim = Sim::new(2);
        let h = sim.handle();
        let s = store(&sim, 12); // 12 blocks * 4 pages * 8 tuples = 384 slots
        sim.block_on(async move {
            let keys = 20u64;
            for round in 0..40u64 {
                // Concurrent puts within a round so pages pack well.
                let mut joins = Vec::new();
                for i in 0..keys {
                    let ts = round * 100 + i + 1;
                    let s2 = s.clone();
                    joins.push(h.spawn(async move {
                        s2.put(Key::from(i), val(472), v(ts)).await.unwrap();
                    }));
                }
                for j in joins {
                    j.await;
                }
                // Watermark trails by one round, allowing pruning.
                s.set_watermark(Timestamp(round * 100));
            }
            // 800 writes through 384 slots: GC must have collected.
            assert!(s.stats().gc_collections > 5, "{:?}", s.stats());
            for i in 0..keys {
                let got = s.get_latest(&Key::from(i)).await.unwrap();
                assert_eq!(got.version, v(39 * 100 + i + 1));
            }
        });
    }

    #[test]
    fn capacity_exhausted_when_everything_live() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 4); // 4*4*8 = 128 tuple slots, no watermark
        sim.block_on(async move {
            let mut err = None;
            for i in 0..200u64 {
                if let Err(e) = s.put(Key::from(i), val(472), v(i + 1)).await {
                    err = Some(e);
                    break;
                }
            }
            assert_eq!(err, Some(StoreError::CapacityExhausted));
        });
    }

    #[test]
    fn bulk_load_is_instant_and_readable() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = store(&sim, 64);
        for i in 0..1000u64 {
            s.bulk_load(Key::from(i), val(472), v(1));
        }
        s.finish_load();
        assert_eq!(h.now(), SimTime::ZERO);
        assert_eq!(s.key_count(), 1000);
        sim.block_on(async move {
            let got = s.get_at(&Key::from(999u64), Timestamp(1)).await.unwrap();
            assert_eq!(got.version, v(1));
        });
    }

    #[test]
    fn delete_removes_all_versions() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 16);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), val(8), v(10)).await.unwrap();
            s.put(k.clone(), val(8), v(20)).await.unwrap();
            s.delete(&k);
            assert_eq!(s.get_latest(&k).await.unwrap_err(), StoreError::NotFound);
            assert!(s.versions(&k).is_empty());
            // Key can be written again afterwards.
            s.put(k.clone(), val(8), v(30)).await.unwrap();
            assert_eq!(s.get_latest(&k).await.unwrap().version, v(30));
        });
    }

    #[test]
    fn buffered_reads_hit_the_packer() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = store(&sim, 16);
        let hh = h.clone();
        sim.block_on(async move {
            let k = Key::from(1u64);
            let s2 = s.clone();
            let k2 = k.clone();
            let put = hh.spawn(async move { s2.put(k2, val(9), v(10)).await });
            // Let the put enqueue, then read before the 1ms flush completes.
            hh.sleep(Duration::from_micros(10)).await;
            let t0 = hh.now();
            let got = s.get_at(&k, Timestamp(10)).await.unwrap();
            assert_eq!(got.version, v(10));
            // DRAM hit: only the mapping-table overhead, no flash read.
            assert_eq!(hh.now() - t0, MftlConfig::default().op_overhead);
            put.await.unwrap();
        });
    }

    #[test]
    fn reads_survive_concurrent_gc() {
        let mut sim = Sim::new(9);
        let s = store(&sim, 10);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let keys = 16u64;
            for i in 0..keys {
                s.bulk_load(Key::from(i), val(472), v(1));
            }
            s.finish_load();
            // Writer hammers overwrites (GC churn), readers read everything.
            let s2 = s.clone();
            let h3 = hh.clone();
            let writer = hh.spawn(async move {
                for round in 1..30u64 {
                    let mut joins = Vec::new();
                    for i in 0..keys {
                        let ts = round * 1000 + i;
                        let s4 = s2.clone();
                        joins.push(h3.spawn(async move {
                            s4.put(Key::from(i), val(472), v(ts)).await.unwrap();
                        }));
                    }
                    for j in joins {
                        j.await;
                    }
                    s2.set_watermark(Timestamp((round - 1) * 1000 + keys));
                }
            });
            let s3 = s.clone();
            let reader = hh.spawn(async move {
                for _ in 0..200 {
                    for i in 0..keys {
                        let got = s3.get_latest(&Key::from(i)).await.unwrap();
                        assert_eq!(got.value, val(472));
                    }
                }
            });
            writer.await;
            reader.await;
        });
    }
}
