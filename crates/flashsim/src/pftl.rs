//! A generic single-level, page-mapped, log-structured FTL.
//!
//! This is the "standard FTL" of §2.2/Figure 2: it exposes a logical block
//! address (LBA) space, maps each LBA to a physical page, writes updates
//! out-of-place in log order, and garbage-collects erase blocks greedily.
//! 10 % of physical capacity is reserved as over-provisioning by default.
//!
//! The split multi-version store ([`crate::vftl`]) stacks its own KV layer on
//! top of this FTL — the configuration the paper calls **VFTL** — and the
//! single-version store ([`crate::sftl`]) uses it directly (**SFTL**).

use perfkit::FastMap;
use std::cell::RefCell;
use std::rc::Rc;

use simkit::sync::mpsc;
use simkit::SimHandle;

use crate::backend::MountReport;
use crate::nand::{NandConfig, NandDevice, PhysLoc};
use crate::oob::PageOob;
use crate::types::StoreError;
use timesync::Timestamp;

/// Tuning for a [`PageFtl`].
#[derive(Debug, Clone)]
pub struct PageFtlConfig {
    /// Fraction of physical capacity hidden from the logical space.
    pub overprovision: f64,
    /// Background GC starts when free blocks drop to this level.
    pub gc_low_water: usize,
    /// Blocks reserved exclusively for GC relocation (never user writes).
    pub gc_reserve: usize,
}

impl Default for PageFtlConfig {
    fn default() -> PageFtlConfig {
        PageFtlConfig {
            overprovision: 0.10,
            gc_low_water: 3,
            gc_reserve: 1,
        }
    }
}

/// Counters describing FTL-level activity (on top of raw device counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageFtlStats {
    /// User-visible LBA writes.
    pub lba_writes: u64,
    /// User-visible LBA reads.
    pub lba_reads: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocated: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
}

#[derive(Debug)]
struct PftlInner {
    map: FastMap<u32, PhysLoc>,
    rmap: FastMap<PhysLoc, u32>,
    /// Parallel append points (super-page striping): consecutive writes
    /// rotate across points, whose blocks land on different channels.
    append: Vec<Option<(u32, u32)>>,
    next_append: usize,
    live: Vec<u32>,
    stats: PageFtlStats,
    gc_nudge: mpsc::Sender<()>,
    /// Monotone per-write sequence stamped into each page's OOB version
    /// field; mount orders duplicate LBA copies by it (newest wins).
    /// Recovered as `max + 1` at mount so stamps never regress.
    seq: u64,
    /// Mount epoch; bumped by power-fail and mount so surviving background
    /// work (GC, stacked-layer flushes) cannot corrupt rebuilt state.
    epoch: u64,
    /// Durable write-floor record stamped into each page's OOB.
    floor: u64,
}

/// A shareable page-mapped FTL over a [`NandDevice`].
#[derive(Debug)]
pub struct PageFtl<P> {
    handle: SimHandle,
    dev: NandDevice<P>,
    cfg: Rc<PageFtlConfig>,
    logical_pages: u32,
    inner: Rc<RefCell<PftlInner>>,
    gc_lock: simkit::sync::Semaphore,
}

impl<P> Clone for PageFtl<P> {
    fn clone(&self) -> Self {
        PageFtl {
            handle: self.handle.clone(),
            dev: self.dev.clone(),
            cfg: self.cfg.clone(),
            logical_pages: self.logical_pages,
            inner: self.inner.clone(),
            gc_lock: self.gc_lock.clone(),
        }
    }
}

impl<P: Clone + 'static> PageFtl<P> {
    /// Creates an FTL over a fresh device and spawns its background GC task
    /// (owned by no node; it dies with the simulation).
    pub fn new(handle: SimHandle, nand: NandConfig, cfg: PageFtlConfig) -> PageFtl<P> {
        let dev = NandDevice::new(handle.clone(), nand);
        Self::over(handle, dev, cfg)
    }

    /// Creates an FTL over an existing device.
    pub fn over(handle: SimHandle, dev: NandDevice<P>, cfg: PageFtlConfig) -> PageFtl<P> {
        let total = dev.config().total_pages();
        let logical_pages = ((total as f64) * (1.0 - cfg.overprovision)).floor() as u32;
        let blocks = dev.config().blocks as usize;
        // One append point per channel where the device is big enough.
        let points = (dev.config().channels as usize).min((blocks / 8).max(1));
        let (tx, rx) = mpsc::channel();
        let ftl = PageFtl {
            handle: handle.clone(),
            dev,
            cfg: Rc::new(cfg),
            logical_pages,
            inner: Rc::new(RefCell::new(PftlInner {
                map: FastMap::default(),
                rmap: FastMap::default(),
                append: vec![None; points],
                next_append: 0,
                live: vec![0; blocks],
                stats: PageFtlStats::default(),
                gc_nudge: tx,
                seq: 1,
                epoch: 0,
                floor: 0,
            })),
            gc_lock: simkit::sync::Semaphore::new(1),
        };
        let gc = ftl.clone();
        handle.spawn(async move {
            while rx.recv().await.is_some() {
                while gc.dev.free_blocks() <= gc.cfg.gc_low_water {
                    if !gc.collect_once().await {
                        break;
                    }
                }
            }
        });
        ftl
    }

    /// Number of logical pages exposed (physical minus over-provisioning).
    pub fn logical_pages(&self) -> u32 {
        self.logical_pages
    }

    /// The underlying device (for stats and shared-device setups).
    pub fn device(&self) -> &NandDevice<P> {
        &self.dev
    }

    /// FTL activity counters.
    pub fn stats(&self) -> PageFtlStats {
        self.inner.borrow().stats
    }

    /// Allocates the next append slot, rotating across the parallel append
    /// points. `for_gc` may dip into the reserve.
    fn alloc_slot(&self, for_gc: bool) -> Option<PhysLoc> {
        let mut inner = self.inner.borrow_mut();
        let pages_per_block = self.dev.config().pages_per_block;
        let point = inner.next_append;
        inner.next_append = (point + 1) % inner.append.len();
        if let Some((b, p)) = inner.append[point] {
            if p < pages_per_block {
                inner.append[point] = Some((b, p + 1));
                return Some(PhysLoc { block: b, page: p });
            }
        }
        let reserve = if for_gc { 0 } else { self.cfg.gc_reserve };
        if self.dev.free_blocks() <= reserve {
            return None;
        }
        let b = self.dev.alloc_block()?;
        inner.append[point] = Some((b, 1));
        Some(PhysLoc { block: b, page: 0 })
    }

    fn nudge_gc(&self) {
        if self.dev.free_blocks() <= self.cfg.gc_low_water {
            let inner = self.inner.borrow();
            let _ = inner.gc_nudge.send(());
        }
    }

    /// Writes `payload` to logical page `lba`, remapping it out-of-place.
    ///
    /// # Errors
    ///
    /// - [`StoreError::NotFound`] if `lba` is out of the logical range.
    /// - [`StoreError::CapacityExhausted`] if GC cannot free space.
    pub async fn write(&self, lba: u32, payload: P) -> Result<(), StoreError> {
        if lba >= self.logical_pages {
            return Err(StoreError::NotFound);
        }
        let loc = loop {
            if let Some(loc) = self.alloc_slot(false) {
                break loc;
            }
            if !self.collect_once().await {
                return Err(StoreError::CapacityExhausted);
            }
        };
        let (oob, epoch) = self.next_oob(lba);
        self.dev
            .program_with_oob(loc, payload, oob)
            .await
            .expect("FTL program invariant violated");
        {
            let mut inner = self.inner.borrow_mut();
            // A power failure reset the mapping table while this program was
            // in flight; the rebuilt state must not see it.
            if inner.epoch != epoch {
                return Err(StoreError::CapacityExhausted);
            }
            if let Some(old) = inner.map.insert(lba, loc) {
                inner.rmap.remove(&old);
                inner.live[old.block as usize] -= 1;
            }
            inner.rmap.insert(loc, lba);
            inner.live[loc.block as usize] += 1;
            inner.stats.lba_writes += 1;
        }
        self.nudge_gc();
        Ok(())
    }

    /// Stamps OOB for the next program of `lba` and returns it with the
    /// current mount epoch (for post-program staleness checks).
    fn next_oob(&self, lba: u32) -> (PageOob, u64) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        (
            PageOob::new(lba as u64, seq, inner.epoch, inner.floor),
            inner.epoch,
        )
    }

    /// Reads logical page `lba`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the LBA is unmapped.
    pub async fn read(&self, lba: u32) -> Result<P, StoreError> {
        // GC may remap the LBA between lookup and device read; retry on a
        // fresh mapping. The device clones the payload synchronously, so a
        // successful read is never torn.
        for _ in 0..8 {
            let loc = {
                let inner = self.inner.borrow();
                match inner.map.get(&lba) {
                    Some(&loc) => loc,
                    None => return Err(StoreError::NotFound),
                }
            };
            match self.dev.read(loc).await {
                Ok(p) => {
                    self.inner.borrow_mut().stats.lba_reads += 1;
                    return Ok(p);
                }
                Err(_) => continue,
            }
        }
        unreachable!("LBA {lba} kept moving during read; GC livelock");
    }

    /// All currently mapped LBAs in ascending order (deterministic
    /// iteration for stacked-layer mount rebuilds).
    pub fn mapped_lbas(&self) -> Vec<u32> {
        let mut ls: Vec<u32> = self.inner.borrow().map.keys().copied().collect();
        ls.sort_unstable();
        ls
    }

    /// Zero-time payload peek of a mapped LBA (stacked layers rebuild their
    /// key maps from these after [`PageFtl::mount`]; the mount scan already
    /// charged the read time).
    pub fn peek_lba(&self, lba: u32) -> Option<P> {
        let loc = *self.inner.borrow().map.get(&lba)?;
        self.dev.peek(loc)
    }

    /// Unmaps `lba`, making its physical page garbage.
    pub fn trim(&self, lba: u32) {
        let mut inner = self.inner.borrow_mut();
        if let Some(old) = inner.map.remove(&lba) {
            inner.rmap.remove(&old);
            inner.live[old.block as usize] -= 1;
        }
    }

    /// True if `lba` is mapped.
    pub fn is_mapped(&self, lba: u32) -> bool {
        self.inner.borrow().map.contains_key(&lba)
    }

    /// Zero-time write for bulk-loading datasets.
    ///
    /// # Panics
    ///
    /// Panics if the device runs out of space during the load.
    pub fn install(&self, lba: u32, payload: P) {
        assert!(lba < self.logical_pages, "install outside logical range");
        let loc = self
            .alloc_slot(false)
            .expect("device full during bulk load");
        let (oob, _) = self.next_oob(lba);
        self.dev
            .install_with_oob(loc, payload, oob)
            .expect("install program order");
        let mut inner = self.inner.borrow_mut();
        if let Some(old) = inner.map.insert(lba, loc) {
            inner.rmap.remove(&old);
            inner.live[old.block as usize] -= 1;
        }
        inner.rmap.insert(loc, lba);
        inner.live[loc.block as usize] += 1;
    }

    /// Records the durable write floor; subsequent page programs stamp it
    /// into their OOB. Floors never move backwards.
    pub fn note_floor(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts.0 > inner.floor {
            inner.floor = ts.0;
        }
    }

    /// Injects a power failure: tears in-flight programs on the device and
    /// drops the volatile mapping table. Returns the number of torn pages.
    pub fn power_fail(&self) -> u64 {
        let torn = self.dev.power_fail();
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        reset_volatile(&mut inner);
        torn
    }

    /// Deterministic mount scan: rebuilds the LBA mapping from per-page OOB
    /// (newest sequence stamp wins per LBA), discarding torn pages, and
    /// recovers the durable floor. `keys` in the report counts mapped LBAs.
    pub async fn mount(&self) -> MountReport {
        let _gc = self.gc_lock.acquire().await;
        {
            let mut inner = self.inner.borrow_mut();
            inner.epoch += 1;
            reset_volatile(&mut inner);
        }
        let scan = self.dev.mount_scan().await;
        let mut torn = 0u64;
        let mut floor = 0u64;
        let mut seq_max = 0u64;
        // Winner per LBA: highest (sequence stamp, location).
        let mut best: FastMap<u32, (u64, PhysLoc)> = FastMap::default();
        for sp in &scan {
            let Some(oob) = sp.oob.filter(|o| !o.is_torn()) else {
                torn += 1;
                continue;
            };
            floor = floor.max(oob.floor);
            seq_max = seq_max.max(oob.version);
            let lba = oob.key as u32;
            let cand = (oob.version, sp.loc);
            let e = best.entry(lba).or_insert(cand);
            if cand > *e {
                *e = cand;
            }
        }
        let mut inner = self.inner.borrow_mut();
        for (&lba, &(_, loc)) in &best {
            inner.map.insert(lba, loc);
            inner.rmap.insert(loc, lba);
            inner.live[loc.block as usize] += 1;
        }
        inner.seq = seq_max + 1;
        inner.floor = floor;
        MountReport {
            pages_scanned: scan.len() as u64,
            torn_pages: torn,
            keys: best.len() as u64,
            floor: Timestamp(floor),
        }
    }

    /// Collects the fullest-garbage block. Returns false if nothing is
    /// collectible (every candidate block is fully live). Only one
    /// collection runs at a time; concurrent callers queue on the GC lock.
    async fn collect_once(&self) -> bool {
        let _gc = self.gc_lock.acquire().await;
        let epoch = self.inner.borrow().epoch;
        let pages_per_block = self.dev.config().pages_per_block;
        let victim = {
            let inner = self.inner.borrow();
            let append_blocks: Vec<u32> = inner
                .append
                .iter()
                .filter_map(|a| a.map(|(b, _)| b))
                .collect();
            (0..inner.live.len() as u32)
                .filter(|&b| !append_blocks.contains(&b))
                .filter(|&b| self.dev.pages_programmed(b) > inner.live[b as usize])
                .max_by_key(|&b| self.dev.pages_programmed(b) - inner.live[b as usize])
        };
        // No block holds any garbage: erasing would free nothing.
        let Some(victim) = victim else { return false };
        let reclaimed = {
            let inner = self.inner.borrow();
            (self.dev.pages_programmed(victim) - inner.live[victim as usize]) as u64
        };
        // Relocate every still-mapped page, with reads and programs issued
        // concurrently across the device's channels.
        let mut jobs = Vec::new();
        for page in 0..pages_per_block {
            let loc = PhysLoc {
                block: victim,
                page,
            };
            let lba = match self.inner.borrow().rmap.get(&loc) {
                Some(&lba) => lba,
                None => continue,
            };
            let me = self.clone();
            jobs.push(self.handle.spawn(async move {
                let Some(payload) = me.dev.peek(loc) else {
                    return true;
                };
                // Charge a page read for the relocation.
                let _ = me.dev.read(loc).await;
                let new_loc = match me.alloc_slot(true) {
                    Some(l) => l,
                    None => return false, // reserve exhausted
                };
                let (oob, _) = me.next_oob(lba);
                me.dev
                    .program_with_oob(new_loc, payload, oob)
                    .await
                    .expect("GC program invariant");
                let mut inner = me.inner.borrow_mut();
                // Commit only if the mapping still points at the old
                // location (a concurrent user write may have superseded it).
                if inner.map.get(&lba) == Some(&loc) {
                    inner.map.insert(lba, new_loc);
                    inner.rmap.remove(&loc);
                    inner.rmap.insert(new_loc, lba);
                    inner.live[victim as usize] -= 1;
                    inner.live[new_loc.block as usize] += 1;
                    inner.stats.gc_relocated += 1;
                }
                true
            }));
        }
        let mut all_ok = true;
        for j in jobs {
            all_ok &= j.await;
        }
        if !all_ok {
            return false; // give up this round; space remains consistent
        }
        // A power failure interrupted this pass (possibly tearing relocated
        // copies): abort without erasing so the victim's intact originals
        // survive for the mount scan to recover.
        if self.inner.borrow().epoch != epoch {
            return false;
        }
        self.dev.erase(victim).await.expect("GC erase");
        debug_assert_eq!(self.inner.borrow().live[victim as usize], 0);
        self.inner.borrow_mut().stats.gc_erases += 1;
        self.dev.trace_gc(reclaimed);
        true
    }
}

/// Drops RAM-resident FTL state the way a power failure would. The
/// sequence counter is rebuilt by the mount scan.
fn reset_volatile(inner: &mut PftlInner) {
    inner.map.clear();
    inner.rmap.clear();
    for a in &mut inner.append {
        *a = None;
    }
    inner.next_append = 0;
    for b in &mut inner.live {
        *b = 0;
    }
    inner.floor = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;

    fn cfg(blocks: u32) -> NandConfig {
        NandConfig {
            blocks,
            pages_per_block: 4,
            channels: 2,
            queue_depth: 8,
            ..NandConfig::default()
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<u32> = PageFtl::new(h, cfg(8), PageFtlConfig::default());
            ftl.write(3, 30).await.unwrap();
            ftl.write(5, 50).await.unwrap();
            assert_eq!(ftl.read(3).await.unwrap(), 30);
            assert_eq!(ftl.read(5).await.unwrap(), 50);
        });
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<u32> = PageFtl::new(h, cfg(8), PageFtlConfig::default());
            for i in 0..10 {
                ftl.write(1, i).await.unwrap();
            }
            assert_eq!(ftl.read(1).await.unwrap(), 9);
        });
    }

    #[test]
    fn unmapped_lba_not_found() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<u32> = PageFtl::new(h, cfg(8), PageFtlConfig::default());
            assert_eq!(ftl.read(0).await.unwrap_err(), StoreError::NotFound);
            ftl.write(0, 1).await.unwrap();
            ftl.trim(0);
            assert_eq!(ftl.read(0).await.unwrap_err(), StoreError::NotFound);
        });
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            // 8 blocks * 4 pages = 32 phys pages, ~28 logical.
            let ftl: PageFtl<u32> = PageFtl::new(h, cfg(8), PageFtlConfig::default());
            // Hammer one LBA far beyond raw capacity; GC must keep up.
            for i in 0..200 {
                ftl.write(0, i).await.unwrap();
            }
            assert_eq!(ftl.read(0).await.unwrap(), 199);
            assert!(ftl.stats().gc_erases > 10);
        });
    }

    #[test]
    fn capacity_exhausted_when_all_live() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<u32> = PageFtl::new(
                h,
                cfg(4), // 16 phys pages
                PageFtlConfig {
                    overprovision: 0.0,
                    ..PageFtlConfig::default()
                },
            );
            // Fill every logical page with live data.
            let mut failed = None;
            for lba in 0..16u32 {
                if let Err(e) = ftl.write(lba, lba).await {
                    failed = Some(e);
                    break;
                }
            }
            // With zero OP and all data live, late writes cannot proceed.
            assert_eq!(failed, Some(StoreError::CapacityExhausted));
        });
    }

    #[test]
    fn data_survives_heavy_mixed_traffic() {
        let mut sim = Sim::new(5);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<(u32, u32)> =
                PageFtl::new(h.clone(), cfg(16), PageFtlConfig::default());
            let lbas = 40u32; // of ~57 logical
            let mut latest = vec![None; lbas as usize];
            let mut x = 1u64;
            for round in 0..400u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lba = (x % lbas as u64) as u32;
                ftl.write(lba, (lba, round)).await.unwrap();
                latest[lba as usize] = Some(round);
            }
            for lba in 0..lbas {
                if let Some(round) = latest[lba as usize] {
                    assert_eq!(ftl.read(lba).await.unwrap(), (lba, round));
                }
            }
        });
    }

    #[test]
    fn mount_recovers_mapping_after_power_fail() {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        sim.block_on(async move {
            let ftl: PageFtl<u32> = PageFtl::new(h.clone(), cfg(8), PageFtlConfig::default());
            for lba in 0..6 {
                ftl.write(lba, lba + 100).await.unwrap();
            }
            // Overwrite leaves two copies of LBA 2; newest must win at mount.
            ftl.write(2, 999).await.unwrap();
            // Tear an in-flight overwrite of LBA 5.
            let f2 = ftl.clone();
            h.spawn(async move {
                let _ = f2.write(5, 777).await;
            });
            h.sleep(std::time::Duration::from_micros(10)).await;
            assert_eq!(ftl.power_fail(), 1);
            let report = ftl.mount().await;
            assert_eq!(report.torn_pages, 1);
            assert_eq!(report.keys, 6);
            assert_eq!(ftl.read(2).await.unwrap(), 999);
            // The torn overwrite was never acknowledged: old value survives.
            assert_eq!(ftl.read(5).await.unwrap(), 105);
            for lba in [0u32, 1, 3, 4] {
                assert_eq!(ftl.read(lba).await.unwrap(), lba + 100);
            }
        });
    }

    #[test]
    fn install_bulk_loads_without_time() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let ftl: PageFtl<u32> = PageFtl::new(h.clone(), cfg(8), PageFtlConfig::default());
        for lba in 0..20 {
            ftl.install(lba, lba * 10);
        }
        assert_eq!(h.now(), simkit::SimTime::ZERO);
        sim.block_on(async move {
            assert_eq!(ftl.read(7).await.unwrap(), 70);
        });
    }
}
