//! Per-page out-of-band (OOB) metadata and mount-scan records.
//!
//! Real NAND pages carry a spare ("out-of-band") area the controller programs
//! atomically with the data area. FTLs stash their reverse-mapping state
//! there so the mapping table is reconstructible from flash alone — the
//! paper's §4.5 recovery story. We model the four fields the FTLs need:
//!
//! - **key** — FTL-defined identity of the page (the logical block address
//!   for page-mapped FTLs, an informational key digest for tuple-packed
//!   MFTL pages whose payload is self-describing);
//! - **version** — newest version timestamp stored in the page, used to
//!   order duplicate copies left behind by in-flight GC relocation;
//! - **epoch** — the FTL mount epoch at program time (diagnostic);
//! - **floor** — the durable write-floor record: the replica's applied
//!   write floor at program time (see [`crate::Backend::note_floor`]).
//!   Mount recovers the replica's floor as the max over intact pages.
//!
//! A checksum over the fields makes torn programs *detectable*: a power
//! failure mid-program leaves the page with a corrupt checksum, and mount
//! discards such pages (their contents were never acknowledged — acks only
//! follow completed programs — so discarding cannot lose acked data).

/// Out-of-band metadata programmed atomically with a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageOob {
    /// FTL-defined page identity (LBA for page-mapped FTLs).
    pub key: u64,
    /// Newest version timestamp (ns) among records in the page.
    pub version: u64,
    /// FTL mount epoch at program time.
    pub epoch: u64,
    /// Durable write-floor record (ns) at program time.
    pub floor: u64,
    /// Integrity checksum over the fields; mismatch marks the page torn.
    checksum: u64,
}

impl PageOob {
    /// Builds OOB metadata with a valid checksum.
    pub fn new(key: u64, version: u64, epoch: u64, floor: u64) -> PageOob {
        let mut oob = PageOob {
            key,
            version,
            epoch,
            floor,
            checksum: 0,
        };
        oob.checksum = oob.expected_checksum();
        oob
    }

    /// FNV-1a over the metadata fields (stands in for the page ECC/CRC).
    fn expected_checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [self.key, self.version, self.epoch, self.floor] {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// True if the stored checksum does not match the fields — the page's
    /// program was torn by a power failure and its contents must be
    /// discarded at mount.
    pub fn is_torn(&self) -> bool {
        self.checksum != self.expected_checksum()
    }

    /// Marks the page torn by corrupting the stored checksum (power-fail
    /// injection).
    pub(crate) fn tear(&mut self) {
        self.checksum = !self.expected_checksum();
    }
}

/// One programmed page reported by [`crate::NandDevice::mount_scan`].
#[derive(Debug, Clone, Copy)]
pub struct ScannedPage {
    /// Physical address of the page.
    pub loc: crate::PhysLoc,
    /// Its OOB metadata; `None` for pages programmed without OOB (legacy
    /// raw programs), which mount treats the same as torn pages.
    pub oob: Option<PageOob>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_oob_is_intact() {
        let oob = PageOob::new(7, 42, 1, 9);
        assert!(!oob.is_torn());
    }

    #[test]
    fn tear_is_detectable() {
        let mut oob = PageOob::new(7, 42, 1, 9);
        oob.tear();
        assert!(oob.is_torn());
    }

    #[test]
    fn distinct_fields_distinct_checksums() {
        let a = PageOob::new(1, 2, 3, 4);
        let b = PageOob::new(1, 2, 3, 5);
        assert_ne!(a.checksum, b.checksum);
    }
}
