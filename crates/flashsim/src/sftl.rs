//! SFTL — a single-version KV store on a generic page-mapped FTL.
//!
//! This is the paper's single-version baseline (§5.2, Figure 6): a key maps
//! to one logical page on a standard FTL ([`crate::pftl`]); each put
//! overwrites the page in place (logically), so **old versions are gone the
//! moment a new one lands**. Snapshot reads older than the latest version
//! fail with [`StoreError::SnapshotUnavailable`], which is what forces tardy
//! read-only transactions to abort on this backend.

use perfkit::FastMap;
use std::cell::RefCell;
use std::rc::Rc;

use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::nand::NandConfig;
use crate::pftl::{PageFtl, PageFtlConfig};
use crate::types::{Key, StoreError, StoreStats, TupleRecord, Value, VersionedValue};

type Page = Rc<TupleRecord>;

#[derive(Debug)]
struct SftlInner {
    /// key -> (LBA, latest version). The version lives in DRAM so staleness
    /// checks don't cost a flash read.
    map: FastMap<Key, (u32, Version)>,
    next_lba: u32,
    free_lbas: Vec<u32>,
    stats: StoreStats,
}

/// Single-version store; cloning shares it.
#[derive(Debug, Clone)]
pub struct SingleVersionStore {
    ftl: PageFtl<Page>,
    inner: Rc<RefCell<SftlInner>>,
}

impl SingleVersionStore {
    /// Creates an SFTL store over a fresh device.
    pub fn new(handle: SimHandle, nand: NandConfig, cfg: PageFtlConfig) -> SingleVersionStore {
        let ftl = PageFtl::new(handle, nand, cfg);
        SingleVersionStore {
            ftl,
            inner: Rc::new(RefCell::new(SftlInner {
                map: FastMap::default(),
                next_lba: 0,
                free_lbas: Vec::new(),
                stats: StoreStats::default(),
            })),
        }
    }

    /// Store-level counters.
    pub fn stats(&self) -> StoreStats {
        let mut s = self.inner.borrow().stats;
        let d = self.ftl.device().stats();
        s.pages_written = d.page_writes;
        s.pages_read = d.page_reads;
        s.gc_collections = d.block_erases;
        s
    }

    /// Attaches a trace sink to the underlying device (flash-op and GC
    /// events stamped with `node`).
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, node: u64) {
        self.ftl.device().attach_tracer(tracer, node);
    }

    /// Injects media faults into the underlying device (fault campaigns).
    pub fn inject_media_faults(&self, cfg: crate::nand::MediaFaultConfig) {
        self.ftl.device().inject_media_faults(cfg);
    }

    fn lba_for(&self, key: &Key) -> Result<(u32, bool), StoreError> {
        let mut inner = self.inner.borrow_mut();
        if let Some(&(lba, _)) = inner.map.get(key) {
            return Ok((lba, true));
        }
        let lba = if let Some(l) = inner.free_lbas.pop() {
            l
        } else {
            let l = inner.next_lba;
            if l >= self.ftl.logical_pages() {
                return Err(StoreError::CapacityExhausted);
            }
            inner.next_lba += 1;
            l
        };
        Ok((lba, false))
    }

    /// Writes the (single) version of `key`, discarding any previous one.
    ///
    /// # Errors
    ///
    /// - [`StoreError::StaleWrite`] if `version` is not newer than the
    ///   current version.
    /// - [`StoreError::CapacityExhausted`] when out of logical space.
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        {
            let inner = self.inner.borrow();
            if let Some(&(_, cur)) = inner.map.get(&key) {
                if version <= cur {
                    return Err(StoreError::StaleWrite(cur));
                }
            }
        }
        let (lba, existing) = self.lba_for(&key)?;
        let rec = Rc::new(TupleRecord {
            key: key.clone(),
            version,
            value,
        });
        if let Err(e) = self.ftl.write(lba, rec).await {
            if !existing {
                self.inner.borrow_mut().free_lbas.push(lba);
            }
            return Err(e);
        }
        let mut inner = self.inner.borrow_mut();
        // Keep the newest version if a concurrent put raced us.
        match inner.map.get(&key) {
            Some(&(_, cur)) if cur >= version => {}
            _ => {
                inner.map.insert(key, (lba, version));
            }
        }
        inner.stats.puts += 1;
        Ok(())
    }

    /// Applies a replicated write that may arrive out of order: writes that
    /// are older than the stored version are acknowledged but ignored (the
    /// single-version store only ever keeps the newest).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] when out of logical space.
    pub async fn apply_unordered(
        &self,
        key: Key,
        value: Value,
        version: Version,
    ) -> Result<(), StoreError> {
        match self.put(key, value, version).await {
            Ok(()) => Ok(()),
            Err(StoreError::StaleWrite(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Applies a batch of unordered writes. Version metadata becomes visible
    /// atomically up front; page contents land as the device completes each
    /// write (reads reconcile via a bounded retry).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] when out of logical space.
    pub async fn apply_batch_unordered(
        &self,
        items: Vec<(Key, Value, Version)>,
    ) -> Result<(), StoreError> {
        let mut writes = Vec::new();
        for (key, value, version) in items {
            let (lba, _existing) = self.lba_for(&key)?;
            let newer = {
                let mut inner = self.inner.borrow_mut();
                match inner.map.get(&key) {
                    Some(&(_, cur)) if cur >= version => false,
                    _ => {
                        inner.map.insert(key.clone(), (lba, version));
                        true
                    }
                }
            };
            if newer {
                writes.push((
                    lba,
                    Rc::new(TupleRecord {
                        key,
                        version,
                        value,
                    }),
                ));
            }
        }
        for (lba, rec) in writes {
            self.ftl.write(lba, rec).await?;
            self.inner.borrow_mut().stats.puts += 1;
        }
        Ok(())
    }

    /// Snapshot read: succeeds only if the latest version is visible at `at`.
    ///
    /// # Errors
    ///
    /// - [`StoreError::NotFound`] for missing keys.
    /// - [`StoreError::SnapshotUnavailable`] if the key was overwritten
    ///   after `at` — the old version no longer exists on this backend.
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        // An in-flight write may have announced its version in the map while
        // its page is still being programmed; retry briefly until the page
        // content matches the announced version.
        for _ in 0..8 {
            let (lba, version) = {
                let inner = self.inner.borrow();
                let &(lba, version) = inner.map.get(key).ok_or(StoreError::NotFound)?;
                (lba, version)
            };
            if version.ts > at {
                return Err(StoreError::SnapshotUnavailable(version));
            }
            let rec = self.ftl.read(lba).await?;
            if rec.version == version || rec.key != *key {
                self.inner.borrow_mut().stats.gets += 1;
                return Ok(VersionedValue {
                    version: rec.version,
                    value: rec.value.clone(),
                });
            }
        }
        // Fall back to whatever is on flash (version metadata races are
        // bounded by one page-program latency).
        let (lba, _) = *self
            .inner
            .borrow()
            .map
            .get(key)
            .ok_or(StoreError::NotFound)?;
        let rec = self.ftl.read(lba).await?;
        self.inner.borrow_mut().stats.gets += 1;
        Ok(VersionedValue {
            version: rec.version,
            value: rec.value.clone(),
        })
    }

    /// Reads the latest version.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for missing keys.
    pub async fn get_latest(&self, key: &Key) -> Result<VersionedValue, StoreError> {
        self.get_at(key, Timestamp::MAX).await
    }

    /// Removes `key`.
    pub fn delete(&self, key: &Key) {
        let mut inner = self.inner.borrow_mut();
        if let Some((lba, _)) = inner.map.remove(key) {
            self.ftl.trim(lba);
            inner.free_lbas.push(lba);
        }
    }

    /// The latest version of `key`, if present (metadata only, no I/O).
    pub fn latest_version(&self, key: &Key) -> Option<Version> {
        self.inner.borrow().map.get(key).map(|&(_, v)| v)
    }

    /// Watermarks are meaningless for a single-version store; accepted for
    /// API uniformity.
    pub fn set_watermark(&self, _ts: Timestamp) {}

    /// Zero-time bulk load for experiment setup.
    ///
    /// # Panics
    ///
    /// Panics if the logical space fills during the load.
    pub fn bulk_load(&self, key: Key, value: Value, version: Version) {
        let (lba, _) = self.lba_for(&key).expect("bulk load overflow");
        let rec = Rc::new(TupleRecord {
            key: key.clone(),
            version,
            value,
        });
        self.ftl.install(lba, rec);
        self.inner.borrow_mut().map.insert(key, (lba, version));
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.inner.borrow().map.len()
    }

    /// All distinct keys, sorted by byte order (deterministic iteration
    /// for bulk copy / migration sweeps).
    pub fn keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.inner.borrow().map.keys().cloned().collect();
        ks.sort();
        ks
    }

    /// Records the durable write floor (stamped into subsequent page OOB).
    pub fn note_floor(&self, ts: Timestamp) {
        self.ftl.note_floor(ts);
    }

    /// Injects a power failure: tears in-flight programs and drops the
    /// volatile key map. Returns the number of torn pages.
    pub fn power_fail(&self) -> u64 {
        let torn = self.ftl.power_fail();
        let mut inner = self.inner.borrow_mut();
        inner.map.clear();
        inner.next_lba = 0;
        inner.free_lbas.clear();
        torn
    }

    /// Mount scan: lets the FTL rebuild its LBA map from OOB, then rebuilds
    /// the key map by peeking each mapped page's record. A key present at
    /// two LBAs (an overwrite that changed LBA before the failure) keeps its
    /// newest version; the stale LBA is trimmed. Deletes are not durable:
    /// a key deleted since its last overwrite resurrects at mount.
    pub async fn mount(&self) -> crate::backend::MountReport {
        let mut report = self.ftl.mount().await;
        let mut inner = self.inner.borrow_mut();
        inner.map.clear();
        let mut stale = Vec::new();
        for lba in self.ftl.mapped_lbas() {
            let Some(rec) = self.ftl.peek_lba(lba) else {
                continue;
            };
            match inner.map.get(&rec.key) {
                Some(&(old_lba, old_v)) => {
                    if rec.version > old_v {
                        inner.map.insert(rec.key.clone(), (lba, rec.version));
                        stale.push(old_lba);
                    } else {
                        stale.push(lba);
                    }
                }
                None => {
                    inner.map.insert(rec.key.clone(), (lba, rec.version));
                }
            }
        }
        for lba in stale {
            self.ftl.trim(lba);
        }
        let used: std::collections::HashSet<u32> =
            inner.map.values().map(|&(lba, _)| lba).collect();
        inner.next_lba = used.iter().max().map_or(0, |&m| m + 1);
        inner.free_lbas = (0..inner.next_lba)
            .rev()
            .filter(|l| !used.contains(l))
            .collect();
        report.keys = inner.map.len() as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::value;
    use simkit::Sim;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn store(sim: &Sim) -> SingleVersionStore {
        SingleVersionStore::new(
            sim.handle(),
            NandConfig {
                blocks: 16,
                pages_per_block: 4,
                ..NandConfig::default()
            },
            PageFtlConfig::default(),
        )
    }

    #[test]
    fn put_get_round_trip() {
        let mut sim = Sim::new(1);
        let s = store(&sim);
        sim.block_on(async move {
            s.put(Key::from(1u64), value(&b"x"[..]), v(10))
                .await
                .unwrap();
            let got = s.get_at(&Key::from(1u64), Timestamp(10)).await.unwrap();
            assert_eq!(got.version, v(10));
        });
    }

    #[test]
    fn old_snapshots_are_gone() {
        let mut sim = Sim::new(1);
        let s = store(&sim);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), value(&b"a"[..]), v(10)).await.unwrap();
            s.put(k.clone(), value(&b"b"[..]), v(20)).await.unwrap();
            // A reader at ts=15 cannot get the old version anymore.
            assert_eq!(
                s.get_at(&k, Timestamp(15)).await.unwrap_err(),
                StoreError::SnapshotUnavailable(v(20))
            );
            assert_eq!(s.get_at(&k, Timestamp(20)).await.unwrap().version, v(20));
        });
    }

    #[test]
    fn stale_write_rejected_unordered_ignored() {
        let mut sim = Sim::new(1);
        let s = store(&sim);
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), value(&b"b"[..]), v(20)).await.unwrap();
            assert_eq!(
                s.put(k.clone(), value(&b"a"[..]), v(10)).await.unwrap_err(),
                StoreError::StaleWrite(v(20))
            );
            s.apply_unordered(k.clone(), value(&b"a"[..]), v(10))
                .await
                .unwrap(); // acked, ignored
            assert_eq!(s.get_latest(&k).await.unwrap().version, v(20));
        });
    }

    #[test]
    fn delete_frees_lba_for_reuse() {
        let mut sim = Sim::new(1);
        let s = store(&sim);
        sim.block_on(async move {
            s.put(Key::from(1u64), value(&b"a"[..]), v(1))
                .await
                .unwrap();
            s.delete(&Key::from(1u64));
            assert_eq!(
                s.get_latest(&Key::from(1u64)).await.unwrap_err(),
                StoreError::NotFound
            );
            s.put(Key::from(2u64), value(&b"b"[..]), v(2))
                .await
                .unwrap();
            assert_eq!(s.key_count(), 1);
        });
    }

    #[test]
    fn bulk_load_visible() {
        let mut sim = Sim::new(1);
        let s = store(&sim);
        for i in 0..30u64 {
            s.bulk_load(Key::from(i), value(&b"z"[..]), v(1));
        }
        sim.block_on(async move {
            assert_eq!(s.get_latest(&Key::from(29u64)).await.unwrap().version, v(1));
        });
    }

    #[test]
    fn mount_recovers_keys_after_power_fail() {
        let mut sim = Sim::new(9);
        let h = sim.handle();
        let s = store(&sim);
        sim.block_on(async move {
            for i in 0..5u64 {
                s.put(Key::from(i), value(&b"a"[..]), v(i + 10))
                    .await
                    .unwrap();
            }
            // Overwrite key 2; newest version must win at mount.
            s.put(Key::from(2u64), value(&b"b"[..]), v(99))
                .await
                .unwrap();
            // Tear an in-flight overwrite of key 4.
            let s2 = s.clone();
            h.spawn(async move {
                let _ = s2.put(Key::from(4u64), value(&b"c"[..]), v(500)).await;
            });
            h.sleep(std::time::Duration::from_micros(10)).await;
            assert_eq!(s.power_fail(), 1);
            assert_eq!(s.key_count(), 0);
            let report = s.mount().await;
            assert_eq!(report.torn_pages, 1);
            assert_eq!(report.keys, 5);
            assert_eq!(s.get_latest(&Key::from(2u64)).await.unwrap().version, v(99));
            // The torn overwrite was never acked: old version survives.
            assert_eq!(s.get_latest(&Key::from(4u64)).await.unwrap().version, v(14));
            // The store keeps working after recovery.
            s.put(Key::from(7u64), value(&b"d"[..]), v(600))
                .await
                .unwrap();
            assert_eq!(
                s.get_latest(&Key::from(7u64)).await.unwrap().version,
                v(600)
            );
        });
    }

    #[test]
    fn capacity_bounded_by_logical_space() {
        let mut sim = Sim::new(1);
        let s = SingleVersionStore::new(
            sim.handle(),
            NandConfig {
                blocks: 2,
                pages_per_block: 4,
                ..NandConfig::default()
            },
            PageFtlConfig::default(),
        );
        sim.block_on(async move {
            // 8 phys pages, 7 logical. Distinct keys exceed logical space.
            let mut err = None;
            for i in 0..20u64 {
                if let Err(e) = s.put(Key::from(i), value(&b"x"[..]), v(i + 1)).await {
                    err = Some(e);
                    break;
                }
            }
            assert_eq!(err, Some(StoreError::CapacityExhausted));
        });
    }
}
