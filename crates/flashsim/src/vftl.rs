//! VFTL — a *split* multi-version KV store stacked on a generic FTL.
//!
//! The paper's main storage baseline (§5.1, Table 1): the same multi-version
//! semantics as MFTL, but implemented as a separate layer above a standard
//! page-mapped FTL ([`crate::pftl`]). The split costs real resources:
//!
//! - **two mapping steps** — key → segment (LBA) → physical page;
//! - **two garbage collectors** — the KV layer compacts segments with dead
//!   tuples (rewriting live ones), *and* the FTL underneath relocates whole
//!   pages to free erase blocks;
//! - **two over-provisioning reserves** — 10 % of capacity is withheld at
//!   each level, so the same device holds less user data and collects more.
//!
//! Table 1's experiment measures exactly this overhead against MFTL.

use std::cell::RefCell;
use std::collections::BTreeMap;

use perfkit::FastMap;
use std::rc::Rc;
use std::time::Duration;

use simkit::sync::{mpsc, oneshot, Semaphore};
use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::nand::NandConfig;
use crate::pftl::{PageFtl, PageFtlConfig};
use crate::types::{Key, StoreError, StoreStats, TupleRecord, Value, VersionedValue};

/// One logical segment's payload: packed tuples (a 4 KB page worth).
pub type Segment = Rc<Vec<TupleRecord>>;

/// Tuning for a [`SplitStore`].
#[derive(Debug, Clone)]
pub struct VftlConfig {
    /// Per-operation software overhead: two mapping steps through a block
    /// interface (key → LBA in the KV layer, LBA → physical in the FTL).
    pub op_overhead: Duration,
    /// Packing delay bound (same knob as MFTL's; 1 ms in the paper).
    pub packing_window: Duration,
    /// Fraction of *logical* space the KV layer reserves for its own GC —
    /// the "10 % at a second level" of §5.1.
    pub top_overprovision: f64,
    /// KV-layer GC starts when free segments drop to this level.
    pub gc_low_water: usize,
    /// Segments reserved for KV-layer GC relocation.
    pub gc_reserve: usize,
}

impl Default for VftlConfig {
    fn default() -> VftlConfig {
        VftlConfig {
            op_overhead: Duration::from_micros(8),
            packing_window: Duration::from_millis(1),
            top_overprovision: 0.10,
            gc_low_water: 8,
            gc_reserve: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Buffered { gen: u64, idx: usize },
    Seg { lba: u32, slot: u16 },
}

#[derive(Debug, Clone, Copy)]
struct MapEntry {
    version: Version,
    loc: Loc,
}

#[derive(Debug, Clone)]
enum Origin {
    Fresh,
    Reloc { old_lba: u32, old_slot: u16 },
}

#[derive(Debug)]
struct Pending {
    rec: TupleRecord,
    origin: Origin,
}

struct Batch {
    gen: u64,
    pendings: Vec<Pending>,
    waiters: Vec<oneshot::Sender<Result<(), StoreError>>>,
    seg: Segment,
}

/// One packing stream (see the MFTL twin): the KV layer keeps several open
/// segment buffers so puts spread over parallel append streams, matching
/// how the unified FTL packs per channel.
#[derive(Debug)]
struct Stream {
    open: Vec<Pending>,
    open_bytes: usize,
    gen: u64,
    waiters: Vec<oneshot::Sender<Result<(), StoreError>>>,
}

struct VftlInner {
    map: FastMap<Key, Vec<MapEntry>>,
    streams: Vec<Stream>,
    next_stream: usize,
    next_gen: u64,
    flushing: FastMap<u64, Segment>,
    free_lbas: Vec<u32>,
    /// Deterministically ordered so GC victim ties never depend on hash
    /// iteration order.
    live: BTreeMap<u32, u32>,
    written: BTreeMap<u32, u32>,
    watermark: Timestamp,
    stats: StoreStats,
    gc_nudge: mpsc::Sender<()>,
    load_buf: Vec<TupleRecord>,
    load_bytes: usize,
    /// Mount epoch; bumped by power-fail and mount so surviving flush / GC
    /// tasks cannot corrupt the rebuilt KV state.
    epoch: u64,
}

/// The split (VFTL) multi-version store. Cloning shares the store.
#[derive(Clone)]
pub struct SplitStore {
    handle: SimHandle,
    ftl: PageFtl<Segment>,
    cfg: Rc<VftlConfig>,
    inner: Rc<RefCell<VftlInner>>,
    gc_lock: Semaphore,
}

impl std::fmt::Debug for SplitStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("SplitStore")
            .field("keys", &inner.map.len())
            .field("free_segments", &inner.free_lbas.len())
            .finish()
    }
}

impl SplitStore {
    /// Creates a VFTL store: a KV layer over a fresh generic FTL, with GC
    /// tasks at both levels.
    pub fn new(handle: SimHandle, nand: NandConfig, cfg: VftlConfig) -> SplitStore {
        let blocks = nand.blocks as usize;
        let ftl = PageFtl::new(
            handle.clone(),
            nand,
            PageFtlConfig {
                gc_low_water: (blocks / 16).max(3),
                gc_reserve: (blocks / 64).max(1),
                ..PageFtlConfig::default()
            },
        );
        let usable = ((ftl.logical_pages() as f64) * (1.0 - cfg.top_overprovision)).floor() as u32;
        let n_streams = (ftl.device().config().channels as usize).min((blocks / 8).max(1));
        let streams = (0..n_streams)
            .map(|i| Stream {
                open: Vec::new(),
                open_bytes: 0,
                gen: i as u64,
                waiters: Vec::new(),
            })
            .collect::<Vec<_>>();
        let (tx, rx) = mpsc::channel();
        let store = SplitStore {
            handle: handle.clone(),
            ftl,
            cfg: Rc::new(cfg),
            inner: Rc::new(RefCell::new(VftlInner {
                map: FastMap::default(),
                next_gen: n_streams as u64,
                next_stream: 0,
                streams,
                flushing: FastMap::default(),
                free_lbas: (0..usable).rev().collect(),
                live: BTreeMap::new(),
                written: BTreeMap::new(),
                watermark: Timestamp::ZERO,
                stats: StoreStats::default(),
                gc_nudge: tx,
                load_buf: Vec::new(),
                load_bytes: 0,
                epoch: 0,
            })),
            gc_lock: Semaphore::new(1),
        };
        let gc = store.clone();
        handle.spawn(async move {
            while rx.recv().await.is_some() {
                while gc.inner.borrow().free_lbas.len() <= gc.cfg.gc_low_water {
                    if !gc.collect_once().await {
                        break;
                    }
                }
            }
        });
        store
    }

    /// The FTL underneath (for stats: its GC traffic is the split's cost).
    pub fn ftl(&self) -> &PageFtl<Segment> {
        &self.ftl
    }

    /// Store-level counters (KV-layer GC only; add [`SplitStore::ftl`] stats
    /// for the bottom level).
    pub fn stats(&self) -> StoreStats {
        let mut s = self.inner.borrow().stats;
        let d = self.ftl.device().stats();
        s.pages_written = d.page_writes;
        s.pages_read = d.page_reads;
        s
    }

    /// Attaches a trace sink to the underlying device (flash-op and GC
    /// events stamped with `node`).
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, node: u64) {
        self.ftl.device().attach_tracer(tracer, node);
    }

    /// Injects media faults into the underlying device (fault campaigns).
    pub fn inject_media_faults(&self, cfg: crate::nand::MediaFaultConfig) {
        self.ftl.device().inject_media_faults(cfg);
    }

    /// Writes a new version of `key` (see [`crate::mftl::UnifiedStore::put`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::StaleWrite`] or [`StoreError::CapacityExhausted`].
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        self.handle.sleep(self.cfg.op_overhead).await;
        {
            let inner = self.inner.borrow();
            if let Some(head) = inner.map.get(&key).and_then(|c| c.first()) {
                if version <= head.version {
                    return Err(StoreError::StaleWrite(head.version));
                }
            }
        }
        self.insert_and_wait(key, value, version, true).await
    }

    /// Out-of-order replicated write (idempotent), as in
    /// [`crate::mftl::UnifiedStore::apply_unordered`].
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the store is full of live data.
    pub async fn apply_unordered(
        &self,
        key: Key,
        value: Value,
        version: Version,
    ) -> Result<(), StoreError> {
        {
            let inner = self.inner.borrow();
            if let Some(chain) = inner.map.get(&key) {
                if chain.iter().any(|e| e.version == version) {
                    return Ok(());
                }
            }
        }
        self.insert_and_wait(key, value, version, false).await
    }

    /// Applies a batch of unordered writes with atomic visibility (see
    /// [`crate::mftl::UnifiedStore::apply_batch_unordered`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::CapacityExhausted`] if the store fills.
    pub async fn apply_batch_unordered(
        &self,
        items: Vec<(Key, Value, Version)>,
    ) -> Result<(), StoreError> {
        let mut waiters = Vec::new();
        let mut batches = Vec::new();
        for (key, value, version) in items {
            {
                let inner = self.inner.borrow();
                if let Some(chain) = inner.map.get(&key) {
                    if chain.iter().any(|e| e.version == version) {
                        continue; // duplicate
                    }
                }
            }
            let rec = TupleRecord {
                key: key.clone(),
                version,
                value,
            };
            let (gen, idx, rx, to_flush) = self.enqueue(rec, Origin::Fresh);
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            let pos = chain
                .iter()
                .position(|e| e.version < version)
                .unwrap_or(chain.len());
            chain.insert(
                pos,
                MapEntry {
                    version,
                    loc: Loc::Buffered { gen, idx },
                },
            );
            let watermark = inner.watermark;
            let (freed, pruned) = prune_chain(inner.map.get_mut(&key).unwrap(), watermark);
            for lba in freed {
                *inner.live.get_mut(&lba).expect("live count") -= 1;
            }
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
            drop(inner);
            waiters.push(rx);
            if let Some(b) = to_flush {
                batches.push(b);
            }
        }
        for b in batches {
            let me = self.clone();
            self.handle.spawn(async move { me.flush(b).await });
        }
        for rx in waiters {
            rx.await.unwrap_or(Err(StoreError::CapacityExhausted))?;
        }
        Ok(())
    }

    async fn insert_and_wait(
        &self,
        key: Key,
        value: Value,
        version: Version,
        expect_head: bool,
    ) -> Result<(), StoreError> {
        let rec = TupleRecord {
            key: key.clone(),
            version,
            value,
        };
        let (gen, idx, rx, to_flush) = self.enqueue(rec, Origin::Fresh);
        {
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            let entry = MapEntry {
                version,
                loc: Loc::Buffered { gen, idx },
            };
            if expect_head {
                chain.insert(0, entry);
            } else {
                let pos = chain
                    .iter()
                    .position(|e| e.version < version)
                    .unwrap_or(chain.len());
                chain.insert(pos, entry);
            }
            let watermark = inner.watermark;
            let (freed, pruned) = prune_chain(inner.map.get_mut(&key).unwrap(), watermark);
            for lba in freed {
                *inner.live.get_mut(&lba).expect("live count") -= 1;
            }
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
        }
        if let Some(batch) = to_flush {
            let me = self.clone();
            self.handle.spawn(async move { me.flush(batch).await });
        }
        rx.await.unwrap_or(Err(StoreError::CapacityExhausted))
    }

    fn enqueue(
        &self,
        rec: TupleRecord,
        origin: Origin,
    ) -> (
        u64,
        usize,
        oneshot::Receiver<Result<(), StoreError>>,
        Option<Batch>,
    ) {
        let page_size = self.ftl.device().config().page_size;
        let mut inner = self.inner.borrow_mut();
        let len = rec.accounted_len();
        let s = inner.next_stream;
        inner.next_stream = (s + 1) % inner.streams.len();
        let mut to_flush = None;
        if !inner.streams[s].open.is_empty() && inner.streams[s].open_bytes + len > page_size {
            to_flush = Some(take_open(&mut inner, s));
        }
        let gen = inner.streams[s].gen;
        let idx = inner.streams[s].open.len();
        let first = idx == 0;
        inner.streams[s].open.push(Pending { rec, origin });
        inner.streams[s].open_bytes += len;
        let (tx, rx) = oneshot::channel();
        inner.streams[s].waiters.push(tx);
        let full = inner.streams[s].open_bytes + crate::types::TUPLE_HEADER + 16 > page_size;
        if full && to_flush.is_none() {
            to_flush = Some(take_open(&mut inner, s));
        } else if full {
            let second = take_open(&mut inner, s);
            let me = self.clone();
            self.handle.spawn(async move { me.flush(second).await });
        } else if first {
            let me = self.clone();
            let deadline = self.handle.now() + self.cfg.packing_window;
            self.handle.spawn(async move {
                me.handle.sleep_until(deadline).await;
                let batch = {
                    let mut inner = me.inner.borrow_mut();
                    if inner.streams[s].gen == gen && !inner.streams[s].open.is_empty() {
                        Some(take_open(&mut inner, s))
                    } else {
                        None
                    }
                };
                if let Some(b) = batch {
                    me.flush(b).await;
                }
            });
        }
        (gen, idx, rx, to_flush)
    }

    fn alloc_lba(&self, for_gc: bool) -> Option<u32> {
        let mut inner = self.inner.borrow_mut();
        let reserve = if for_gc { 0 } else { self.cfg.gc_reserve };
        if inner.free_lbas.len() <= reserve {
            return None;
        }
        inner.free_lbas.pop()
    }

    async fn flush(&self, batch: Batch) {
        let epoch = self.inner.borrow().epoch;
        let has_reloc = batch
            .pendings
            .iter()
            .any(|p| matches!(p.origin, Origin::Reloc { .. }));
        let lba = loop {
            if let Some(l) = self.alloc_lba(has_reloc) {
                break l;
            }
            // See the MFTL note: reloc-carrying batches never wait on the
            // GC lock; fail fast and let the collection abort safely.
            if has_reloc {
                self.fail_batch(batch);
                return;
            }
            if !self.collect_once().await {
                self.fail_batch(batch);
                return;
            }
        };
        if let Err(e) = self.ftl.write(lba, batch.seg.clone()).await {
            debug_assert_eq!(e, StoreError::CapacityExhausted);
            // A power failure reset the store mid-write: drop the batch
            // without touching the rebuilt free list.
            if self.inner.borrow().epoch != epoch {
                for w in batch.waiters {
                    let _ = w.send(Err(StoreError::CapacityExhausted));
                }
                return;
            }
            // Bottom FTL out of space: return the LBA and fail the batch.
            self.inner.borrow_mut().free_lbas.push(lba);
            self.fail_batch(batch);
            return;
        }
        if self.inner.borrow().epoch != epoch {
            // Power failure while the segment program was in flight but the
            // program itself survived: the mount scan already accounted for
            // (or discarded) it; skip the volatile bookkeeping.
            for w in batch.waiters {
                let _ = w.send(Err(StoreError::CapacityExhausted));
            }
            return;
        }
        {
            let mut inner = self.inner.borrow_mut();
            *inner.written.entry(lba).or_insert(0) += batch.seg.len() as u32;
            inner.live.entry(lba).or_insert(0);
            for (slot, p) in batch.pendings.iter().enumerate() {
                let Some(chain) = inner.map.get_mut(&p.rec.key) else {
                    continue;
                };
                let Some(e) = chain.iter_mut().find(|e| e.version == p.rec.version) else {
                    continue;
                };
                match p.origin {
                    Origin::Fresh => {
                        if e.loc
                            == (Loc::Buffered {
                                gen: batch.gen,
                                idx: slot,
                            })
                        {
                            e.loc = Loc::Seg {
                                lba,
                                slot: slot as u16,
                            };
                            *inner.live.get_mut(&lba).unwrap() += 1;
                        }
                    }
                    Origin::Reloc { old_lba, old_slot } => {
                        if e.loc
                            == (Loc::Seg {
                                lba: old_lba,
                                slot: old_slot,
                            })
                        {
                            e.loc = Loc::Seg {
                                lba,
                                slot: slot as u16,
                            };
                            *inner.live.get_mut(&old_lba).expect("old live") -= 1;
                            *inner.live.get_mut(&lba).unwrap() += 1;
                            inner.stats.gc_relocated += 1;
                        }
                    }
                }
            }
            inner.flushing.remove(&batch.gen);
        }
        for w in batch.waiters {
            let _ = w.send(Ok(()));
        }
        let low = {
            let inner = self.inner.borrow();
            inner.free_lbas.len() <= self.cfg.gc_low_water
        };
        if low {
            let _ = self.inner.borrow().gc_nudge.send(());
        }
    }

    fn fail_batch(&self, batch: Batch) {
        {
            let mut inner = self.inner.borrow_mut();
            for (slot, p) in batch.pendings.iter().enumerate() {
                if matches!(p.origin, Origin::Fresh) {
                    if let Some(chain) = inner.map.get_mut(&p.rec.key) {
                        chain.retain(|e| {
                            !(e.version == p.rec.version
                                && e.loc
                                    == Loc::Buffered {
                                        gen: batch.gen,
                                        idx: slot,
                                    })
                        });
                    }
                }
            }
            inner.flushing.remove(&batch.gen);
        }
        for w in batch.waiters {
            let _ = w.send(Err(StoreError::CapacityExhausted));
        }
    }

    /// Snapshot read (see [`crate::mftl::UnifiedStore::get_at`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if no version is visible at `at`.
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        self.get_where(key, |e| e.version.ts <= at).await
    }

    /// Reads the latest version of `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the key does not exist.
    pub async fn get_latest(&self, key: &Key) -> Result<VersionedValue, StoreError> {
        self.get_where(key, |_| true).await
    }

    async fn get_where(
        &self,
        key: &Key,
        pred: impl Fn(&MapEntry) -> bool,
    ) -> Result<VersionedValue, StoreError> {
        self.handle.sleep(self.cfg.op_overhead).await;
        for _ in 0..8 {
            let target = {
                let mut inner = self.inner.borrow_mut();
                let Some(chain) = inner.map.get(key) else {
                    return Err(StoreError::NotFound);
                };
                let Some(e) = chain.iter().find(|e| pred(e)) else {
                    return Err(StoreError::NotFound);
                };
                let e = *e;
                match e.loc {
                    Loc::Buffered { gen, idx } => {
                        let rec = match inner.streams.iter().find(|st| st.gen == gen) {
                            Some(st) => st.open.get(idx).map(|p| p.rec.clone()),
                            None => inner.flushing.get(&gen).and_then(|pg| pg.get(idx).cloned()),
                        };
                        match rec {
                            Some(rec) => {
                                inner.stats.gets += 1;
                                return Ok(VersionedValue {
                                    version: e.version,
                                    value: rec.value,
                                });
                            }
                            None => continue,
                        }
                    }
                    Loc::Seg { lba, slot } => Some((e.version, lba, slot)),
                }
            };
            let Some((version, lba, slot)) = target else {
                continue;
            };
            match self.ftl.read(lba).await {
                Ok(seg) => match seg.get(slot as usize) {
                    Some(rec) if rec.key == *key && rec.version == version => {
                        self.inner.borrow_mut().stats.gets += 1;
                        return Ok(VersionedValue {
                            version,
                            value: rec.value.clone(),
                        });
                    }
                    _ => continue,
                },
                Err(_) => continue,
            }
        }
        unreachable!("key {key} kept moving during read; GC livelock")
    }

    /// Removes all versions of `key`.
    pub fn delete(&self, key: &Key) {
        let mut inner = self.inner.borrow_mut();
        if let Some(chain) = inner.map.remove(key) {
            for e in chain {
                if let Loc::Seg { lba, .. } = e.loc {
                    *inner.live.get_mut(&lba).expect("live count") -= 1;
                }
            }
        }
    }

    /// Raises the GC watermark (never moves backwards).
    pub fn set_watermark(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts > inner.watermark {
            inner.watermark = ts;
        }
    }

    /// All mapped versions of `key`, youngest first.
    pub fn versions(&self, key: &Key) -> Vec<Version> {
        self.inner
            .borrow()
            .map
            .get(key)
            .map(|c| c.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.inner.borrow().map.len()
    }

    /// All distinct keys, sorted by byte order (deterministic iteration
    /// for bulk copy / migration sweeps).
    pub fn keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.inner.borrow().map.keys().cloned().collect();
        ks.sort();
        ks
    }

    /// Records the durable write floor (stamped into subsequent segment
    /// programs by the bottom FTL).
    pub fn note_floor(&self, ts: Timestamp) {
        self.ftl.note_floor(ts);
    }

    /// Injects a power failure: tears in-flight segment programs and drops
    /// both mapping levels' volatile state. Returns the number of torn
    /// pages.
    pub fn power_fail(&self) -> u64 {
        let torn = self.ftl.power_fail();
        let mut inner = self.inner.borrow_mut();
        inner.epoch += 1;
        reset_volatile(&mut inner);
        torn
    }

    /// Two-level mount: the bottom FTL rebuilds its LBA map from OOB, then
    /// the KV layer rebuilds chains by peeking each surviving segment.
    /// Duplicate `(key, version)` copies (a GC relocation interrupted
    /// between program and trim) keep the lowest-LBA copy; the rest stay
    /// unreferenced garbage for the next compaction.
    pub async fn mount(&self) -> crate::backend::MountReport {
        let _gc = self.gc_lock.acquire().await;
        {
            let mut inner = self.inner.borrow_mut();
            inner.epoch += 1;
            reset_volatile(&mut inner);
        }
        let mut report = self.ftl.mount().await;
        let usable =
            ((self.ftl.logical_pages() as f64) * (1.0 - self.cfg.top_overprovision)).floor() as u32;
        let mapped = self.ftl.mapped_lbas();
        let mut inner = self.inner.borrow_mut();
        for &lba in &mapped {
            let Some(seg) = self.ftl.peek_lba(lba) else {
                continue;
            };
            *inner.written.entry(lba).or_insert(0) += seg.len() as u32;
            inner.live.entry(lba).or_insert(0);
            for (slot, rec) in seg.iter().enumerate() {
                let chain = inner.map.entry(rec.key.clone()).or_default();
                if chain.iter().any(|e| e.version == rec.version) {
                    continue;
                }
                let pos = chain
                    .iter()
                    .position(|e| e.version < rec.version)
                    .unwrap_or(chain.len());
                chain.insert(
                    pos,
                    MapEntry {
                        version: rec.version,
                        loc: Loc::Seg {
                            lba,
                            slot: slot as u16,
                        },
                    },
                );
                *inner.live.get_mut(&lba).unwrap() += 1;
            }
        }
        let used: std::collections::HashSet<u32> = mapped.into_iter().collect();
        inner.free_lbas = (0..usable).rev().filter(|l| !used.contains(l)).collect();
        report.keys = inner.map.len() as u64;
        report
    }

    /// Zero-time bulk load; call [`SplitStore::finish_load`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the store fills during the load.
    pub fn bulk_load(&self, key: Key, value: Value, version: Version) {
        let rec = TupleRecord {
            key,
            version,
            value,
        };
        let page_size = self.ftl.device().config().page_size;
        let mut inner = self.inner.borrow_mut();
        if !inner.load_buf.is_empty() && inner.load_bytes + rec.accounted_len() > page_size {
            drop(inner);
            self.install_load_seg();
            inner = self.inner.borrow_mut();
        }
        inner.load_bytes += rec.accounted_len();
        inner.load_buf.push(rec);
    }

    /// Flushes the bulk-load packer.
    pub fn finish_load(&self) {
        if !self.inner.borrow().load_buf.is_empty() {
            self.install_load_seg();
        }
    }

    fn install_load_seg(&self) {
        let recs = {
            let mut inner = self.inner.borrow_mut();
            inner.load_bytes = 0;
            std::mem::take(&mut inner.load_buf)
        };
        let lba = self.alloc_lba(false).expect("store full during bulk load");
        self.ftl.install(lba, Rc::new(recs.clone()));
        let mut inner = self.inner.borrow_mut();
        *inner.written.entry(lba).or_insert(0) += recs.len() as u32;
        let n = recs.len() as u32;
        *inner.live.entry(lba).or_insert(0) += n;
        for (slot, rec) in recs.into_iter().enumerate() {
            let entry = MapEntry {
                version: rec.version,
                loc: Loc::Seg {
                    lba,
                    slot: slot as u16,
                },
            };
            let chain = inner.map.entry(rec.key).or_default();
            let pos = chain
                .iter()
                .position(|e| e.version < entry.version)
                .unwrap_or(chain.len());
            chain.insert(pos, entry);
        }
    }

    /// One KV-layer GC pass: compact the segment with the most dead tuples.
    async fn collect_once(&self) -> bool {
        let _gc = self.gc_lock.acquire().await;
        let epoch = self.inner.borrow().epoch;
        let victim = {
            let inner = self.inner.borrow();
            inner
                .written
                .iter()
                .filter(|&(lba, &w)| w > inner.live.get(lba).copied().unwrap_or(0))
                .max_by_key(|&(lba, &w)| w - inner.live.get(lba).copied().unwrap_or(0))
                .map(|(&lba, _)| lba)
        };
        let Some(victim) = victim else { return false };
        let Ok(seg) = self.ftl.read(victim).await else {
            // Unmapped (race with another collection); drop the bookkeeping.
            let mut inner = self.inner.borrow_mut();
            inner.written.remove(&victim);
            inner.live.remove(&victim);
            return false;
        };
        let mut waiters = Vec::new();
        let mut flush_batches = Vec::new();
        for (slot, rec) in seg.iter().enumerate() {
            let live = {
                let mut inner = self.inner.borrow_mut();
                let watermark = inner.watermark;
                if let Some(chain) = inner.map.get_mut(&rec.key) {
                    let (freed, pruned) = prune_chain(chain, watermark);
                    for lba in freed {
                        *inner.live.get_mut(&lba).expect("live count") -= 1;
                    }
                    inner.stats.versions_pruned += pruned;
                }
                inner.map.get(&rec.key).is_some_and(|chain| {
                    chain.iter().any(|e| {
                        e.version == rec.version
                            && e.loc
                                == Loc::Seg {
                                    lba: victim,
                                    slot: slot as u16,
                                }
                    })
                })
            };
            if live {
                let (_g, _i, rx, to_flush) = self.enqueue(
                    rec.clone(),
                    Origin::Reloc {
                        old_lba: victim,
                        old_slot: slot as u16,
                    },
                );
                waiters.push(rx);
                if let Some(b) = to_flush {
                    flush_batches.push(b);
                }
            }
        }
        {
            let mut inner = self.inner.borrow_mut();
            for s in 0..inner.streams.len() {
                let has_reloc = inner.streams[s]
                    .open
                    .iter()
                    .any(|p| matches!(p.origin, Origin::Reloc { .. }));
                if has_reloc {
                    let b = take_open(&mut inner, s);
                    flush_batches.push(b);
                }
            }
        }
        for b in flush_batches {
            // Boxed to break the flush -> collect_once -> flush async cycle.
            Box::pin(self.flush(b)).await;
        }
        let relocated = waiters.len() as u64;
        for rx in waiters {
            match rx.await {
                Ok(Ok(())) => {}
                _ => return false,
            }
        }
        // A power failure interrupted this pass; the rebuilt state already
        // re-mapped the victim's records, so leave it alone.
        if self.inner.borrow().epoch != epoch {
            return false;
        }
        self.ftl.trim(victim);
        let reclaimed = {
            let mut inner = self.inner.borrow_mut();
            debug_assert_eq!(inner.live.get(&victim).copied().unwrap_or(0), 0);
            inner.live.remove(&victim);
            let written = inner.written.remove(&victim).unwrap_or(0) as u64;
            inner.free_lbas.push(victim);
            inner.stats.gc_collections += 1;
            written.saturating_sub(relocated)
        };
        self.ftl.device().trace_gc(reclaimed);
        true
    }
}

/// Drops RAM-resident KV state the way a power failure would. `next_gen`
/// stays monotone so stale batches can never alias a rebuilt stream, and
/// dropped waiters resolve their callers to an error.
fn reset_volatile(inner: &mut VftlInner) {
    inner.map.clear();
    for s in 0..inner.streams.len() {
        let gen = inner.next_gen;
        inner.next_gen += 1;
        inner.streams[s] = Stream {
            open: Vec::new(),
            open_bytes: 0,
            gen,
            waiters: Vec::new(),
        };
    }
    inner.next_stream = 0;
    inner.flushing.clear();
    inner.free_lbas.clear();
    inner.live.clear();
    inner.written.clear();
    inner.watermark = Timestamp::ZERO;
    inner.load_buf.clear();
    inner.load_bytes = 0;
}

fn take_open(inner: &mut VftlInner, s: usize) -> Batch {
    let gen = inner.streams[s].gen;
    inner.streams[s].gen = inner.next_gen;
    inner.next_gen += 1;
    let pendings = std::mem::take(&mut inner.streams[s].open);
    let waiters = std::mem::take(&mut inner.streams[s].waiters);
    inner.streams[s].open_bytes = 0;
    let seg: Segment = Rc::new(pendings.iter().map(|p| p.rec.clone()).collect());
    inner.flushing.insert(gen, seg.clone());
    Batch {
        gen,
        pendings,
        waiters,
        seg,
    }
}

fn prune_chain(chain: &mut Vec<MapEntry>, watermark: Timestamp) -> (Vec<u32>, u64) {
    let Some(keep) = chain.iter().position(|e| e.version.ts <= watermark) else {
        return (Vec::new(), 0);
    };
    let mut freed = Vec::new();
    let mut pruned = 0;
    for e in chain.drain(keep + 1..) {
        if let Loc::Seg { lba, .. } = e.loc {
            freed.push(lba);
        }
        pruned += 1;
    }
    (freed, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::value;
    use simkit::Sim;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn nand(blocks: u32) -> NandConfig {
        NandConfig {
            blocks,
            pages_per_block: 4,
            channels: 2,
            queue_depth: 16,
            ..NandConfig::default()
        }
    }

    fn val(n: usize) -> Value {
        value(vec![0xcdu8; n])
    }

    fn store(sim: &Sim, blocks: u32) -> SplitStore {
        SplitStore::new(sim.handle(), nand(blocks), VftlConfig::default())
    }

    #[test]
    fn put_get_round_trip() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 32);
        sim.block_on(async move {
            s.put(Key::from(1u64), val(100), v(10)).await.unwrap();
            let got = s.get_at(&Key::from(1u64), Timestamp(10)).await.unwrap();
            assert_eq!(got.version, v(10));
        });
    }

    #[test]
    fn snapshot_reads_see_old_versions() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 32);
        sim.block_on(async move {
            let k = Key::from(1u64);
            for ts in [10, 20, 30] {
                s.put(k.clone(), val(ts as usize), v(ts)).await.unwrap();
            }
            assert_eq!(s.get_at(&k, Timestamp(25)).await.unwrap().version, v(20));
            assert_eq!(s.get_at(&k, Timestamp(10)).await.unwrap().version, v(10));
        });
    }

    #[test]
    fn double_gc_reclaims_space() {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        // Small device: 20 blocks * 4 pages = 80 pages; 72 logical after
        // bottom OP; ~64 segments after top OP.
        let s = store(&sim, 20);
        sim.block_on(async move {
            let keys = 30u64;
            for round in 0..40u64 {
                let mut joins = Vec::new();
                for i in 0..keys {
                    let ts = round * 100 + i + 1;
                    let s2 = s.clone();
                    joins.push(h.spawn(async move {
                        s2.put(Key::from(i), val(472), v(ts)).await.unwrap();
                    }));
                }
                for j in joins {
                    j.await;
                }
                s.set_watermark(Timestamp(round * 100));
            }
            let top = s.stats();
            assert!(top.gc_collections > 5, "top GC ran: {top:?}");
            for i in 0..keys {
                let got = s.get_latest(&Key::from(i)).await.unwrap();
                assert_eq!(got.version, v(39 * 100 + i + 1));
            }
        });
    }

    #[test]
    fn both_levels_of_gc_observable() {
        let mut sim = Sim::new(4);
        let h = sim.handle();
        let s = store(&sim, 16);
        sim.block_on(async move {
            let keys = 20u64;
            for round in 0..60u64 {
                let mut joins = Vec::new();
                for i in 0..keys {
                    let ts = round * 100 + i + 1;
                    let s2 = s.clone();
                    let h2 = h.clone();
                    joins.push(h.spawn(async move {
                        // Transient capacity backpressure is expected on a
                        // device this tight; retry like a real client.
                        loop {
                            match s2.put(Key::from(i), val(472), v(ts)).await {
                                Ok(()) => break,
                                Err(StoreError::CapacityExhausted) => {
                                    h2.sleep(Duration::from_millis(2)).await;
                                }
                                Err(e) => panic!("{e}"),
                            }
                        }
                    }));
                }
                for j in joins {
                    j.await;
                }
                s.set_watermark(Timestamp(round * 100));
            }
            // Top-level compactions happened...
            assert!(s.stats().gc_collections > 0);
            // ...and the bottom FTL erased blocks too.
            assert!(s.ftl().device().stats().block_erases > 0);
        });
    }

    #[test]
    fn capacity_exhausted_when_everything_live() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 6); // tiny: 24 pages
        sim.block_on(async move {
            let mut err = None;
            for i in 0..400u64 {
                if let Err(e) = s.put(Key::from(i), val(472), v(i + 1)).await {
                    err = Some(e);
                    break;
                }
            }
            assert_eq!(err, Some(StoreError::CapacityExhausted));
        });
    }

    #[test]
    fn bulk_load_visible_and_instant() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = store(&sim, 64);
        for i in 0..500u64 {
            s.bulk_load(Key::from(i), val(472), v(1));
        }
        s.finish_load();
        assert_eq!(h.now(), simkit::SimTime::ZERO);
        sim.block_on(async move {
            assert_eq!(
                s.get_at(&Key::from(123u64), Timestamp(5))
                    .await
                    .unwrap()
                    .version,
                v(1)
            );
        });
    }

    #[test]
    fn mount_recovers_chains_after_power_fail() {
        let mut sim = Sim::new(11);
        let h = sim.handle();
        let s = store(&sim, 32);
        sim.block_on(async move {
            let k = Key::from(1u64);
            for ts in [10u64, 20, 30] {
                s.put(k.clone(), val(100), v(ts)).await.unwrap();
            }
            for i in 2..6u64 {
                s.put(Key::from(i), val(100), v(i + 50)).await.unwrap();
            }
            // Let the packing windows flush everything durably.
            h.sleep(Duration::from_millis(5)).await;
            // A write still buffered (never programmed) at the failure is
            // simply lost — it was never acked.
            let s2 = s.clone();
            h.spawn(async move {
                let _ = s2.put(Key::from(9u64), val(100), v(900)).await;
            });
            // Past the 8 µs op overhead, inside the 1 ms packing window.
            h.sleep(Duration::from_micros(12)).await;
            s.power_fail();
            assert_eq!(s.key_count(), 0);
            let report = s.mount().await;
            assert_eq!(report.keys, 5);
            // Full version chain for key 1 survives: snapshot reads work.
            assert_eq!(s.versions(&k), vec![v(30), v(20), v(10)]);
            assert_eq!(s.get_at(&k, Timestamp(25)).await.unwrap().version, v(20));
            assert!(s.get_latest(&Key::from(9u64)).await.is_err());
            // The store keeps working after recovery.
            s.put(Key::from(7u64), val(100), v(700)).await.unwrap();
            assert_eq!(
                s.get_latest(&Key::from(7u64)).await.unwrap().version,
                v(700)
            );
        });
    }

    #[test]
    fn unordered_applies_are_idempotent() {
        let mut sim = Sim::new(1);
        let s = store(&sim, 32);
        sim.block_on(async move {
            let k = Key::from(9u64);
            s.apply_unordered(k.clone(), val(1), v(20)).await.unwrap();
            s.apply_unordered(k.clone(), val(2), v(10)).await.unwrap();
            s.apply_unordered(k.clone(), val(1), v(20)).await.unwrap();
            assert_eq!(s.versions(&k), vec![v(20), v(10)]);
        });
    }
}
