//! Demand-paged mapping (DFTL-style) — the §3.1 extension the paper leaves
//! as future work.
//!
//! SEMEL SDF assumes the whole key → flash mapping fits in server DRAM.
//! When it does not, DFTL \[Gupta et al., ASPLOS'09\] keeps only hot
//! translations resident and pages the rest from flash-resident translation
//! pages. This module implements that cost model as a transparent wrapper
//! over [`UnifiedStore`]:
//!
//! - a bounded LRU of key translations lives "in DRAM";
//! - a miss charges one translation-page **read** (50 µs by default)
//!   before the data access proceeds;
//! - evicting a *dirty* translation (a key written since it was loaded)
//!   charges a translation-page **write** amortized over the batch of
//!   dirty entries that share a translation page.
//!
//! The `repro_ablation_dftl` binary sweeps the DRAM fraction to show what
//! the paper's all-in-DRAM assumption is worth.

use std::cell::RefCell;
use std::collections::BTreeMap;

use perfkit::FastMap;
use std::rc::Rc;

use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::mftl::UnifiedStore;
use crate::types::{Key, StoreError, Value, VersionedValue};

/// Tuning for the demand-paged mapping front.
#[derive(Debug, Clone)]
pub struct DftlConfig {
    /// Key translations resident in DRAM.
    pub cached_entries: usize,
    /// Translations per flash translation page (amortizes dirty evictions).
    pub entries_per_translation_page: usize,
}

impl Default for DftlConfig {
    fn default() -> DftlConfig {
        DftlConfig {
            cached_entries: 4096,
            // 4 KB page / 16 B per (key-hash, location) entry.
            entries_per_translation_page: 256,
        }
    }
}

/// Mapping-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DftlStats {
    /// Lookups served from the resident table.
    pub hits: u64,
    /// Lookups that paged a translation in from flash.
    pub misses: u64,
    /// Translation-page writes caused by dirty evictions.
    pub translation_writes: u64,
}

impl DftlStats {
    /// Cache hit fraction.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct DftlState {
    /// key -> (lru sequence, dirty)
    resident: FastMap<Key, (u64, bool)>,
    /// lru sequence -> key (eviction order)
    order: BTreeMap<u64, Key>,
    next_seq: u64,
    /// Dirty evictions accumulated toward the next translation-page write.
    pending_dirty: usize,
    stats: DftlStats,
}

/// A [`UnifiedStore`] whose mapping table is demand-paged. Cloning shares
/// the store and its cache.
#[derive(Clone)]
pub struct DemandMappedStore {
    handle: SimHandle,
    inner: UnifiedStore,
    cfg: Rc<DftlConfig>,
    state: Rc<RefCell<DftlState>>,
}

impl std::fmt::Debug for DemandMappedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemandMappedStore")
            .field("resident", &self.state.borrow().resident.len())
            .field("capacity", &self.cfg.cached_entries)
            .finish()
    }
}

impl DemandMappedStore {
    /// Wraps `inner` with a demand-paged mapping of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cached_entries` is zero.
    pub fn new(handle: SimHandle, inner: UnifiedStore, cfg: DftlConfig) -> DemandMappedStore {
        assert!(cfg.cached_entries > 0, "need at least one resident entry");
        DemandMappedStore {
            handle,
            inner,
            cfg: Rc::new(cfg),
            state: Rc::new(RefCell::new(DftlState {
                resident: FastMap::default(),
                order: BTreeMap::new(),
                next_seq: 0,
                pending_dirty: 0,
                stats: DftlStats::default(),
            })),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &UnifiedStore {
        &self.inner
    }

    /// Mapping-cache counters.
    pub fn stats(&self) -> DftlStats {
        self.state.borrow().stats
    }

    /// Touches `key` in the mapping cache, charging flash time for a miss
    /// and for any dirty eviction it forces.
    async fn charge(&self, key: &Key, write: bool) {
        let (miss, flush) = {
            let mut st = self.state.borrow_mut();
            let seq = st.next_seq;
            st.next_seq += 1;
            let miss = match st.resident.get_mut(key) {
                Some((old_seq, dirty)) => {
                    let old = *old_seq;
                    *old_seq = seq;
                    *dirty |= write;
                    st.order.remove(&old);
                    st.order.insert(seq, key.clone());
                    st.stats.hits += 1;
                    false
                }
                None => {
                    st.stats.misses += 1;
                    st.resident.insert(key.clone(), (seq, write));
                    st.order.insert(seq, key.clone());
                    true
                }
            };
            // Evict beyond capacity (oldest first).
            let mut flush = false;
            while st.resident.len() > self.cfg.cached_entries {
                let (&old, victim) = st.order.iter().next().expect("order non-empty");
                let victim = victim.clone();
                st.order.remove(&old);
                if let Some((_, dirty)) = st.resident.remove(&victim) {
                    if dirty {
                        st.pending_dirty += 1;
                        if st.pending_dirty >= self.cfg.entries_per_translation_page {
                            st.pending_dirty = 0;
                            st.stats.translation_writes += 1;
                            flush = true;
                        }
                    }
                }
            }
            (miss, flush)
        };
        let dev = self.inner.device().config();
        if miss {
            self.handle.sleep(dev.read_latency).await;
        }
        if flush {
            self.handle.sleep(dev.write_latency).await;
        }
    }

    /// Snapshot read through the paged mapping.
    ///
    /// # Errors
    ///
    /// As [`UnifiedStore::get_at`].
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        self.charge(key, false).await;
        self.inner.get_at(key, at).await
    }

    /// Write through the paged mapping (the translation becomes dirty).
    ///
    /// # Errors
    ///
    /// As [`UnifiedStore::put`].
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        self.charge(&key, true).await;
        self.inner.put(key, value, version).await
    }

    /// Records the durable write floor on the wrapped store.
    pub fn note_floor(&self, ts: Timestamp) {
        self.inner.note_floor(ts);
    }

    /// Injects a power failure: the wrapped store loses its volatile state
    /// and the resident translation cache (plain DRAM) is emptied.
    pub fn power_fail(&self) -> u64 {
        let torn = self.inner.power_fail();
        let mut st = self.state.borrow_mut();
        st.resident.clear();
        st.order.clear();
        st.pending_dirty = 0;
        torn
    }

    /// Mounts the wrapped store; the translation cache starts cold and
    /// refills on demand.
    pub async fn mount(&self) -> crate::backend::MountReport {
        self.inner.mount().await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mftl::MftlConfig;
    use crate::nand::NandConfig;
    use crate::types::value;
    use simkit::Sim;
    use std::time::Duration;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn build(sim: &Sim, cached: usize) -> DemandMappedStore {
        let h = sim.handle();
        let inner = UnifiedStore::new(
            h.clone(),
            NandConfig {
                blocks: 64,
                pages_per_block: 8,
                channels: 4,
                ..NandConfig::default()
            },
            MftlConfig {
                op_overhead: Duration::ZERO,
                ..MftlConfig::default()
            },
        );
        for i in 0..64u64 {
            inner.bulk_load(Key::from(i), value(vec![1; 16]), v(1));
        }
        inner.finish_load();
        DemandMappedStore::new(
            h,
            inner,
            DftlConfig {
                cached_entries: cached,
                entries_per_translation_page: 4,
            },
        )
    }

    #[test]
    fn warm_cache_serves_hits_without_extra_latency() {
        let mut sim = Sim::new(1);
        let s = build(&sim, 16);
        let h = sim.handle();
        let hh = h.clone();
        let s2 = s.clone();
        sim.block_on(async move {
            let s = s2;
            // First access: miss (translation read + data read).
            let t0 = hh.now();
            s.get_at(&Key::from(1u64), Timestamp(1)).await.unwrap();
            let cold = hh.now() - t0;
            // Second access: hit (data read only).
            let t1 = hh.now();
            s.get_at(&Key::from(1u64), Timestamp(1)).await.unwrap();
            let warm = hh.now() - t1;
            assert!(cold > warm, "cold {cold:?} <= warm {warm:?}");
            assert_eq!(cold - warm, Duration::from_micros(50));
        });
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut sim = Sim::new(2);
        let s = build(&sim, 8);
        sim.block_on({
            let s = s.clone();
            async move {
                for round in 0..5 {
                    for i in 0..8u64 {
                        s.get_at(&Key::from(i), Timestamp(1)).await.unwrap();
                    }
                    let st = s.stats();
                    if round == 0 {
                        assert_eq!(st.misses, 8);
                    }
                }
            }
        });
        // 8 cold misses, then pure hits.
        assert_eq!(s.stats().misses, 8);
        assert_eq!(s.stats().hits, 32);
        assert!(s.stats().hit_rate() > 0.79);
    }

    #[test]
    fn thrashing_working_set_misses_every_time() {
        let mut sim = Sim::new(3);
        let s = build(&sim, 4);
        sim.block_on({
            let s = s.clone();
            async move {
                for _ in 0..3 {
                    for i in 0..16u64 {
                        s.get_at(&Key::from(i), Timestamp(1)).await.unwrap();
                    }
                }
            }
        });
        assert_eq!(s.stats().hits, 0, "LRU over a cyclic scan never hits");
        assert_eq!(s.stats().misses, 48);
    }

    #[test]
    fn dirty_evictions_charge_translation_writes() {
        let mut sim = Sim::new(4);
        let s = build(&sim, 4);
        sim.block_on({
            let s = s.clone();
            async move {
                // Write 16 distinct keys through a 4-entry cache: 12 dirty
                // evictions / 4 per translation page = 3 flushes.
                for i in 0..16u64 {
                    s.put(Key::from(i), value(vec![2; 16]), v(100 + i))
                        .await
                        .unwrap();
                }
            }
        });
        assert_eq!(s.stats().translation_writes, 3);
    }

    #[test]
    fn reads_and_writes_still_correct_through_the_cache() {
        let mut sim = Sim::new(5);
        let s = build(&sim, 2); // pathologically small cache
        sim.block_on({
            let s = s.clone();
            async move {
                for i in 0..10u64 {
                    s.put(Key::from(i), value(vec![i as u8; 16]), v(100 + i))
                        .await
                        .unwrap();
                }
                for i in 0..10u64 {
                    let got = s.get_at(&Key::from(i), Timestamp(u64::MAX)).await.unwrap();
                    assert_eq!(got.version, v(100 + i));
                    assert_eq!(got.value[0], i as u8);
                }
            }
        });
    }
}
