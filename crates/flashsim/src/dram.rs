//! DRAM (battery-backed / NVM) multi-version backend.
//!
//! The paper's fastest backend (§5.2, Figures 7–8): byte-addressable
//! persistent memory with ~100 ns access latency. Because writes land almost
//! instantly, this backend is the *most* sensitive to clock skew — under NTP
//! it shows the highest abort rates, which is exactly Figure 7's point.

use perfkit::FastMap;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use simkit::SimHandle;
use timesync::{Timestamp, Version};

use crate::types::{visible_at, Key, StoreError, StoreStats, Value, VersionedValue};

/// Tuning for a [`DramStore`].
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Per-read latency (≤100 ns for NVM per §1).
    pub read_latency: Duration,
    /// Per-write latency.
    pub write_latency: Duration,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            read_latency: Duration::from_nanos(100),
            write_latency: Duration::from_nanos(150),
        }
    }
}

#[derive(Debug, Default)]
struct DramInner {
    /// Per-key version chains, youngest first.
    map: FastMap<Key, Vec<(Version, Value)>>,
    watermark: Timestamp,
    stats: StoreStats,
    /// Durable write-floor record (battery-protected register).
    floor: Timestamp,
}

/// Multi-version in-memory store; cloning shares it.
#[derive(Debug, Clone)]
pub struct DramStore {
    handle: SimHandle,
    cfg: Rc<DramConfig>,
    inner: Rc<RefCell<DramInner>>,
}

impl DramStore {
    /// Creates an empty store.
    pub fn new(handle: SimHandle, cfg: DramConfig) -> DramStore {
        DramStore {
            handle,
            cfg: Rc::new(cfg),
            inner: Rc::new(RefCell::new(DramInner::default())),
        }
    }

    /// Store counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.borrow().stats
    }

    /// Writes a new version of `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::StaleWrite`] if `version` is not newer than the latest.
    pub async fn put(&self, key: Key, value: Value, version: Version) -> Result<(), StoreError> {
        {
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            if let Some(&(head, _)) = chain.first() {
                if version <= head {
                    return Err(StoreError::StaleWrite(head));
                }
            }
            chain.insert(0, (version, value));
            let watermark = inner.watermark;
            let pruned = prune(inner.map.get_mut(&key).unwrap(), watermark);
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
        }
        self.handle.sleep(self.cfg.write_latency).await;
        Ok(())
    }

    /// Applies a possibly out-of-order replicated write (idempotent).
    pub async fn apply_unordered(&self, key: Key, value: Value, version: Version) {
        {
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.entry(key.clone()).or_default();
            if !chain.iter().any(|&(v, _)| v == version) {
                let pos = chain
                    .iter()
                    .position(|&(v, _)| v < version)
                    .unwrap_or(chain.len());
                chain.insert(pos, (version, value));
            }
            let watermark = inner.watermark;
            let pruned = prune(inner.map.get_mut(&key).unwrap(), watermark);
            inner.stats.versions_pruned += pruned;
            inner.stats.puts += 1;
        }
        self.handle.sleep(self.cfg.write_latency).await;
    }

    /// Applies a batch of unordered writes atomically (all visible at once),
    /// then charges one write latency.
    pub async fn apply_batch_unordered(&self, items: Vec<(Key, Value, Version)>) {
        {
            let mut inner = self.inner.borrow_mut();
            for (key, value, version) in items {
                let chain = inner.map.entry(key.clone()).or_default();
                if !chain.iter().any(|&(v, _)| v == version) {
                    let pos = chain
                        .iter()
                        .position(|&(v, _)| v < version)
                        .unwrap_or(chain.len());
                    chain.insert(pos, (version, value));
                }
                let watermark = inner.watermark;
                let pruned = prune(inner.map.get_mut(&key).unwrap(), watermark);
                inner.stats.versions_pruned += pruned;
                inner.stats.puts += 1;
            }
        }
        self.handle.sleep(self.cfg.write_latency).await;
    }

    /// Snapshot read at `at`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if no version is visible.
    pub async fn get_at(&self, key: &Key, at: Timestamp) -> Result<VersionedValue, StoreError> {
        let out = {
            let mut inner = self.inner.borrow_mut();
            let chain = inner.map.get(key).ok_or(StoreError::NotFound)?;
            let (version, value) = visible_at(chain, at).ok_or(StoreError::NotFound)?;
            let out = VersionedValue {
                version: *version,
                value: value.clone(),
            };
            inner.stats.gets += 1;
            out
        };
        self.handle.sleep(self.cfg.read_latency).await;
        Ok(out)
    }

    /// Reads the latest version.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the key does not exist.
    pub async fn get_latest(&self, key: &Key) -> Result<VersionedValue, StoreError> {
        self.get_at(key, Timestamp::MAX).await
    }

    /// Removes all versions of `key`.
    pub fn delete(&self, key: &Key) {
        self.inner.borrow_mut().map.remove(key);
    }

    /// Raises the GC watermark (never moves backwards).
    pub fn set_watermark(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts > inner.watermark {
            inner.watermark = ts;
        }
    }

    /// All versions of `key`, youngest first.
    pub fn versions(&self, key: &Key) -> Vec<Version> {
        self.inner
            .borrow()
            .map
            .get(key)
            .map(|c| c.iter().map(|&(v, _)| v).collect())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.inner.borrow().map.len()
    }

    /// All distinct keys, sorted by byte order (deterministic iteration
    /// for bulk copy / migration sweeps).
    pub fn keys(&self) -> Vec<Key> {
        let mut ks: Vec<Key> = self.inner.borrow().map.keys().cloned().collect();
        ks.sort();
        ks
    }

    /// Records the durable write floor (battery-protected, so it survives
    /// power failures as-is). Floors never move backwards.
    pub fn note_floor(&self, ts: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        if ts > inner.floor {
            inner.floor = ts;
        }
    }

    /// Power failure on battery-backed DRAM/NVM: contents survive intact
    /// (§5's premise for this backend). Nothing is torn.
    pub fn power_fail(&self) -> u64 {
        0
    }

    /// Mount after a power failure: the battery preserved everything, so
    /// this only reports what is already resident. Zero-time.
    pub fn mount(&self) -> crate::backend::MountReport {
        let inner = self.inner.borrow();
        crate::backend::MountReport {
            pages_scanned: 0,
            torn_pages: 0,
            keys: inner.map.len() as u64,
            floor: inner.floor,
        }
    }

    /// Zero-time bulk load.
    pub fn bulk_load(&self, key: Key, value: Value, version: Version) {
        let mut inner = self.inner.borrow_mut();
        let chain = inner.map.entry(key).or_default();
        let pos = chain
            .iter()
            .position(|&(v, _)| v < version)
            .unwrap_or(chain.len());
        chain.insert(pos, (version, value));
    }
}

fn prune(chain: &mut Vec<(Version, Value)>, watermark: Timestamp) -> u64 {
    let Some(keep) = chain.iter().position(|&(v, _)| v.ts <= watermark) else {
        return 0;
    };
    let n = chain.len() - (keep + 1);
    chain.truncate(keep + 1);
    n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::value;
    use simkit::Sim;
    use timesync::ClientId;

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    #[test]
    fn multi_version_reads() {
        let mut sim = Sim::new(1);
        let s = DramStore::new(sim.handle(), DramConfig::default());
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), value(&b"a"[..]), v(10)).await.unwrap();
            s.put(k.clone(), value(&b"b"[..]), v(20)).await.unwrap();
            assert_eq!(s.get_at(&k, Timestamp(15)).await.unwrap().version, v(10));
            assert_eq!(s.get_at(&k, Timestamp(20)).await.unwrap().version, v(20));
        });
    }

    #[test]
    fn writes_are_fast() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let s = DramStore::new(h.clone(), DramConfig::default());
        let hh = h.clone();
        sim.block_on(async move {
            let t0 = hh.now();
            s.put(Key::from(1u64), value(&b"a"[..]), v(1))
                .await
                .unwrap();
            assert_eq!(hh.now() - t0, Duration::from_nanos(150));
        });
    }

    #[test]
    fn watermark_prunes() {
        let mut sim = Sim::new(1);
        let s = DramStore::new(sim.handle(), DramConfig::default());
        sim.block_on(async move {
            let k = Key::from(1u64);
            for ts in [10, 20, 30] {
                s.put(k.clone(), value(&b"x"[..]), v(ts)).await.unwrap();
            }
            s.set_watermark(Timestamp(25));
            s.put(k.clone(), value(&b"x"[..]), v(40)).await.unwrap();
            assert_eq!(s.versions(&k), vec![v(40), v(30), v(20)]);
        });
    }

    #[test]
    fn stale_write_rejected() {
        let mut sim = Sim::new(1);
        let s = DramStore::new(sim.handle(), DramConfig::default());
        sim.block_on(async move {
            let k = Key::from(1u64);
            s.put(k.clone(), value(&b"a"[..]), v(20)).await.unwrap();
            assert_eq!(
                s.put(k.clone(), value(&b"b"[..]), v(10)).await.unwrap_err(),
                StoreError::StaleWrite(v(20))
            );
        });
    }
}
