//! # flashsim — software-defined flash substrate for SEMEL/MILANA
//!
//! A functional + timing model of the storage stack the paper builds on
//! (§2.2, §3.1, §5.1):
//!
//! - [`nand`] — an Open-Channel-SSD-style NAND device: page-grain programs,
//!   block-grain erases, sequential programming, parallel channels, bounded
//!   queue depth, wear accounting, and the paper's 50 µs / 100 µs / 1 ms
//!   read/program/erase timings;
//! - [`pftl`] — a generic page-mapped log-structured FTL (the "standard
//!   FTL" baseline);
//! - [`mftl`] — **the paper's contribution**: a unified multi-version FTL
//!   that maps keys directly to physical tuple locations, packs small
//!   tuples into pages with a bounded delay, and garbage-collects flash and
//!   versions in one pass;
//! - [`vftl`] — the split baseline: a multi-version KV layer stacked on the
//!   generic FTL (two mapping steps, two GCs, double over-provisioning);
//! - [`sftl`] — a single-version baseline (no snapshot reads);
//! - [`dram`] — a battery-backed-DRAM/NVM-speed multi-version store;
//! - [`dftl`] — the §3.1 future-work extension: demand-paged mapping for
//!   servers whose DRAM cannot hold the whole table;
//! - [`oob`] — per-page out-of-band metadata (key, version, epoch, floor,
//!   checksum) that makes mapping tables reconstructible from flash alone
//!   after a power failure (§4.5 recovery);
//! - [`backend`] — one enum over all four so servers swap backends freely.
//!
//! All stores share the SEMEL semantics: versions are `(timestamp, client)`
//! stamps, reads are snapshot reads ("youngest version ≤ t"), stale primary
//! writes are rejected for at-most-once, replicated writes may arrive in any
//! order, and a watermark bounds version history for GC.

#![warn(missing_docs)]

pub mod backend;
pub mod dftl;
pub mod dram;
pub mod mftl;
pub mod nand;
pub mod oob;
pub mod pftl;
pub mod sftl;
pub mod types;
pub mod vftl;

pub use backend::{Backend, BackendKind, MountReport};
pub use nand::{NandConfig, NandDevice, PhysLoc};
pub use oob::{PageOob, ScannedPage};
pub use types::{value, Key, StoreError, StoreStats, TupleRecord, Value, VersionedValue};
