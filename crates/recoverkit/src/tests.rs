//! End-to-end cold-restart recovery tests on a simulated MILANA cluster.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, Key};
use milana::client::TxnOpts;
use milana::cluster::MilanaCluster;
use milana::msg::{TxnRequest, TxnResponse};
use obskit::{Obs, RecoveryPhase, TraceEvent};
use rand::Rng;
use semel::shard::ShardId;
use simkit::Sim;
use timesync::Timestamp;

use crate::{cluster_config, commit_increments, dec, enc, run_recovery_trial, RecoverySpec};

fn small_spec() -> RecoverySpec {
    RecoverySpec {
        store_keys: 400,
        warm_commits: 24,
        outage_commits: 24,
        hot_keys: 8,
        ..RecoverySpec::default()
    }
}

#[test]
fn cold_restart_recovers_every_acked_write() {
    let t = run_recovery_trial(&small_spec());
    assert!(t.clean(), "lost {} acked writes: {t:?}", t.lost_writes);
    assert!(t.outage_acked > 0, "outage window committed nothing");
    assert!(t.mount_ns > 0, "mount scan took no time");
    assert!(
        t.catchup_keys > 0,
        "anti-entropy applied nothing despite an outage"
    );
    assert!(
        t.mttr_ns >= t.mount_ns,
        "MTTR cannot undercut the mount scan"
    );
}

#[test]
fn durability_skip_is_observed_as_lost_writes() {
    // The fraud hook adopts the mounted state and skips catch-up: every
    // commit acked during the outage is missing from the recovered
    // replica, and the trial's audit must say so.
    let spec = RecoverySpec {
        skip_durability: true,
        ..small_spec()
    };
    let t = run_recovery_trial(&spec);
    assert!(
        t.lost_writes > 0,
        "durability fraud went unnoticed by the audit: {t:?}"
    );
    assert_eq!(t.catchup_keys, 0, "fraud mode must not run catch-up");
}

#[test]
fn trial_json_is_byte_stable() {
    let spec = small_spec();
    let a = run_recovery_trial(&spec).to_json().to_pretty_string();
    let b = run_recovery_trial(&spec).to_json().to_pretty_string();
    assert_eq!(a, b, "same seed must produce identical bytes");
}

#[test]
fn mount_time_grows_with_store_size() {
    // The scan walks every programmed page, so a bigger preload means a
    // longer mount at a fixed scan rate — the MTTR-vs-size axis the
    // repro_recovery sweep plots.
    let base = RecoverySpec {
        mount_scan_rate: 20_000,
        warm_commits: 12,
        outage_commits: 12,
        hot_keys: 8,
        ..RecoverySpec::default()
    };
    let small = run_recovery_trial(&RecoverySpec {
        store_keys: 400,
        ..base.clone()
    });
    let big = run_recovery_trial(&RecoverySpec {
        store_keys: 4_000,
        ..base
    });
    assert!(small.clean() && big.clean());
    assert!(
        big.mount_ns > small.mount_ns,
        "mount did not scale with store size: {} !> {}",
        big.mount_ns,
        small.mount_ns
    );
}

/// Satellite: a cold-restarted backup must answer `NotReady` to readkit
/// `ReadAt` for the whole mount + catch-up window — the durable floor it
/// mounted is a promise about client clocks, not applied coverage, so a
/// snapshot served off it could miss commits acked during the outage.
/// Only after the catch-up splice and live floor envelopes re-promise a
/// write floor may it serve, and then with the post-outage value.
#[test]
fn cold_backup_gates_read_at_until_floor_repromised() {
    let mut sim = Sim::new(42);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 16);
    let spec = RecoverySpec {
        store_keys: 600,
        hot_keys: 8,
        ..RecoverySpec::default()
    };
    let mut cfg = cluster_config(&spec, &obs);
    // Fast floor propagation so the re-promise happens within the test.
    cfg.tuning.gossip_every = Some(Duration::from_millis(2));
    cfg.client_cfg.watermark_interval = Duration::from_millis(2);
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cfg)));
    let shard = ShardId(0);
    let victim = 2;
    let victim_addr = cluster.borrow().replicas[0][victim].addr;

    let expected = Rc::new(RefCell::new(BTreeMap::new()));
    let acked = Rc::new(Cell::new(0u64));
    {
        let (cl, hh, sp, exp, ak) = (
            cluster.clone(),
            h.clone(),
            spec.clone(),
            expected.clone(),
            acked.clone(),
        );
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(5)).await;
            commit_increments(&cl, &hh, &sp, 16, &exp, &ak).await;
        });
    }
    cluster.borrow().power_fail_replica(shard, victim);

    // The outage write the recovered backup must not pretend to cover.
    let key = Key::from(0u64);
    let (final_val, commit_ts) = {
        let (cl, hh, k) = (cluster.clone(), h.clone(), key.clone());
        sim.block_on(async move {
            let c = cl.borrow().clients[0].clone();
            loop {
                let mut t = c.begin_with(TxnOpts::default());
                let cur = match t.get(&k).await {
                    Ok(v) => dec(&v),
                    Err(_) => {
                        hh.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(cur + 1));
                if let Ok(info) = t.commit().await {
                    return (cur + 1, info.ts_commit.expect("write commit has a stamp"));
                }
                hh.sleep(Duration::from_millis(2)).await;
            }
        })
    };

    cluster.borrow_mut().restart_replica_cold(shard, victim);

    // Hammer the recovering backup with ReadAt: every reply before the
    // Serving flip must be a refusal, never a served snapshot.
    let rpc = cluster.borrow().master_rpc.clone();
    {
        let (cl, hh, rpc, k) = (cluster.clone(), h.clone(), rpc.clone(), key.clone());
        sim.block_on(async move {
            let mut refusals = 0u32;
            for attempt in 0..5_000u32 {
                let resp = rpc
                    .call::<TxnRequest, TxnResponse>(
                        victim_addr,
                        TxnRequest::ReadAt {
                            key: k.clone(),
                            at: Timestamp(1),
                            client: timesync::ClientId(0),
                        },
                        Duration::from_millis(50),
                    )
                    .await;
                if let Ok(TxnResponse::FromReplica { .. }) = resp {
                    // The sim is single-threaded: the serving flip happens
                    // strictly before any served reply is sent.
                    assert!(
                        cl.borrow().replicas[0][victim].server.is_serving(),
                        "cold backup served a snapshot before its floor was re-promised"
                    );
                }
                if cl.borrow().replicas[0][victim].server.is_serving() {
                    break;
                }
                refusals += 1;
                assert!(attempt < 4_999, "recovery never finished");
                hh.sleep(Duration::from_micros(200)).await;
            }
            assert!(refusals > 0, "no refusal observed during recovery");
        });
    }

    // Post-recovery: keep a little write traffic flowing so floor
    // envelopes re-promise coverage, then the backup must serve a fresh
    // snapshot — with (at least) the outage value, never the stale
    // pre-outage one the mounted floor alone would have promised. The
    // fresh `at` matters: MVCC GC legitimately prunes versions below the
    // re-advanced watermark, so exact historical stamps can vanish.
    {
        let (cl, hh, sp, exp, ak) = (
            cluster.clone(),
            h.clone(),
            spec.clone(),
            expected.clone(),
            acked.clone(),
        );
        sim.block_on(async move {
            commit_increments(&cl, &hh, &sp, 8, &exp, &ak).await;
        });
    }
    let fresh_ts = {
        let (cl, hh, k) = (cluster.clone(), h.clone(), key.clone());
        sim.block_on(async move {
            let c = cl.borrow().clients[0].clone();
            loop {
                let mut t = c.begin_with(TxnOpts::default());
                let cur = match t.get(&k).await {
                    Ok(v) => dec(&v),
                    Err(_) => {
                        hh.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(cur + 1));
                if let Ok(info) = t.commit().await {
                    return info.ts_commit.expect("write commit has a stamp");
                }
                hh.sleep(Duration::from_millis(2)).await;
            }
        })
    };
    assert!(fresh_ts > commit_ts);
    let hh = h.clone();
    sim.block_on(async move {
        for attempt in 0..2_000u32 {
            let resp = rpc
                .call::<TxnRequest, TxnResponse>(
                    victim_addr,
                    TxnRequest::ReadAt {
                        key: key.clone(),
                        at: fresh_ts,
                        client: timesync::ClientId(0),
                    },
                    Duration::from_millis(50),
                )
                .await;
            match resp {
                Ok(TxnResponse::FromReplica {
                    reply, watermark, ..
                }) => {
                    assert!(
                        watermark >= fresh_ts,
                        "served below the advertised watermark"
                    );
                    match *reply {
                        TxnResponse::Value { value: v, .. } => {
                            assert!(
                                dec(&v) > final_val,
                                "recovered backup served a pre-outage value"
                            );
                        }
                        other => panic!("unexpected inner reply {other:?}"),
                    }
                    return;
                }
                // TooStale / NotReady: floor not re-promised yet, retry.
                _ => hh.sleep(Duration::from_millis(1)).await,
            }
            assert!(
                attempt < 1_999,
                "backup never re-promised a floor covering the commit"
            );
        }
    });
}

/// Satellite: promoting a replica *while its cold-restart catch-up is
/// still running* must apply every outcome exactly once. The promotion's
/// log merge (from the surviving backup) supersedes the aborted
/// anti-entropy sweep; records the sweep already installed are skipped via
/// the applied set, so nothing is double-applied, and concurrent Prepares
/// racing the promotion either land in the merged table or are retried by
/// their clients.
#[test]
fn recover_as_primary_races_prepares_during_cold_catchup() {
    let mut sim = Sim::new(7);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 17);
    let spec = RecoverySpec {
        store_keys: 800,
        hot_keys: 8,
        clients: 4,
        // Tiny pages stretch the catch-up sweep so the promotion reliably
        // lands inside it.
        catchup_batch: 2,
        mount_scan_rate: 50_000,
        ..RecoverySpec::default()
    };
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(
        &h,
        cluster_config(&spec, &obs),
    )));
    let shard = ShardId(0);
    let victim = 2;
    let (a0, a1, victim_addr) = {
        let cl = cluster.borrow();
        (
            cl.replicas[0][0].addr,
            cl.replicas[0][1].addr,
            cl.replicas[0][victim].addr,
        )
    };

    // Continuous contended increments, one in flight per client.
    let keys = spec.hot_keys;
    let acked = Rc::new(Cell::new(0u64));
    let stop = Rc::new(Cell::new(false));
    {
        let clients = cluster.borrow().clients.clone();
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.expect("seeding commit");
            hh.sleep(Duration::from_millis(5)).await;
        });
    }
    for c in &cluster.borrow().clients {
        let c = c.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let hh = h.clone();
        h.spawn(async move {
            let mut rng = hh.fork_rng();
            while !stop.get() {
                let k = Key::from(rng.gen_range(0..keys));
                let mut t = c.begin_with(TxnOpts::default());
                let n = match t.get(&k).await {
                    Ok(v) if v.len() >= 8 => dec(&v),
                    _ => {
                        hh.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(n + 1));
                if t.commit().await.is_ok() {
                    acked.set(acked.get() + 1);
                }
            }
        });
    }

    // Outage: the victim misses a window of committed increments.
    {
        let hh = h.clone();
        sim.block_on(async move { hh.sleep(Duration::from_millis(20)).await });
    }
    cluster.borrow().power_fail_replica(shard, victim);
    {
        let hh = h.clone();
        sim.block_on(async move { hh.sleep(Duration::from_millis(25)).await });
    }

    // Cold restart, then wait for the mount to finish (the promotion must
    // race the *catch-up*, not the device scan).
    let restart_at = h.now().as_nanos();
    cluster.borrow_mut().restart_replica_cold(shard, victim);
    {
        let (hh, obs2) = (h.clone(), obs.clone());
        let victim_node = victim_addr.node.0 as u64;
        sim.block_on(async move {
            loop {
                let mounted = obs2.tracer.events().into_iter().any(|(at, ev)| {
                    at >= restart_at
                        && matches!(
                            ev,
                            TraceEvent::RecoveryStep { node, phase, .. }
                            if node == victim_node && phase == RecoveryPhase::MountDone
                        )
                });
                if mounted {
                    break;
                }
                hh.sleep(Duration::from_micros(100)).await;
            }
        });
    }
    assert!(
        !cluster.borrow().replicas[0][victim].server.is_serving(),
        "catch-up already finished; the promotion would not race it"
    );

    // Fail the primary over to the still-catching-up replica. Backup 1
    // stays alive: it holds every outage commit, so the promotion's log
    // merge keeps the f-coverage durability guarantee intact.
    cluster.borrow().fail_primary(shard);
    assert!(
        cluster
            .borrow()
            .map
            .borrow_mut()
            .promote(shard, victim_addr),
        "victim not in the backup set"
    );
    {
        let rpc = cluster.borrow().master_rpc.clone();
        sim.block_on(async move {
            let resp = rpc
                .call::<TxnRequest, TxnResponse>(
                    victim_addr,
                    TxnRequest::Promote {
                        backups: vec![a0, a1],
                    },
                    Duration::from_secs(2),
                )
                .await;
            assert!(
                matches!(resp, Ok(TxnResponse::PromoteOk)),
                "promotion of the recovering replica failed: {resp:?}"
            );
        });
    }

    // Let the new primary take writes, then stop and drain.
    {
        let hh = h.clone();
        let stop = stop.clone();
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(30)).await;
            stop.set(true);
            hh.sleep(Duration::from_millis(60)).await;
        });
    }
    {
        let cl = cluster.borrow();
        let srv = &cl.replicas[0][victim].server;
        assert!(srv.is_primary(), "victim did not become primary");
        assert!(srv.is_serving(), "promoted victim never started serving");
    }

    // Exactly-once audit: the counter sum equals the acked increments,
    // give or take unknown-outcome attempts and one in-flight transaction
    // per client. A double-applied outcome would overshoot the upper
    // bound; a lost one would undershoot the lower.
    let clients = cluster.borrow().clients.clone();
    let n_clients = clients.len() as u64;
    let hh = h.clone();
    let total = sim.block_on(async move {
        'outer: for _ in 0..500u32 {
            let mut t = clients[0].begin_with(TxnOpts::default());
            let mut sum = 0u64;
            for k in 0..keys {
                match t.get(&Key::from(k)).await {
                    Ok(v) if v.len() >= 8 => sum += dec(&v),
                    _ => {
                        hh.sleep(Duration::from_millis(2)).await;
                        continue 'outer;
                    }
                }
            }
            if t.commit().await.is_ok() {
                return sum;
            }
            hh.sleep(Duration::from_millis(2)).await;
        }
        panic!("audit transaction never committed");
    });
    let acked = acked.get();
    let unknowns: u64 = cluster
        .borrow()
        .clients
        .iter()
        .map(|c| c.stats().unknown)
        .sum();
    assert!(acked > 0, "workload never committed");
    assert!(
        total >= acked,
        "acked increments lost across the racing promotion: {total} < {acked}"
    );
    assert!(
        total <= acked + unknowns + n_clients,
        "increments applied more than once: {total} > {acked} + {unknowns} + {n_clients}"
    );
}

#[test]
fn enc_dec_roundtrip() {
    assert_eq!(dec(&enc(7)), 7);
    assert_eq!(dec(&value(vec![0u8; 4])), 0, "short values decode to zero");
}
