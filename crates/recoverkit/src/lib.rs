//! recoverkit — cold-restart recovery harness for the MILANA reproduction.
//!
//! Drives the durable recovery path end to end inside one simulation:
//! preload a store, run a live workload, power-fail a replica (tearing the
//! flash backend's volatile state — open page buffers and RAM queues are
//! lost, the in-flight program becomes a torn page), keep committing while
//! it is down, then cold-restart it and measure the recovery timeline:
//!
//! - **mount**: the OOB scan that rebuilds the mapping table and version
//!   chains from flash alone, discarding torn pages
//!   ([`flashsim::Backend::mount`]);
//! - **catch-up**: the cursored anti-entropy sweep of the current primary
//!   that recovers every commit acknowledged during the outage;
//! - **MTTR**: restart to the replica's `Serving` transition.
//!
//! Every trial ends with a durability audit: the last value acknowledged
//! for each workload key must be readable from the recovered replica's
//! backend. [`RecoverySpec::skip_durability`] re-uses milana's seeded
//! fraud hook (adopt the mounted state, skip catch-up) so callers can
//! prove the audit actually detects lost acked writes — `repro_recovery
//! --inject durability-skip` fails if it does not.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, BackendKind, Key, NandConfig, Value};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use obskit::{Json, Obs, RecoveryPhase, TraceEvent};
use semel::shard::ShardId;
use simkit::Sim;
use timesync::ClockSpec;

#[cfg(test)]
mod tests;

/// Parameters for one cold-restart recovery trial.
#[derive(Debug, Clone)]
pub struct RecoverySpec {
    /// Simulation seed.
    pub seed: u64,
    /// Keys preloaded before the workload starts. The mount scan walks
    /// every programmed page, so this is the store-size axis of the
    /// MTTR-vs-size sweep.
    pub store_keys: u64,
    /// Preloaded value size in bytes.
    pub value_size: usize,
    /// Storage backend under test.
    pub backend: BackendKind,
    /// Replicas per shard (odd).
    pub replicas: u32,
    /// Workload clients.
    pub clients: u32,
    /// Keys the live workload rewrites (ids `0..hot_keys`, a subset of the
    /// preloaded range).
    pub hot_keys: u64,
    /// Commits acknowledged before the power failure.
    pub warm_commits: u64,
    /// Commits acknowledged while the victim is down — exactly the writes
    /// anti-entropy catch-up must recover.
    pub outage_commits: u64,
    /// Anti-entropy fetch page size (`ServerTuning::catchup_batch`).
    pub catchup_batch: usize,
    /// Pages/second the mount scan reads OOB metadata at.
    pub mount_scan_rate: u64,
    /// Fraud hook: the cold restart adopts the mounted state as-is and
    /// skips catch-up. The trial's durability audit must then report
    /// `lost_writes > 0`.
    pub skip_durability: bool,
}

impl Default for RecoverySpec {
    fn default() -> RecoverySpec {
        RecoverySpec {
            seed: 0,
            store_keys: 2_000,
            value_size: 128,
            backend: BackendKind::Mftl,
            replicas: 3,
            clients: 2,
            hot_keys: 32,
            warm_commits: 64,
            outage_commits: 64,
            catchup_batch: 64,
            mount_scan_rate: 100_000,
            skip_durability: false,
        }
    }
}

/// Everything one recovery trial measured.
#[derive(Debug, Clone)]
pub struct RecoveryTrial {
    /// The seed.
    pub seed: u64,
    /// Preloaded store size (keys).
    pub store_keys: u64,
    /// Commits acknowledged across the whole trial.
    pub acked: u64,
    /// Commits acknowledged during the outage window.
    pub outage_acked: u64,
    /// Mount-scan duration (`MountStart` → `MountDone`), nanoseconds of
    /// simulated time.
    pub mount_ns: u64,
    /// Catch-up duration (`MountDone` → `Serving`), nanoseconds.
    pub catchup_ns: u64,
    /// Restart → `Serving`: mean time to recovery, nanoseconds.
    pub mttr_ns: u64,
    /// Torn pages the mount scan discarded.
    pub torn_pages: u64,
    /// Keys the anti-entropy sweep applied.
    pub catchup_keys: u64,
    /// Acked writes whose last value is missing from the recovered
    /// replica's backend. Zero on every honest run; the durability fraud
    /// (`skip_durability`) must make this positive.
    pub lost_writes: u64,
}

impl RecoveryTrial {
    /// True when every acknowledged write survived the cold restart.
    pub fn clean(&self) -> bool {
        self.lost_writes == 0
    }

    /// Deterministic JSON document (stable field order, no floats).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("seed", Json::U64(self.seed))
            .field("store_keys", Json::U64(self.store_keys))
            .field("acked", Json::U64(self.acked))
            .field("outage_acked", Json::U64(self.outage_acked))
            .field("mount_ns", Json::U64(self.mount_ns))
            .field("catchup_ns", Json::U64(self.catchup_ns))
            .field("mttr_ns", Json::U64(self.mttr_ns))
            .field("torn_pages", Json::U64(self.torn_pages))
            .field("catchup_keys", Json::U64(self.catchup_keys))
            .field("lost_writes", Json::U64(self.lost_writes))
    }
}

fn enc(n: u64) -> Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    if v.len() < 8 {
        return 0;
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&v[..8]);
    u64::from_be_bytes(b)
}

/// Builds the cluster config a trial (or a test) runs on.
fn cluster_config(spec: &RecoverySpec, obs: &Obs) -> MilanaClusterConfig {
    // Size the device for the preload plus generous multi-version
    // headroom; `sized_for` keeps the scan-rate override.
    let writes = spec.warm_commits + spec.outage_commits;
    let nand = NandConfig {
        pages_per_block: 16,
        mount_scan_rate: spec.mount_scan_rate,
        ..NandConfig::default()
    }
    .sized_for(
        spec.store_keys + 4 * writes.max(16),
        spec.value_size + 64,
        0.25,
    );
    let mut cfg = MilanaClusterConfig {
        shards: 1,
        replicas: spec.replicas,
        clients: spec.clients,
        backend: spec.backend,
        nand,
        clock: ClockSpec::ptp_software(),
        preload_keys: spec.store_keys,
        value_size: spec.value_size,
        ..MilanaClusterConfig::default()
    };
    cfg.tuning.obs = obs.clone();
    cfg.tuning.catchup_batch = spec.catchup_batch;
    cfg.tuning.skip_durability.set(spec.skip_durability);
    cfg.client_cfg.obs = obs.clone();
    cfg
}

/// Commits `n` read-modify-write increments round-robin over the hot keys,
/// one transaction at a time (retried on abort), recording the last value
/// acknowledged per key.
async fn commit_increments(
    cluster: &Rc<RefCell<MilanaCluster>>,
    h: &simkit::SimHandle,
    spec: &RecoverySpec,
    n: u64,
    expected: &Rc<RefCell<BTreeMap<u64, u64>>>,
    acked: &Rc<Cell<u64>>,
) {
    let clients = cluster.borrow().clients.clone();
    for i in 0..n {
        let id = i % spec.hot_keys;
        let key = Key::from(id);
        let c = &clients[(i % clients.len() as u64) as usize];
        for attempt in 0..200u32 {
            let mut t = c.begin_with(TxnOpts::default());
            let cur = match t.get(&key).await {
                Ok(v) => dec(&v),
                Err(_) => {
                    h.sleep(Duration::from_millis(2)).await;
                    continue;
                }
            };
            t.put(key.clone(), enc(cur + 1));
            match t.commit().await {
                Ok(_) => {
                    expected.borrow_mut().insert(id, cur + 1);
                    acked.set(acked.get() + 1);
                    break;
                }
                Err(_) => {
                    assert!(attempt < 199, "workload starved on key {id}");
                    h.sleep(Duration::from_millis(2)).await;
                }
            }
        }
    }
}

/// Runs one cold-restart recovery trial to completion.
///
/// Timeline: settle → `warm_commits` → power-fail the last backup →
/// `outage_commits` → cold restart → poll to `Serving` → durability audit.
/// Everything is simulated time, so the same spec produces byte-identical
/// [`RecoveryTrial::to_json`] output.
///
/// # Panics
///
/// Panics if the recovered replica never reaches `Serving` within 30
/// simulated seconds, or the workload starves.
pub fn run_recovery_trial(spec: &RecoverySpec) -> RecoveryTrial {
    let mut sim = Sim::new(spec.seed);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 18);
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(
        &h,
        cluster_config(spec, &obs),
    )));
    let shard = ShardId(0);
    let victim = spec.replicas as usize - 1;
    let victim_node = cluster.borrow().replicas[shard.0 as usize][victim]
        .addr
        .node
        .0 as u64;

    let expected: Rc<RefCell<BTreeMap<u64, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let acked = Rc::new(Cell::new(0u64));

    // Warm phase: the victim replicates these live.
    {
        let (cl, hh, sp, exp, ak) = (
            cluster.clone(),
            h.clone(),
            spec.clone(),
            expected.clone(),
            acked.clone(),
        );
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(5)).await;
            commit_increments(&cl, &hh, &sp, sp.warm_commits, &exp, &ak).await;
        });
    }

    // Power failure: open page buffers and RAM queues torn away.
    cluster.borrow().power_fail_replica(shard, victim);

    // Outage phase: acked by the surviving majority; the victim must
    // recover every one of these through anti-entropy catch-up.
    let before_outage = acked.get();
    {
        let (cl, hh, sp, exp, ak) = (
            cluster.clone(),
            h.clone(),
            spec.clone(),
            expected.clone(),
            acked.clone(),
        );
        sim.block_on(async move {
            commit_increments(&cl, &hh, &sp, sp.outage_commits, &exp, &ak).await;
            // Let the surviving replicas drain replication flushes so the
            // trial measures recovery, not workload tail.
            hh.sleep(Duration::from_millis(10)).await;
        });
    }
    let outage_acked = acked.get() - before_outage;

    // Cold restart, then poll to Serving.
    let restart_at = h.now().as_nanos();
    cluster.borrow_mut().restart_replica_cold(shard, victim);
    {
        let (cl, hh) = (cluster.clone(), h.clone());
        sim.block_on(async move {
            let deadline = hh.now() + Duration::from_secs(30);
            loop {
                if cl.borrow().replicas[shard.0 as usize][victim]
                    .server
                    .is_serving()
                {
                    break;
                }
                assert!(hh.now() < deadline, "cold restart never reached Serving");
                hh.sleep(Duration::from_micros(200)).await;
            }
        });
    }

    // Durability audit: every acked value must be on the recovered
    // replica's own flash — read its backend directly, not the cluster.
    let backend = cluster.borrow().replicas[shard.0 as usize][victim]
        .server
        .backend()
        .clone();
    let lost = {
        let exp = expected.borrow().clone();
        sim.block_on(async move {
            let mut lost = 0u64;
            for (id, want) in exp {
                let ok = match backend.get_latest(&Key::from(id)).await {
                    Ok(vv) => dec(&vv.value) >= want,
                    Err(_) => false,
                };
                if !ok {
                    lost += 1;
                }
            }
            lost
        })
    };

    // Recovery timeline from the trace: the victim's last recovery cycle.
    let mut mount_start = restart_at;
    let mut mount_done = restart_at;
    let mut serving_at = restart_at;
    for (at, ev) in obs.tracer.events() {
        if let TraceEvent::RecoveryStep { node, phase, .. } = ev {
            if node != victim_node || at < restart_at {
                continue;
            }
            match phase {
                RecoveryPhase::MountStart => mount_start = at,
                RecoveryPhase::MountDone => mount_done = at,
                RecoveryPhase::Serving => serving_at = at,
                _ => {}
            }
        }
    }

    RecoveryTrial {
        seed: spec.seed,
        store_keys: spec.store_keys,
        acked: acked.get(),
        outage_acked,
        mount_ns: mount_done.saturating_sub(mount_start),
        catchup_ns: serving_at.saturating_sub(mount_done),
        mttr_ns: serving_at.saturating_sub(restart_at),
        torn_pages: obs.registry.counter("torn_pages").get(),
        catchup_keys: obs.registry.counter("catchup_keys").get(),
        lost_writes: lost,
    }
}

/// Runs one trial per store size, reusing `spec` for everything else.
/// This is the MTTR-vs-store-size sweep `repro_recovery` plots.
pub fn run_recovery_sweep(spec: &RecoverySpec, store_sizes: &[u64]) -> Vec<RecoveryTrial> {
    // Each trial is an independent sim, so the sweep fans out on the
    // `perfkit` worker pool; trials come back in store-size order.
    perfkit::pool::run_ordered_auto(store_sizes.to_vec(), |store_keys| {
        run_recovery_trial(&RecoverySpec {
            store_keys,
            ..spec.clone()
        })
    })
}
