//! Read-scaling sweep — backup snapshot reads vs primary-only routing.
//!
//! Drives a read-heavy Retwis mix (85 % read-only `get_timeline`, Zipf
//! α = 0.99) against the same MILANA cluster under each read-route
//! policy. Non-primary routes open snapshots a few milliseconds behind
//! the clock (bounded staleness), which makes every read of a
//! transaction eligible for a backup whose gossiped applied watermark
//! covers it; the primary then only sees the reads nothing else could
//! serve, plus all validation traffic.
//!
//! Acceptance (readkit):
//! - with `p2c` routing the primary serves **under 50 %** of read RPCs;
//! - committed goodput under `p2c` beats the `primary-only` baseline;
//! - a `faultkit` chaos campaign (crash / partition / clock-step with
//!   backup reads enabled) stays clean — in particular, zero
//!   `stale_backup_read` violations.

use std::time::Duration;

use faultkit::{run_campaign, CampaignConfig, CampaignReport};
use milana::client::TxnClientConfig;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use obskit::Json;
use readkit::ReadRoute;
use retwis::driver::WorkloadConfig;
use retwis::mix::{GetCount, Mix, TxnType};
use simkit::Sim;
use timesync::ClockSpec;

use crate::common::{run_obs, run_retwis_on_milana, Scale};

const SHARDS: u32 = 2;
const REPLICAS: u32 = 3;
const CLIENTS: u32 = 4;
const INSTANCES_PER_CLIENT: u32 = 4;
/// Zipf contention parameter for the read-heavy sweep.
const ALPHA: f64 = 0.99;
/// Bounded-staleness snapshot lag for routed configurations.
const SNAPSHOT_LAG: Duration = Duration::from_millis(3);

/// One measured routing configuration.
#[derive(Debug, Clone)]
pub struct ReadScalePoint {
    /// Route name (`primary-only` / `freshest` / `p2c`).
    pub route: &'static str,
    /// Committed transactions per virtual second.
    pub throughput: f64,
    /// Mean transaction latency, µs.
    pub latency_us: f64,
    /// Reads served by shard primaries.
    pub primary_reads: u64,
    /// Snapshot reads served by backup replicas.
    pub replica_reads: u64,
    /// Backup probes declined (`TooStale`), each falling back to the
    /// primary.
    pub too_stale: u64,
    /// Reads served from client version caches.
    pub cached_reads: u64,
    /// Read-only commits validated locally.
    pub local_validated: u64,
    /// Committed / aborted counts in the window.
    pub commits: u64,
    /// Aborted attempts in the window.
    pub aborts: u64,
}

impl ReadScalePoint {
    /// Fraction of served read RPCs answered by a primary.
    pub fn primary_share(&self) -> f64 {
        let total = self.primary_reads + self.replica_reads;
        if total == 0 {
            return 1.0;
        }
        self.primary_reads as f64 / total as f64
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct ReadScaleConfig {
    /// Routing policies compared (first must be the primary-only
    /// baseline).
    pub routes: Vec<(&'static str, ReadRoute)>,
    /// Keyspace size.
    pub keyspace: u64,
    /// Warm-up per run.
    pub warmup: Duration,
    /// Measurement window per run.
    pub measure: Duration,
    /// Seeds for the chaos campaign with backup reads enabled.
    pub campaign_seeds: Vec<u64>,
}

impl ReadScaleConfig {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> ReadScaleConfig {
        match scale {
            Scale::Quick => ReadScaleConfig {
                routes: vec![
                    ("primary-only", ReadRoute::PrimaryOnly),
                    ("freshest", ReadRoute::Freshest),
                    ("p2c", ReadRoute::PowerOfTwo),
                ],
                keyspace: 4_000,
                warmup: Duration::from_millis(100),
                measure: Duration::from_millis(400),
                campaign_seeds: vec![11],
            },
            Scale::Full => ReadScaleConfig {
                routes: vec![
                    ("primary-only", ReadRoute::PrimaryOnly),
                    ("freshest", ReadRoute::Freshest),
                    ("p2c", ReadRoute::PowerOfTwo),
                ],
                keyspace: 16_000,
                warmup: Duration::from_millis(200),
                measure: Duration::from_secs(2),
                campaign_seeds: vec![11, 12, 13],
            },
        }
    }
}

/// The read-heavy Retwis variant for the read-scaling study: 85 %
/// read-only timelines (`retwis_read_heavy` is only 75 %).
fn mix_85() -> Mix {
    Mix::new(vec![
        TxnType {
            name: "add_user",
            gets: GetCount::Fixed(1),
            puts: 2,
            weight: 3,
        },
        TxnType {
            name: "follow_user",
            gets: GetCount::Fixed(2),
            puts: 2,
            weight: 5,
        },
        TxnType {
            name: "post_tweet",
            gets: GetCount::Fixed(3),
            puts: 5,
            weight: 7,
        },
        TxnType {
            name: "get_timeline",
            gets: GetCount::Uniform(1, 10),
            puts: 0,
            weight: 85,
        },
    ])
}

fn run_point(route: (&'static str, ReadRoute), cfg: &ReadScaleConfig, seed: u64) -> ReadScalePoint {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let routed = route.1 != ReadRoute::PrimaryOnly;
    let cluster = MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: SHARDS,
            replicas: REPLICAS,
            clients: CLIENTS,
            clock: ClockSpec::ptp_software(),
            preload_keys: cfg.keyspace,
            value_size: 128,
            client_cfg: TxnClientConfig {
                read_route: route.1,
                // Fast idle-tick floor reports: a read-only-heavy load
                // flushes few coordinator envelopes, so the tick carries
                // the write floor instead.
                watermark_interval: Duration::from_millis(1),
                snapshot_lag: if routed { SNAPSHOT_LAG } else { Duration::ZERO },
                ..TxnClientConfig::default()
            },
            tuning: milana::server::ServerTuning {
                obs: run_obs(),
                gossip_every: routed.then(|| Duration::from_millis(1)),
                ..Default::default()
            },
            ..MilanaClusterConfig::default()
        },
    );
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        WorkloadConfig {
            mix: mix_85(),
            keyspace: cfg.keyspace,
            zipf_alpha: ALPHA,
            value_size: 128,
            max_retries: 1000,
        },
        INSTANCES_PER_CLIENT,
        cfg.warmup,
        cfg.measure,
    );
    let mut primary_reads = 0;
    let mut replica_reads = 0;
    let mut too_stale = 0;
    for group in &cluster.replicas {
        for r in group {
            let s = r.server.stats();
            primary_reads += s.gets;
            replica_reads += s.replica_reads;
            too_stale += s.too_stale;
        }
    }
    let cached_reads = cluster.clients.iter().map(|c| c.stats().cached_reads).sum();
    ReadScalePoint {
        route: route.0,
        throughput: outcome.stats.throughput(outcome.elapsed),
        latency_us: outcome.stats.latency.snapshot().mean() / 1e3,
        primary_reads,
        replica_reads,
        too_stale,
        cached_reads,
        local_validated: outcome.local_validated,
        commits: outcome.stats.commits.get(),
        aborts: outcome.stats.aborts.get(),
    }
}

/// Outcome of the sweep plus the chaos campaign.
#[derive(Debug)]
pub struct ReadScaleOutcome {
    /// One point per route, in config order.
    pub points: Vec<ReadScalePoint>,
    /// Chaos campaign with backup reads enabled.
    pub campaign: CampaignReport,
}

/// Runs the route sweep (on the `perfkit` worker pool, one sim per
/// route) and the backup-reads chaos campaign.
pub fn run(cfg: &ReadScaleConfig, seed: u64) -> ReadScaleOutcome {
    let points = perfkit::pool::run_ordered_auto(cfg.routes.clone(), |r| run_point(r, cfg, seed));
    let campaign = run_campaign(&CampaignConfig {
        seeds: cfg.campaign_seeds.clone(),
        faults: 8,
        backup_reads: true,
        ..CampaignConfig::default()
    });
    ReadScaleOutcome { points, campaign }
}

/// Acceptance checks; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct ReadScaleChecks {
    /// Primary share of read RPCs under `p2c` (x1000, rounded).
    pub p2c_primary_share_x1000: u64,
    /// Goodput ratio `p2c` / `primary-only` (x100, rounded).
    pub goodput_ratio_x100: u64,
    /// `p2c` primary share below one half.
    pub share_ok: bool,
    /// `p2c` goodput at least matches the baseline.
    pub goodput_ok: bool,
    /// Campaign clean (no violations on any seed, replica reads seen).
    pub campaign_ok: bool,
}

/// Evaluates the acceptance checks over a finished run.
pub fn checks(out: &ReadScaleOutcome) -> ReadScaleChecks {
    let base = out
        .points
        .iter()
        .find(|p| p.route == "primary-only")
        .expect("baseline point");
    let p2c = out
        .points
        .iter()
        .find(|p| p.route == "p2c")
        .expect("p2c point");
    let share = p2c.primary_share();
    let ratio = p2c.throughput / base.throughput.max(1.0);
    let campaign_ok = out.campaign.offending_seeds().is_empty()
        && out.campaign.outcomes.iter().all(|o| o.replica_reads > 0);
    ReadScaleChecks {
        p2c_primary_share_x1000: (share * 1000.0).round() as u64,
        goodput_ratio_x100: (ratio * 100.0).round() as u64,
        share_ok: share < 0.5,
        goodput_ok: ratio >= 1.0,
        campaign_ok,
    }
}

/// Prints the sweep table and the acceptance verdicts.
pub fn print(out: &ReadScaleOutcome) {
    println!(
        "read scaling: 85% read-only Retwis, zipf a={ALPHA}, {SHARDS} shards x {REPLICAS} replicas"
    );
    println!(
        "{:>13} {:>10} {:>9} {:>10} {:>10} {:>9} {:>8} {:>9} {:>8}",
        "route", "ktxn/s", "lat us", "prim_rd", "repl_rd", "stale", "cached", "prim%", "aborts"
    );
    for p in &out.points {
        println!(
            "{:>13} {:>10.1} {:>9.1} {:>10} {:>10} {:>9} {:>8} {:>8.1}% {:>8}",
            p.route,
            p.throughput / 1e3,
            p.latency_us,
            p.primary_reads,
            p.replica_reads,
            p.too_stale,
            p.cached_reads,
            p.primary_share() * 100.0,
            p.aborts
        );
    }
    let c = checks(out);
    println!(
        "p2c primary read share: {:.1}% ({})",
        c.p2c_primary_share_x1000 as f64 / 10.0,
        if c.share_ok {
            "ok, < 50%"
        } else {
            "FAILED, >= 50%"
        }
    );
    println!(
        "p2c goodput vs primary-only: {:.2}x ({})",
        c.goodput_ratio_x100 as f64 / 100.0,
        if c.goodput_ok {
            "ok, >= 1x"
        } else {
            "FAILED, < 1x"
        }
    );
    println!(
        "backup-reads chaos campaign: {} seed(s), {} violation(s) ({})",
        out.campaign.outcomes.len(),
        out.campaign.violation_count(),
        if c.campaign_ok { "ok" } else { "FAILED" }
    );
}

/// Deterministic JSON payload for the artifact.
pub fn to_json(out: &ReadScaleOutcome) -> Json {
    let c = checks(out);
    Json::obj()
        .field("shards", Json::U64(u64::from(SHARDS)))
        .field("replicas", Json::U64(u64::from(REPLICAS)))
        .field("clients", Json::U64(u64::from(CLIENTS)))
        .field("alpha", Json::F64(ALPHA))
        .field(
            "snapshot_lag_us",
            Json::U64(SNAPSHOT_LAG.as_micros() as u64),
        )
        .field(
            "points",
            Json::arr(out.points.iter().map(|p| {
                Json::obj()
                    .field("route", Json::str(p.route))
                    .field("throughput", Json::F64(p.throughput))
                    .field("latency_us", Json::F64(p.latency_us))
                    .field("primary_reads", Json::U64(p.primary_reads))
                    .field("replica_reads", Json::U64(p.replica_reads))
                    .field("too_stale", Json::U64(p.too_stale))
                    .field("cached_reads", Json::U64(p.cached_reads))
                    .field("local_validated", Json::U64(p.local_validated))
                    .field("commits", Json::U64(p.commits))
                    .field("aborts", Json::U64(p.aborts))
            })),
        )
        .field("campaign", out.campaign.to_json())
        .field(
            "checks",
            Json::obj()
                .field(
                    "p2c_primary_share_x1000",
                    Json::U64(c.p2c_primary_share_x1000),
                )
                .field("goodput_ratio_x100", Json::U64(c.goodput_ratio_x100))
                .field("share_ok", Json::Bool(c.share_ok))
                .field("goodput_ok", Json::Bool(c.goodput_ok))
                .field("campaign_ok", Json::Bool(c.campaign_ok)),
        )
}

/// True when every acceptance check passed.
pub fn ok(out: &ReadScaleOutcome) -> bool {
    let c = checks(out);
    c.share_ok && c.goodput_ok && c.campaign_ok
}
