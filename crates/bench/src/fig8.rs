//! Figure 8 — Retwis transaction latency vs throughput, with and without
//! client-local validation (LV), across storage backends.
//!
//! Paper setup (§5.2): 3 shards × 3 replicas, 6 M keys, 75 % read-only
//! Retwis mix, client count swept to trace each latency/throughput curve.
//! Headline: local validation yields up to **55 % higher throughput** and
//! **35 % lower latency**; MFTL beats VFTL by ~15 % / 10 %.

use std::time::Duration;

use flashsim::{BackendKind, NandConfig};
use milana::client::{TxnClientConfig, ValidationMode};
use milana::cluster::MilanaClusterConfig;
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use simkit::Sim;
use timesync::ClockSpec;

use crate::common::{run_retwis_on_milana, Scale};

/// One point on a latency/throughput curve.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Backend name.
    pub backend: &'static str,
    /// Local validation enabled?
    pub lv: bool,
    /// Driving clients.
    pub clients: u32,
    /// Committed transactions per virtual second.
    pub throughput: f64,
    /// Mean transaction latency (first begin to commit), µs.
    pub latency_us: f64,
    /// Full workload counters for the run, frozen so points can cross
    /// the worker-pool boundary.
    pub stats: obskit::FrozenTxnStats,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Client counts tracing each curve.
    pub client_counts: Vec<u32>,
    /// Backends compared.
    pub backends: Vec<BackendKind>,
    /// Contention parameter (moderate; Figure 8 varies load, not skew).
    pub alpha: f64,
    /// Keyspace size.
    pub keyspace: u64,
    /// Warm-up per run.
    pub warmup: Duration,
    /// Measurement window per run.
    pub measure: Duration,
}

impl Fig8Config {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> Fig8Config {
        match scale {
            Scale::Quick => Fig8Config {
                client_counts: vec![4, 8, 16, 32],
                backends: vec![BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl],
                alpha: 0.5,
                keyspace: 12_000,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(800),
            },
            Scale::Full => Fig8Config {
                client_counts: vec![4, 8, 16, 24, 32, 48, 64],
                backends: vec![BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl],
                alpha: 0.5,
                keyspace: 60_000,
                warmup: Duration::from_millis(500),
                measure: Duration::from_secs(3),
            },
        }
    }
}

fn backend_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Dram => "DRAM",
        BackendKind::Sftl => "SFTL",
        BackendKind::Vftl => "VFTL",
        BackendKind::Mftl => "MFTL",
    }
}

fn run_point(kind: BackendKind, lv: bool, clients: u32, cfg: &Fig8Config, seed: u64) -> Fig8Point {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let nand = NandConfig {
        channels: 8,
        queue_depth: 128,
        ..NandConfig::default()
    }
    .sized_for(cfg.keyspace / 3, 512, 0.08); // keys split over 3 shards
    let cluster = milana::cluster::MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: 3,
            replicas: 3,
            clients,
            backend: kind,
            nand,
            clock: ClockSpec::ptp_software(),
            preload_keys: cfg.keyspace,
            value_size: 472,
            client_cfg: TxnClientConfig {
                validation: if lv {
                    ValidationMode::Local
                } else {
                    ValidationMode::Remote
                },
                ..TxnClientConfig::default()
            },
            // ExoGENI-style VM networking (~300 us RTT).
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(150),
                jitter_std: Duration::from_micros(30),
                ..simkit::net::LatencyConfig::default()
            },
            tuning: milana::server::ServerTuning {
                obs: crate::common::run_obs(),
                ..Default::default()
            },
            ..MilanaClusterConfig::default()
        },
    );
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        WorkloadConfig {
            mix: Mix::retwis_read_heavy(), // 75% read-only (paper)
            keyspace: cfg.keyspace,
            zipf_alpha: cfg.alpha,
            value_size: 472,
            max_retries: 1000,
        },
        1,
        cfg.warmup,
        cfg.measure,
    );
    Fig8Point {
        backend: backend_name(kind),
        lv,
        clients,
        throughput: outcome.stats.throughput(outcome.elapsed),
        latency_us: outcome.stats.latency.snapshot().mean() / 1e3,
        stats: outcome.stats.freeze(),
    }
}

/// Runs the full sweep on the `perfkit` worker pool (one sim per point,
/// merged back in sweep order).
pub fn run(cfg: &Fig8Config) -> Vec<Fig8Point> {
    let mut items = Vec::new();
    for &kind in &cfg.backends {
        for lv in [true, false] {
            for &clients in &cfg.client_counts {
                items.push((kind, lv, clients));
            }
        }
    }
    perfkit::pool::run_ordered_auto(items, |(kind, lv, clients)| {
        let seed = 800 + clients as u64;
        run_point(kind, lv, clients, cfg, seed)
    })
}

/// Deterministic JSON payload: one object per curve point with full
/// latency percentiles and the abort-reason breakdown.
pub fn to_json(cfg: &Fig8Config, points: &[Fig8Point]) -> Json {
    Json::obj()
        .field(
            "client_counts",
            Json::arr(cfg.client_counts.iter().map(|&c| Json::U64(c as u64))),
        )
        .field("alpha", Json::F64(cfg.alpha))
        .field(
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj()
                    .field("backend", Json::str(p.backend))
                    .field("lv", Json::Bool(p.lv))
                    .field("clients", Json::U64(p.clients as u64))
                    .field("throughput", Json::F64(p.throughput))
                    .field("latency_us", Json::F64(p.latency_us))
                    .field("abort_reasons", p.stats.abort_reasons_json())
                    .field("latency_ns", p.stats.latency.summary_json())
            })),
        )
}

/// Prints every curve and the LV speedup headline.
pub fn print(cfg: &Fig8Config, points: &[Fig8Point]) {
    println!("Figure 8: latency vs throughput — 75% read-only Retwis, 3 shards x 3 replicas");
    println!(
        "{:>10} {:>4} {:>8} {:>12} {:>12}",
        "backend", "LV", "clients", "ktxn/s", "lat us"
    );
    for p in points {
        println!(
            "{:>10} {:>4} {:>8} {:>12.1} {:>12.1}",
            p.backend,
            if p.lv { "on" } else { "off" },
            p.clients,
            p.throughput / 1e3,
            p.latency_us
        );
    }
    // Headlines at the largest client count.
    let max_clients = *cfg.client_counts.last().expect("non-empty");
    for &kind in &cfg.backends {
        let name = backend_name(kind);
        let find = |lv| {
            points
                .iter()
                .find(|p| p.backend == name && p.lv == lv && p.clients == max_clients)
        };
        if let (Some(with), Some(without)) = (find(true), find(false)) {
            println!(
                "  {name}: LV gives +{:.0}% throughput, {:.0}% lower latency at {max_clients} clients \
                 (paper: +55% / -35%)",
                (with.throughput / without.throughput - 1.0) * 100.0,
                (1.0 - with.latency_us / without.latency_us) * 100.0,
            );
        }
    }
}
