//! Artifact export for the `repro_*` binaries.
//!
//! Every reproduction binary accepts `--json <path>` (or `--json=<path>`)
//! and, when given, writes its measured points as a deterministic JSON
//! document next to the human-readable table it prints. Same seed, same
//! scale → byte-identical file (see [`obskit::Json`] for the stability
//! rules), so CI and downstream plotting can diff artifacts across runs.
//!
//! The document shape is a fixed envelope around a per-experiment payload:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiment": "fig7",
//!   "scale": "quick",
//!   "data": { ... }
//! }
//! ```
//!
//! By convention artifacts land in `artifacts/` at the workspace root
//! (gitignored); the path is the caller's choice.

use std::path::{Path, PathBuf};

use obskit::Json;

use crate::common::Scale;

/// Current artifact schema version. Bump when an experiment's payload
/// shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Parses `--json <path>` / `--json=<path>` from the process arguments.
pub fn json_path_from_args() -> Option<PathBuf> {
    parse_json_flag(std::env::args().skip(1))
}

fn parse_json_flag(args: impl IntoIterator<Item = String>) -> Option<PathBuf> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            return it.next().map(PathBuf::from);
        }
        if let Some(rest) = arg.strip_prefix("--json=") {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// Wraps an experiment payload in the standard envelope.
pub fn envelope(experiment: &str, scale: Scale, payload: Json) -> Json {
    Json::obj()
        .field("schema", Json::U64(SCHEMA_VERSION))
        .field("experiment", Json::str(experiment))
        .field(
            "scale",
            Json::str(match scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }),
        )
        .field("data", payload)
}

/// Writes `doc` to `path` in the pretty byte-stable format.
///
/// # Errors
///
/// Propagates the filesystem error.
pub fn write(path: &Path, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, doc.to_pretty_string())
}

/// Writes the enveloped artifact if the process was invoked with
/// `--json <path>`; a failed write aborts the binary so CI never mistakes
/// a missing artifact for success.
pub fn maybe_write(experiment: &str, scale: Scale, payload: Json) {
    let Some(path) = json_path_from_args() else {
        return;
    };
    let doc = envelope(experiment, scale, payload);
    match write(&path, &doc) {
        Ok(()) => eprintln!("wrote {experiment} artifact to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write artifact {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_separate_flag_and_value() {
        let p = parse_json_flag(strings(&["--json", "out.json"]));
        assert_eq!(p, Some(PathBuf::from("out.json")));
    }

    #[test]
    fn parses_equals_form() {
        let p = parse_json_flag(strings(&["--json=artifacts/fig7.json"]));
        assert_eq!(p, Some(PathBuf::from("artifacts/fig7.json")));
    }

    #[test]
    fn ignores_unrelated_args_and_missing_value() {
        assert_eq!(parse_json_flag(strings(&["--quick", "-v"])), None);
        assert_eq!(parse_json_flag(strings(&["--json"])), None);
        let p = parse_json_flag(strings(&["-v", "--json", "x.json", "tail"]));
        assert_eq!(p, Some(PathBuf::from("x.json")));
    }

    #[test]
    fn envelope_has_fixed_field_order() {
        let doc = envelope("fig7", Scale::Quick, Json::obj());
        let s = doc.to_string();
        assert_eq!(
            s,
            r#"{"schema":1,"experiment":"fig7","scale":"quick","data":{}}"#
        );
    }
}
