//! Clock-fault robustness reproduction (library core of `repro_clockfault`):
//! abort rate across the clock-precision spectrum with health tracking on,
//! a fence-and-recover degradation run, and a clock-fault campaign.
//!
//! Three legs on the same seed:
//!
//! 1. **Skew sweep** — abort rate vs clock discipline (Perfect → PTP-HW →
//!    PTP-SW → NTP) with server-side clock-health tracking enabled,
//!    averaged over `sub_seeds` paired runs per discipline. The curve must
//!    come out skew-ordered: worse sync, more aborts.
//! 2. **Degradation run** — a clean run and a twin where one client's
//!    clock breaks badly (holdover + step + drift, so resyncs never repair
//!    it). The cluster must fence the broken client and goodput must
//!    recover to ≥ 80 % of the clean twin.
//! 3. **Clock-fault campaign** — the `faultkit` nemesis drives clock
//!    steps, persistent drift, and holdover jumps against a deliberately
//!    tight uncertainty promise; the checker holds commits to the promised
//!    ε and must find no `clock_bound_breach`.
//!
//! `--inject uncertainty-skip` flips the seeded fraud: primaries keep the
//! health estimates but ignore the verdicts, so mis-timestamped prepares
//! sail through validation. The campaign's checker must then *flag* the
//! breach — a clean fraud run means the clock bound is checked by nobody.

use std::time::Duration;

use faultkit::{run_campaign, CampaignConfig, CampaignReport};
use flashsim::{BackendKind, NandConfig};
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use simkit::Sim;
use timesync::{ClockSpec, Discipline};

use crate::common::{run_retwis_on_milana, Scale};

/// Knobs for one `repro_clockfault` run.
pub struct ClockFaultConfig {
    /// Simulation seed (all three legs derive from it).
    pub seed: u64,
    /// Paired runs averaged per sweep point.
    pub sub_seeds: u64,
    /// Faults in the clock-fault campaign leg.
    pub campaign_faults: usize,
    /// Virtual measurement window per run.
    pub measure: Duration,
    /// Seeded fraud: servers track clock health but ignore the verdicts.
    /// The campaign's checker must then flag a `clock_bound_breach`.
    pub inject_uncertainty_skip: bool,
}

impl ClockFaultConfig {
    /// Defaults for the given scale.
    pub fn for_scale(scale: Scale) -> ClockFaultConfig {
        let faults = match scale {
            Scale::Quick => 12,
            Scale::Full => 32,
        };
        ClockFaultConfig {
            seed: 1,
            sub_seeds: 3,
            campaign_faults: faults,
            measure: scale.measure() / 2,
            inject_uncertainty_skip: false,
        }
    }

    /// The campaign's clock-health tuning: a 1 ms future ceiling, tight
    /// enough that the multi-millisecond steps and jumps the plan injects
    /// are decidedly outside the promised window.
    pub fn campaign_health() -> clockkit::ClockHealthConfig {
        clockkit::ClockHealthConfig {
            max_future_ns: 1_000_000,
            ..clockkit::ClockHealthConfig::default()
        }
    }
}

/// One point of the skew sweep: a discipline's average abort behaviour.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Discipline label.
    pub clock: &'static str,
    /// Expected mean pairwise skew under this discipline (ns).
    pub skew_ns: u64,
    /// Abort rate averaged over the sub-seeds.
    pub abort_rate: f64,
    /// Commits summed over the sub-seeds.
    pub commits: u64,
    /// Clock-suspect refusals summed over the sub-seeds (honest clocks
    /// should rarely trip the fence).
    pub suspects: u64,
}

impl SweepPoint {
    /// Deterministic JSON for the artifact.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("clock", Json::str(self.clock))
            .field("skew_ns", Json::U64(self.skew_ns))
            .field("abort_rate", Json::F64(self.abort_rate))
            .field("commits", Json::U64(self.commits))
            .field("clock_suspects", Json::U64(self.suspects))
    }
}

/// Outcome of the fence-and-recover degradation leg.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// Goodput of the clean twin (commits/s of virtual time).
    pub clean_goodput: f64,
    /// Goodput with one broken-clock client, post-fence.
    pub degraded_goodput: f64,
    /// `degraded_goodput / clean_goodput`.
    pub recovery_ratio: f64,
    /// Clients fenced in the degraded run (must be ≥ 1).
    pub fences: u64,
    /// Clock-suspect refusals in the degraded run.
    pub suspects: u64,
    /// Clients fenced in the clean run (must be 0).
    pub clean_fences: u64,
}

impl Degradation {
    /// Deterministic JSON for the artifact.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("clean_goodput", Json::F64(self.clean_goodput))
            .field("degraded_goodput", Json::F64(self.degraded_goodput))
            .field("recovery_ratio", Json::F64(self.recovery_ratio))
            .field("fences", Json::U64(self.fences))
            .field("clock_suspects", Json::U64(self.suspects))
            .field("clean_fences", Json::U64(self.clean_fences))
    }

    /// The fence did its job: the broken client was cut off and the rest
    /// of the cluster kept ≥ 80 % of clean goodput.
    pub fn ok(&self) -> bool {
        self.fences >= 1 && self.clean_fences == 0 && self.recovery_ratio >= 0.80
    }
}

fn cluster_config(clients: u32, clock: ClockSpec) -> MilanaClusterConfig {
    let keyspace = 5_000u64;
    MilanaClusterConfig {
        shards: 1,
        replicas: 3,
        clients,
        backend: BackendKind::Mftl,
        nand: NandConfig {
            channels: 8,
            ..NandConfig::default()
        }
        .sized_for(keyspace, 512, 0.08),
        clock,
        preload_keys: keyspace,
        net: simkit::net::LatencyConfig {
            one_way: Duration::from_micros(150),
            jitter_std: Duration::from_micros(30),
            ..simkit::net::LatencyConfig::default()
        },
        tuning: milana::server::ServerTuning {
            obs: crate::common::run_obs(),
            clock_health: Some(clockkit::ClockHealthConfig::default()),
            ..Default::default()
        },
        ..MilanaClusterConfig::default()
    }
}

fn workload(zipf_alpha: f64) -> WorkloadConfig {
    WorkloadConfig {
        mix: Mix::retwis(),
        keyspace: 5_000,
        zipf_alpha,
        value_size: 472,
        max_retries: 1000,
    }
}

fn suspects_and_fences(cluster: &MilanaCluster) -> (u64, u64) {
    let mut suspects = 0;
    let mut fences = 0;
    for slot in cluster.replicas.iter().flatten() {
        let s = slot.server.stats();
        suspects += s.clock_suspects;
        fences = fences.max(s.clock_fences);
    }
    (suspects, fences)
}

/// Runs the skew sweep: abort rate per discipline with health tracking on,
/// `sub_seeds` paired runs each.
pub fn run_sweep(cfg: &ClockFaultConfig) -> Vec<SweepPoint> {
    let mut items = Vec::new();
    for (discipline, name) in [
        (Discipline::Perfect, "Perfect"),
        (Discipline::PtpHardware, "PTP-HW"),
        (Discipline::PtpSoftware, "PTP-SW"),
        (Discipline::Ntp, "NTP"),
    ] {
        for sub in 0..cfg.sub_seeds {
            items.push((discipline.clone(), name, sub));
        }
    }
    // Each (discipline, sub-seed) pair is an independent sim, so the
    // whole grid fans out on the worker pool; per-discipline sums fold
    // back in sweep order below.
    let runs = perfkit::pool::run_ordered_auto(items, |(discipline, name, sub)| {
        // The same sim seed across disciplines pairs the comparison:
        // identical arrivals and key choices, only the clocks differ.
        let mut sim = Sim::new(cfg.seed * 1_000 + sub);
        let h = sim.handle();
        let cluster =
            MilanaCluster::build(&h, cluster_config(5, ClockSpec::from(discipline.clone())));
        // Moderate contention: saturated hot keys abort on conflicts
        // regardless of clocks, which would bury the skew signal.
        let outcome = run_retwis_on_milana(
            &mut sim,
            &cluster,
            workload(0.7),
            2,
            Duration::from_millis(200),
            cfg.measure,
        );
        let skew_ns = discipline.expected_skew().as_nanos() as u64;
        (
            name,
            skew_ns,
            outcome.stats.abort_rate(),
            outcome.stats.commits.get(),
            suspects_and_fences(&cluster).0,
        )
    });
    let mut points: Vec<SweepPoint> = Vec::new();
    for (name, skew_ns, rate, commits, suspects) in runs {
        match points.last_mut() {
            Some(p) if p.clock == name => {
                p.abort_rate += rate;
                p.commits += commits;
                p.suspects += suspects;
            }
            _ => points.push(SweepPoint {
                clock: name,
                skew_ns,
                abort_rate: rate,
                commits,
                suspects,
            }),
        }
    }
    for p in &mut points {
        p.abort_rate /= cfg.sub_seeds as f64;
    }
    points
}

/// The sweep curve is skew-ordered: abort rate never decreases as sync
/// quality degrades, and NTP is strictly worse than Perfect.
pub fn sweep_ordered(points: &[SweepPoint]) -> bool {
    points
        .windows(2)
        .all(|w| w[0].abort_rate <= w[1].abort_rate)
        && points
            .last()
            .zip(points.first())
            .is_some_and(|(ntp, perfect)| ntp.abort_rate > perfect.abort_rate)
}

fn degradation_run(cfg: &ClockFaultConfig, break_client: bool) -> (f64, u64, u64) {
    let mut sim = Sim::new(cfg.seed * 1_000 + 77);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, cluster_config(8, ClockSpec::ptp_software()));
    if break_client {
        // Holdover first so the periodic resync never repairs the damage;
        // the step is well past the 10 ms future ceiling and the drift
        // keeps pushing even if estimates start to absorb the offset.
        let clock = cluster.clients[0].clock();
        clock.enter_holdover();
        clock.inject_step(15_000_000);
        clock.inject_drift(2_000_000, h.now());
    }
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        workload(0.9),
        4,
        Duration::from_millis(300),
        cfg.measure,
    );
    let goodput = outcome.stats.commits.get() as f64 / cfg.measure.as_secs_f64();
    let (suspects, fences) = suspects_and_fences(&cluster);
    (goodput, suspects, fences)
}

/// Runs the degradation leg: a clean run and a broken-clock twin on the
/// same seed. The broken client must be fenced during warmup and the
/// measured goodput must recover to ≥ 80 % of clean.
pub fn run_degradation(cfg: &ClockFaultConfig) -> Degradation {
    // The clean and broken twins are independent sims; run both sides on
    // the worker pool.
    let runs = perfkit::pool::run_ordered_auto(vec![false, true], |b| degradation_run(cfg, b));
    let (clean_goodput, _, clean_fences) = runs[0];
    let (degraded_goodput, suspects, fences) = runs[1];
    Degradation {
        clean_goodput,
        degraded_goodput,
        recovery_ratio: if clean_goodput > 0.0 {
            degraded_goodput / clean_goodput
        } else {
            0.0
        },
        fences,
        suspects,
        clean_fences,
    }
}

/// Runs the clock-fault campaign leg: nemesis-driven steps, drift, and
/// holdover jumps with the checker holding commits to the promised ε.
pub fn run_fault_campaign(cfg: &ClockFaultConfig) -> CampaignReport {
    let health = ClockFaultConfig::campaign_health();
    let eps = health.promised_epsilon_ns();
    run_campaign(&CampaignConfig {
        seeds: vec![cfg.seed],
        faults: cfg.campaign_faults,
        clockfault: true,
        clock_health: Some(health),
        clock_epsilon_ns: Some(eps),
        skip_uncertainty: cfg.inject_uncertainty_skip,
        ..CampaignConfig::default()
    })
}

/// True when the fraud was caught: some seed's checker flagged a
/// `clock_bound_breach`.
pub fn fraud_caught(campaign: &CampaignReport) -> bool {
    campaign
        .outcomes
        .iter()
        .any(|o| o.violations.iter().any(|v| v.class == "clock_bound_breach"))
}

/// Prints the sweep table and all three verdicts.
pub fn print(
    cfg: &ClockFaultConfig,
    sweep: &[SweepPoint],
    degradation: &Degradation,
    campaign: &CampaignReport,
) {
    println!(
        "{:>10} {:>12} {:>10} {:>9} {:>9}",
        "clock", "skew_ns", "abort_pct", "commits", "suspects"
    );
    for p in sweep {
        println!(
            "{:>10} {:>12} {:>10.2} {:>9} {:>9}",
            p.clock,
            p.skew_ns,
            p.abort_rate * 100.0,
            p.commits,
            p.suspects,
        );
    }
    println!(
        "skew ordering: {}",
        if sweep_ordered(sweep) { "ok" } else { "FAILED" }
    );
    println!(
        "degradation: clean {:.0}/s, degraded {:.0}/s ({:.1}% recovered), \
         {} fence(s), {} suspect(s) ({})",
        degradation.clean_goodput,
        degradation.degraded_goodput,
        degradation.recovery_ratio * 100.0,
        degradation.fences,
        degradation.suspects,
        if degradation.ok() { "ok" } else { "FAILED" }
    );
    let clean = campaign.offending_seeds().is_empty();
    println!(
        "clock-fault campaign: {} fault(s), {} violation(s) ({})",
        cfg.campaign_faults,
        campaign.violation_count(),
        match (cfg.inject_uncertainty_skip, clean) {
            (false, true) => "ok",
            (false, false) => "FAILED",
            (true, true) => "FRAUD MISSED",
            (true, false) =>
                if fraud_caught(campaign) {
                    "fraud caught"
                } else {
                    "FRAUD MISCLASSIFIED"
                },
        }
    );
}

/// Deterministic JSON payload for the artifact.
pub fn to_json(
    cfg: &ClockFaultConfig,
    sweep: &[SweepPoint],
    degradation: &Degradation,
    campaign: &CampaignReport,
) -> Json {
    Json::obj()
        .field("seed", Json::U64(cfg.seed))
        .field(
            "inject_uncertainty_skip",
            Json::Bool(cfg.inject_uncertainty_skip),
        )
        .field("sweep", Json::arr(sweep.iter().map(SweepPoint::to_json)))
        .field("degradation", degradation.to_json())
        .field("campaign", campaign.to_json())
        .field(
            "checks",
            Json::obj()
                .field("skew_ordered", Json::Bool(sweep_ordered(sweep)))
                .field("degradation_ok", Json::Bool(degradation.ok()))
                .field(
                    "campaign_clean",
                    Json::Bool(campaign.offending_seeds().is_empty()),
                ),
        )
}

/// True when the run passes. Honest runs need the skew-ordered curve, a
/// successful fence-and-recover, and a clean campaign; `--inject
/// uncertainty-skip` runs need the checker to flag the breach.
pub fn ok(
    cfg: &ClockFaultConfig,
    sweep: &[SweepPoint],
    degradation: &Degradation,
    campaign: &CampaignReport,
) -> bool {
    if cfg.inject_uncertainty_skip {
        fraud_caught(campaign)
    } else {
        sweep_ordered(sweep) && degradation.ok() && campaign.offending_seeds().is_empty()
    }
}
