//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Replication ordering** (Contribution 1): SEMEL's inconsistent
//!    replication vs conventional sequence-ordered replication, across
//!    network jitter levels.
//! 2. **Clock discipline spectrum**: Perfect → PTP-HW → PTP-SW → NTP abort
//!    rates, extending Figure 7 to the full precision axis.
//! 3. **Mapping-table residency** (§3.1 future work): how MFTL performance
//!    degrades when the mapping no longer fits in DRAM (DFTL-style paging).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use flashsim::dftl::{DemandMappedStore, DftlConfig};
use flashsim::mftl::{MftlConfig, UnifiedStore};
use flashsim::{value, BackendKind, Key, NandConfig};
use milana::cluster::MilanaClusterConfig;
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use semel::cluster::{ClusterConfig, SemelCluster};
use semel::server::ReplicationMode;
use simkit::metrics::Histogram;
use simkit::rng::Zipf;
use simkit::Sim;
use timesync::{ClientId, ClockSpec, Discipline, Timestamp, Version};

use crate::common::{run_retwis_on_milana, Scale};

// ---------------------------------------------------------------------------
// Ablation 1: inconsistent vs ordered replication
// ---------------------------------------------------------------------------

/// One measured point of the replication ablation.
#[derive(Debug, Clone)]
pub struct ReplPoint {
    /// Replication discipline.
    pub mode: &'static str,
    /// One-way network jitter (std), µs.
    pub jitter_us: u64,
    /// Mean SEMEL put latency, µs.
    pub mean_us: f64,
    /// 99th-percentile put latency, µs.
    pub p99_us: f64,
}

fn run_repl_point(mode: ReplicationMode, jitter_us: u64, seed: u64, scale: Scale) -> ReplPoint {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let cluster = SemelCluster::build(
        &h,
        ClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 4,
            backend: BackendKind::Dram, // isolate the replication protocol
            preload_keys: 2_000,
            replication: mode,
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(50),
                jitter_std: Duration::from_micros(jitter_us),
                ..simkit::net::LatencyConfig::default()
            },
            obs: crate::common::run_obs(),
            ..ClusterConfig::default()
        },
    );
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let n_puts = match scale {
        Scale::Quick => 400u64,
        Scale::Full => 4_000,
    };
    let mut joins = Vec::new();
    for c in &cluster.clients {
        // Several concurrent put streams per client keep many records in
        // flight, which is where ordering restrictions bite.
        for _ in 0..8 {
            let c = c.clone();
            let hist = hist.clone();
            let hh = h.clone();
            joins.push(h.spawn(async move {
                let mut rng = hh.fork_rng();
                for _ in 0..n_puts / 8 {
                    let key = Key::from(rand::Rng::gen_range(&mut rng, 0..2_000u64));
                    let t0 = hh.now();
                    if c.put(key, value(vec![1u8; 64])).await.is_ok() {
                        hist.borrow_mut().record((hh.now() - t0).as_nanos() as u64);
                    }
                }
            }));
        }
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let hist = hist.borrow();
    ReplPoint {
        mode: match mode {
            ReplicationMode::Inconsistent => "inconsistent",
            ReplicationMode::Ordered => "ordered",
        },
        jitter_us,
        mean_us: hist.mean() / 1e3,
        p99_us: hist.quantile(0.99) as f64 / 1e3,
    }
}

/// Runs and prints the replication-ordering ablation; returns its JSON
/// payload.
pub fn run_replication(scale: Scale) -> Json {
    println!("Ablation: inconsistent (SEMEL §3.2) vs ordered replication — put latency");
    println!(
        "{:>14} {:>10} {:>12} {:>12}",
        "mode", "jitter us", "mean us", "p99 us"
    );
    let mut items = Vec::new();
    for &jitter in &[5u64, 30, 80, 150] {
        for mode in [ReplicationMode::Inconsistent, ReplicationMode::Ordered] {
            items.push((mode, jitter));
        }
    }
    // Compute every point on the worker pool, then print in sweep order.
    let rows = perfkit::pool::run_ordered_auto(items, |(mode, jitter)| {
        run_repl_point(mode, jitter, 4_000 + jitter, scale)
    });
    for p in &rows {
        println!(
            "{:>14} {:>10} {:>12.1} {:>12.1}",
            p.mode, p.jitter_us, p.mean_us, p.p99_us
        );
    }
    for &jitter in &[5u64, 30, 80, 150] {
        let find = |m: &str| {
            rows.iter()
                .find(|p| p.mode == m && p.jitter_us == jitter)
                .expect("point")
        };
        let (inc, ord) = (find("inconsistent"), find("ordered"));
        println!(
            "  jitter {jitter:>3}us: ordered tail is {:.2}x the relaxed tail (p99)",
            ord.p99_us / inc.p99_us
        );
    }
    println!(
        "(the paper's claim: relaxed ordering keeps one slow record from stalling \
         acknowledgement of everything behind it)"
    );
    Json::obj().field(
        "rows",
        Json::arr(rows.iter().map(|p| {
            Json::obj()
                .field("mode", Json::str(p.mode))
                .field("jitter_us", Json::U64(p.jitter_us))
                .field("mean_us", Json::F64(p.mean_us))
                .field("p99_us", Json::F64(p.p99_us))
        })),
    )
}

// ---------------------------------------------------------------------------
// Ablation 2: clock discipline spectrum
// ---------------------------------------------------------------------------

/// Runs and prints the clock-spectrum ablation (extends Figure 7);
/// returns its JSON payload with the full abort-reason breakdown per
/// discipline.
pub fn run_clocks(scale: Scale) -> Json {
    println!("Ablation: clock-discipline spectrum — MILANA abort rate (%), MFTL backend");
    let alphas: Vec<f64> = match scale {
        Scale::Quick => vec![0.5, 0.7, 0.9],
        Scale::Full => vec![0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    };
    print!("{:>12}", "clock\\alpha");
    for a in &alphas {
        print!(" {a:>7}");
    }
    println!();
    let keyspace = 5_000u64;
    let mut items = Vec::new();
    for (discipline, name) in [
        (Discipline::Perfect, "Perfect"),
        (Discipline::PtpHardware, "PTP-HW"),
        (Discipline::PtpSoftware, "PTP-SW"),
        (Discipline::Ntp, "NTP"),
    ] {
        for &alpha in &alphas {
            items.push((discipline.clone(), name, alpha));
        }
    }
    // Every (discipline, α) cell is an independent sim: fan the grid out
    // on the worker pool and print the table rows afterwards in order.
    let cells = perfkit::pool::run_ordered_auto(items, |(discipline, name, alpha)| {
        let mut sim = Sim::new(1_700 + (alpha * 100.0) as u64);
        let h = sim.handle();
        let cluster = milana::cluster::MilanaCluster::build(
            &h,
            MilanaClusterConfig {
                shards: 1,
                replicas: 3,
                clients: 5,
                backend: BackendKind::Mftl,
                nand: NandConfig {
                    channels: 8,
                    ..NandConfig::default()
                }
                .sized_for(keyspace, 512, 0.08),
                clock: ClockSpec::from(discipline.clone()),
                preload_keys: keyspace,
                net: simkit::net::LatencyConfig {
                    one_way: Duration::from_micros(150),
                    jitter_std: Duration::from_micros(30),
                    ..simkit::net::LatencyConfig::default()
                },
                tuning: milana::server::ServerTuning {
                    obs: crate::common::run_obs(),
                    ..Default::default()
                },
                ..MilanaClusterConfig::default()
            },
        );
        let outcome = run_retwis_on_milana(
            &mut sim,
            &cluster,
            WorkloadConfig {
                mix: Mix::retwis(),
                keyspace,
                zipf_alpha: alpha,
                value_size: 472,
                max_retries: 1000,
            },
            4,
            Duration::from_millis(200),
            scale.measure() / 2,
        );
        let rate = outcome.stats.abort_rate();
        let row = Json::obj()
            .field("clock", Json::str(name))
            .field("alpha", Json::F64(alpha))
            .field("abort_rate", Json::F64(rate))
            .field("abort_reasons", outcome.stats.abort_reasons.to_json())
            .field(
                "latency_ns",
                outcome.stats.latency.snapshot().summary_json(),
            );
        (name, rate, row)
    });
    let mut rows = Vec::new();
    for chunk in cells.chunks(alphas.len()) {
        print!("{:>12}", chunk[0].0);
        for (_, rate, _) in chunk {
            print!(" {:>7.2}", rate * 100.0);
        }
        println!();
        rows.extend(chunk.iter().map(|(_, _, row)| row.clone()));
    }
    println!(
        "(the knee: once skew drops below the request latency — PTP-SW and better — \
         further precision stops mattering, exactly §3.3's argument; NTP sits far \
         above the knee)"
    );
    Json::obj().field("rows", Json::Arr(rows))
}

// ---------------------------------------------------------------------------
// Ablation 3: DFTL-style demand-paged mapping
// ---------------------------------------------------------------------------

/// Runs and prints the mapping-residency ablation; returns its JSON
/// payload.
pub fn run_dftl(scale: Scale) -> Json {
    println!("Ablation: mapping-table residency (§3.1 future work, DFTL-style paging)");
    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "resident %", "hit %", "get mean us", "xlation wr/s"
    );
    let keys: u64 = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 50_000,
    };
    // One independent sim per residency fraction: compute on the worker
    // pool, print the table rows afterwards in sweep order.
    let cells = perfkit::pool::run_ordered_auto(vec![1.0f64, 0.5, 0.25, 0.05], |fraction| {
        let mut sim = Sim::new(1_800);
        let h = sim.handle();
        let inner = UnifiedStore::new(
            h.clone(),
            NandConfig {
                channels: 16,
                ..NandConfig::default()
            }
            .sized_for(keys, 512, 0.08),
            MftlConfig::default(),
        );
        let payload = value(vec![0u8; 472]);
        for i in 0..keys {
            inner.bulk_load(
                Key::from(i),
                payload.clone(),
                Version::new(Timestamp(1), ClientId(0)),
            );
        }
        inner.finish_load();
        let store = DemandMappedStore::new(
            h.clone(),
            inner,
            DftlConfig {
                cached_entries: ((keys as f64 * fraction) as usize).max(1),
                ..DftlConfig::default()
            },
        );
        // Zipfian reads with 10% zipfian writes: a hot working set that a
        // partial mapping can mostly hold.
        let zipf = Rc::new(Zipf::new(keys as usize, 0.9));
        let hist = Rc::new(RefCell::new(Histogram::new()));
        let measure = scale.measure() / 3;
        let warmup = measure / 2;
        let measuring = Rc::new(std::cell::Cell::new(false));
        let until = h.now() + warmup + measure;
        let mut joins = Vec::new();
        for w in 0..16u32 {
            let store = store.clone();
            let zipf = zipf.clone();
            let hist = hist.clone();
            let payload = payload.clone();
            let measuring = measuring.clone();
            let hh = h.clone();
            joins.push(h.spawn(async move {
                let mut rng = hh.fork_rng();
                let clock = timesync::SyncedClock::new(Discipline::Perfect, w as u64);
                let client = ClientId(w + 1);
                while hh.now() < until {
                    let key = Key::from(zipf.sample(&mut rng) as u64);
                    if rand::Rng::gen_range(&mut rng, 0..10) == 0 {
                        let version = Version::new(clock.now(hh.now()), client);
                        let _ = store.put(key, payload.clone(), version).await;
                    } else {
                        let t0 = hh.now();
                        let at = clock.now(hh.now());
                        if store.get_at(&key, at).await.is_ok() && measuring.get() {
                            hist.borrow_mut().record((hh.now() - t0).as_nanos() as u64);
                        }
                    }
                }
            }));
        }
        // Warm the cache, then measure steady state only.
        sim.run_until(h.now() + warmup);
        let warm_stats = store.stats();
        measuring.set(true);
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        let total = store.stats();
        let st = flashsim::dftl::DftlStats {
            hits: total.hits - warm_stats.hits,
            misses: total.misses - warm_stats.misses,
            translation_writes: total.translation_writes - warm_stats.translation_writes,
        };
        let hist = hist.borrow();
        let line = format!(
            "{:>12.0} {:>10.1} {:>12.1} {:>14.1}",
            fraction * 100.0,
            st.hit_rate() * 100.0,
            hist.mean() / 1e3,
            st.translation_writes as f64 / measure.as_secs_f64(),
        );
        let row = Json::obj()
            .field("resident_fraction", Json::F64(fraction))
            .field("hit_rate", Json::F64(st.hit_rate()))
            .field("get_mean_us", Json::F64(hist.mean() / 1e3))
            .field(
                "translation_writes_per_s",
                Json::F64(st.translation_writes as f64 / measure.as_secs_f64()),
            );
        (line, row)
    });
    let mut rows = Vec::new();
    for (line, row) in cells {
        println!("{line}");
        rows.push(row);
    }
    println!("(the paper's all-mapping-in-DRAM assumption is the 100% row)");
    Json::obj().field("rows", Json::Arr(rows))
}

// ---------------------------------------------------------------------------
// Ablation 4: packing-window sweep
// ---------------------------------------------------------------------------

/// Runs and prints the packing-window ablation: the paper's 1 ms packer
/// delay is "tunable" (§5); this sweep shows the latency/efficiency
/// trade-off it controls. Returns its JSON payload.
pub fn run_packing(scale: Scale) -> Json {
    println!("Ablation: packing window sweep — MFTL, 75% get / 25% put");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14}",
        "window us", "kIOPS", "get mean us", "put mean us", "tuples/page"
    );
    let keys: u64 = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 50_000,
    };
    // One independent sim per packing window: compute on the worker pool,
    // print the table rows afterwards in sweep order.
    let cells = perfkit::pool::run_ordered_auto(vec![0u64, 250, 500, 1_000, 2_000], |window_us| {
        let mut sim = Sim::new(1_900 + window_us);
        let h = sim.handle();
        let store = UnifiedStore::new(
            h.clone(),
            NandConfig {
                channels: 32,
                queue_depth: 128,
                ..NandConfig::default()
            }
            .sized_for(keys, 512, 0.08),
            MftlConfig {
                packing_window: Duration::from_micros(window_us),
                ..MftlConfig::default()
            },
        );
        let payload = value(vec![0u8; 472]);
        for i in 0..keys {
            store.bulk_load(
                Key::from(i),
                payload.clone(),
                Version::new(Timestamp(1), ClientId(0)),
            );
        }
        store.finish_load();
        {
            let store = store.clone();
            let hh = h.clone();
            h.spawn(async move {
                loop {
                    hh.sleep(Duration::from_millis(10)).await;
                    store.set_watermark(
                        Timestamp::from_sim(hh.now()).before(Duration::from_millis(50)),
                    );
                }
            });
        }
        let get_hist = Rc::new(RefCell::new(Histogram::new()));
        let put_hist = Rc::new(RefCell::new(Histogram::new()));
        let pages_before = store.device().stats().page_writes;
        let measure = scale.measure() / 3;
        let until = h.now() + measure;
        let mut joins = Vec::new();
        for w in 0..64u32 {
            let store = store.clone();
            let payload = payload.clone();
            let get_hist = get_hist.clone();
            let put_hist = put_hist.clone();
            let hh = h.clone();
            joins.push(h.spawn(async move {
                let mut rng = hh.fork_rng();
                let clock = timesync::SyncedClock::new(Discipline::Perfect, w as u64);
                let client = ClientId(w + 1);
                while hh.now() < until {
                    let key = Key::from(rand::Rng::gen_range(&mut rng, 0..keys));
                    let t0 = hh.now();
                    if rand::Rng::gen_range(&mut rng, 0..4) == 0 {
                        let ok = loop {
                            let version = Version::new(clock.now(hh.now()), client);
                            match store.put(key.clone(), payload.clone(), version).await {
                                Ok(()) => break true,
                                Err(flashsim::StoreError::StaleWrite(_)) => continue,
                                Err(_) => break false,
                            }
                        };
                        if ok {
                            put_hist
                                .borrow_mut()
                                .record((hh.now() - t0).as_nanos() as u64);
                        }
                    } else {
                        let at = clock.now(hh.now());
                        if store.get_at(&key, at).await.is_ok() {
                            get_hist
                                .borrow_mut()
                                .record((hh.now() - t0).as_nanos() as u64);
                        }
                    }
                }
            }));
        }
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        let gets = get_hist.borrow();
        let puts = put_hist.borrow();
        let pages = store.device().stats().page_writes - pages_before;
        let tuples_per_page = if pages == 0 {
            0.0
        } else {
            puts.count() as f64 / pages as f64
        };
        let line = format!(
            "{:>10} {:>10.0} {:>12.1} {:>12.1} {:>14.2}",
            window_us,
            (gets.count() + puts.count()) as f64 / measure.as_secs_f64() / 1e3,
            gets.mean() / 1e3,
            puts.mean() / 1e3,
            tuples_per_page,
        );
        let row = Json::obj()
            .field("window_us", Json::U64(window_us))
            .field(
                "kiops",
                Json::F64((gets.count() + puts.count()) as f64 / measure.as_secs_f64() / 1e3),
            )
            .field("get_mean_us", Json::F64(gets.mean() / 1e3))
            .field("put_mean_us", Json::F64(puts.mean() / 1e3))
            .field("tuples_per_page", Json::F64(tuples_per_page));
        (line, row)
    });
    let mut rows = Vec::new();
    for (line, row) in cells {
        println!("{line}");
        rows.push(row);
    }
    println!(
        "(window 0 flushes every tuple as its own page — lowest put latency, worst \
         space efficiency and most GC; larger windows trade put latency for fuller pages)"
    );
    Json::obj().field("rows", Json::Arr(rows))
}

// ---------------------------------------------------------------------------
// Ablation 5: open-loop latency vs offered load
// ---------------------------------------------------------------------------

/// Runs and prints an open-loop (Poisson-arrival) latency curve: unlike the
/// closed-loop Figure 8, this exposes queueing delay as offered load
/// approaches saturation, with and without local validation. Returns its
/// JSON payload.
pub fn run_open_loop(scale: Scale) -> Json {
    println!("Ablation: open-loop latency vs offered load — MFTL, 75% read-only");
    println!(
        "{:>10} {:>4} {:>12} {:>12} {:>12} {:>10}",
        "rate/s", "LV", "ktxn/s", "mean us", "p99 us", "shed"
    );
    let keyspace: u64 = match scale {
        Scale::Quick => 12_000,
        Scale::Full => 60_000,
    };
    let mut items = Vec::new();
    for &rate in &[2_000.0f64, 8_000.0, 16_000.0] {
        for lv in [true, false] {
            items.push((rate, lv));
        }
    }
    // Every (rate, LV) pair is an independent sim: compute on the worker
    // pool, print the table rows afterwards in sweep order.
    let cells = perfkit::pool::run_ordered_auto(items, |(rate, lv)| {
        {
            let mut sim = Sim::new(2_000 + rate as u64);
            let h = sim.handle();
            let cluster = milana::cluster::MilanaCluster::build(
                &h,
                MilanaClusterConfig {
                    shards: 3,
                    replicas: 3,
                    clients: 8,
                    backend: BackendKind::Mftl,
                    nand: NandConfig {
                        channels: 8,
                        ..NandConfig::default()
                    }
                    .sized_for(keyspace / 3, 512, 0.08),
                    clock: ClockSpec::ptp_software(),
                    preload_keys: keyspace,
                    client_cfg: milana::client::TxnClientConfig {
                        validation: if lv {
                            milana::client::ValidationMode::Local
                        } else {
                            milana::client::ValidationMode::Remote
                        },
                        ..milana::client::TxnClientConfig::default()
                    },
                    net: simkit::net::LatencyConfig {
                        one_way: Duration::from_micros(150),
                        jitter_std: Duration::from_micros(30),
                        ..simkit::net::LatencyConfig::default()
                    },
                    tuning: milana::server::ServerTuning {
                        obs: crate::common::run_obs(),
                        ..Default::default()
                    },
                    ..MilanaClusterConfig::default()
                },
            );
            let wl = Rc::new(WorkloadConfig {
                mix: Mix::retwis_read_heavy(),
                keyspace,
                zipf_alpha: 0.5,
                value_size: 472,
                max_retries: 64,
            });
            let zipf = Rc::new(Zipf::new(keyspace as usize, wl.zipf_alpha));
            let stats = obskit::TxnStats::new();
            let measure = scale.measure() / 2;
            let until = h.now() + measure;
            // Split the offered rate over the client machines.
            let per_client = rate / cluster.clients.len() as f64;
            let mut joins = Vec::new();
            for c in &cluster.clients {
                joins.push(h.spawn(retwis::driver::run_open_loop(
                    h.clone(),
                    c.clone(),
                    wl.clone(),
                    zipf.clone(),
                    stats.clone(),
                    per_client,
                    256,
                    until,
                )));
            }
            sim.block_on(async move {
                for j in joins {
                    j.await;
                }
            });
            let lat = stats.latency.snapshot();
            let line = format!(
                "{:>10.0} {:>4} {:>12.1} {:>12.1} {:>12.1} {:>10}",
                rate,
                if lv { "on" } else { "off" },
                stats.commits.get() as f64 / measure.as_secs_f64() / 1e3,
                lat.mean() / 1e3,
                lat.quantile(0.99) as f64 / 1e3,
                stats.timeouts.get(),
            );
            let row = Json::obj()
                .field("offered_rate", Json::F64(rate))
                .field("lv", Json::Bool(lv))
                .field(
                    "throughput",
                    Json::F64(stats.commits.get() as f64 / measure.as_secs_f64()),
                )
                .field("shed", Json::U64(stats.timeouts.get()))
                .field("abort_reasons", stats.abort_reasons.to_json())
                .field("latency_ns", lat.summary_json());
            (line, row)
        }
    });
    let mut rows = Vec::new();
    for (line, row) in cells {
        println!("{line}");
        rows.push(row);
    }
    println!(
        "(LV's saved round trips matter more as load rises: without LV the \
         validation traffic saturates the primaries sooner, inflating tails)"
    );
    Json::obj().field("rows", Json::Arr(rows))
}
