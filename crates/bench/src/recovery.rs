//! Cold-restart recovery reproduction (library core of `repro_recovery`):
//! mount-scan time and MTTR vs. store size, plus a power-fail fault
//! campaign.
//!
//! Two legs on the same seed:
//!
//! 1. **MTTR sweep** — one [`recoverkit`] trial per store size: preload,
//!    warm workload, power-fail a backup (torn flash state), keep
//!    committing, cold-restart it, and split the recovery timeline into
//!    mount scan (OOB walk) and anti-entropy catch-up. Every trial ends
//!    with a durability audit against the recovered replica's own flash.
//! 2. **Power-fail campaign** — the `faultkit` nemesis interleaves power
//!    failures with warm crashes and partitions while backup snapshot
//!    reads are enabled; the checker must find no `lost_acked_write` and
//!    no `stale_backup_read`.
//!
//! `--inject durability-skip` flips the seeded fraud: cold restarts adopt
//! the mounted floor and skip catch-up. Both legs must then *fail* — the
//! sweep's audit reports lost writes and the campaign's checker flags the
//! fraud — proving the durability checks actually bite.

use faultkit::{run_campaign, CampaignConfig, CampaignReport};
use obskit::Json;
use recoverkit::{run_recovery_sweep, RecoverySpec, RecoveryTrial};

use crate::common::Scale;

/// Knobs for one `repro_recovery` run.
pub struct RecoveryConfig {
    /// Simulation seed (sweep and campaign both derive from it).
    pub seed: u64,
    /// Store sizes (preloaded keys) swept for the MTTR-vs-size curve.
    pub store_sizes: Vec<u64>,
    /// Trial template: workload shape, scan rate, catch-up batch.
    pub spec: RecoverySpec,
    /// Faults in the power-fail campaign leg.
    pub campaign_faults: usize,
    /// Seeded fraud: skip anti-entropy catch-up on cold restart. The run
    /// must then detect lost acked writes in both legs.
    pub inject_durability_skip: bool,
}

impl RecoveryConfig {
    /// Defaults for the given scale.
    pub fn for_scale(scale: Scale) -> RecoveryConfig {
        let (store_sizes, faults) = match scale {
            Scale::Quick => (vec![500, 2_000, 8_000], 16),
            Scale::Full => (vec![2_000, 8_000, 32_000], 48),
        };
        RecoveryConfig {
            seed: 1,
            store_sizes,
            spec: RecoverySpec::default(),
            campaign_faults: faults,
            inject_durability_skip: false,
        }
    }
}

/// Runs the MTTR sweep: one cold-restart trial per store size.
pub fn run(cfg: &RecoveryConfig) -> Vec<RecoveryTrial> {
    let spec = RecoverySpec {
        seed: cfg.seed,
        skip_durability: cfg.inject_durability_skip,
        ..cfg.spec.clone()
    };
    run_recovery_sweep(&spec, &cfg.store_sizes)
}

/// Runs the power-fail fault-campaign leg.
pub fn run_powerfail_campaign(cfg: &RecoveryConfig) -> CampaignReport {
    run_campaign(&CampaignConfig {
        seeds: vec![cfg.seed],
        faults: cfg.campaign_faults,
        powerfail: true,
        backup_reads: true,
        skip_durability: cfg.inject_durability_skip,
        ..CampaignConfig::default()
    })
}

/// Prints the sweep table and both verdicts.
pub fn print(cfg: &RecoveryConfig, trials: &[RecoveryTrial], campaign: &CampaignReport) {
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>12} {:>6} {:>9} {:>6}",
        "store_keys", "acked", "mount_us", "catchup_us", "mttr_us", "torn", "caught_up", "lost"
    );
    for t in trials {
        println!(
            "{:>10} {:>7} {:>12} {:>12} {:>12} {:>6} {:>9} {:>6}",
            t.store_keys,
            t.acked,
            t.mount_ns / 1_000,
            t.catchup_ns / 1_000,
            t.mttr_ns / 1_000,
            t.torn_pages,
            t.catchup_keys,
            t.lost_writes,
        );
    }
    let lost: u64 = trials.iter().map(|t| t.lost_writes).sum();
    println!(
        "durability audit: {} trial(s), {} lost acked write(s) ({})",
        trials.len(),
        lost,
        match (cfg.inject_durability_skip, lost) {
            (false, 0) => "ok",
            (false, _) => "FAILED",
            (true, 0) => "FRAUD MISSED",
            (true, _) => "fraud caught",
        }
    );
    println!(
        "power-fail campaign: {} fault(s), {} violation(s) ({})",
        cfg.campaign_faults,
        campaign.violation_count(),
        match (
            cfg.inject_durability_skip,
            campaign.offending_seeds().is_empty()
        ) {
            (false, true) => "ok",
            (false, false) => "FAILED",
            (true, true) => "FRAUD MISSED",
            (true, false) => "fraud caught",
        }
    );
}

/// Deterministic JSON payload for the artifact.
pub fn to_json(cfg: &RecoveryConfig, trials: &[RecoveryTrial], campaign: &CampaignReport) -> Json {
    let sweep = Json::arr(trials.iter().map(RecoveryTrial::to_json));
    Json::obj()
        .field("seed", Json::U64(cfg.seed))
        .field(
            "inject_durability_skip",
            Json::Bool(cfg.inject_durability_skip),
        )
        .field("trials", sweep)
        .field("campaign", campaign.to_json())
        .field(
            "checks",
            Json::obj()
                .field(
                    "sweep_clean",
                    Json::Bool(trials.iter().all(RecoveryTrial::clean)),
                )
                .field(
                    "campaign_clean",
                    Json::Bool(campaign.offending_seeds().is_empty()),
                ),
        )
}

/// True when the run passes. On an honest run both legs must be clean; in
/// `--inject durability-skip` mode both legs must *catch* the fraud.
pub fn ok(cfg: &RecoveryConfig, trials: &[RecoveryTrial], campaign: &CampaignReport) -> bool {
    let sweep_clean = trials.iter().all(RecoveryTrial::clean);
    let campaign_clean = campaign.offending_seeds().is_empty();
    if cfg.inject_durability_skip {
        !sweep_clean && !campaign_clean
    } else {
        sweep_clean && campaign_clean
    }
}
