//! Elastic-resharding reproduction (library core of `repro_rebalance`):
//! a mid-run hot-shard split recovers the throughput a Zipf skew took
//! away.
//!
//! One simulated MILANA cluster runs an open-loop retwis-style load
//! (75% read-only, 25% read-modify-write) through three measurement
//! windows on the same seed and arrival schedule:
//!
//! 1. **pre-skew** — keys drawn uniformly; both shards share the load;
//! 2. **skew** — 90% of traffic turns Zipf-concentrated onto the keys of
//!    shard 0, whose single flash device and admission gate saturate;
//! 3. **post-split** — the `shardkit` engine splits shard 0 live (Prepare
//!    → Copy → CatchUp → Cutover → Done) onto a freshly provisioned
//!    group while the skewed load keeps running, and the same skewed
//!    traffic is measured again.
//!
//! Acceptance checks:
//! - post-split committed throughput recovers to at least 80% of the
//!   pre-skew (uniform) committed throughput;
//! - a `faultkit` rebalance campaign — crash/partition injected in every
//!   migration phase — loses no acked write, duplicates none, and keeps
//!   exactly one owner per shard per epoch (checker-verified).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use faultkit::{run_rebalance_campaign, RebalanceCampaignConfig, RebalanceCampaignReport};
use flashsim::{value, Key, NandConfig};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig, MASTER_NODE};
use obskit::{Json, Obs};
use rand::Rng;
use semel::shard::ShardId;
use shardkit::{RebalanceEngine, RebalancePlan, RebalanceSpec};
use simkit::rng::Zipf;
use simkit::Sim;
use timesync::ClockSpec;

use crate::common::Scale;

const SHARDS: u32 = 2;
const REPLICAS: u32 = 3;
const CLIENTS: u32 = 4;
/// Share of skewed traffic aimed at the hot shard's keys.
pub const HOT_PCT: u64 = 90;
/// Zipf exponent (x100) over the hot shard's key ranks.
pub const ZIPF_S_X100: u64 = 80;
/// Read-only fraction of the mix (x100); the rest are read-modify-writes.
const READ_ONLY_PCT: u64 = 75;

struct Windows {
    warmup: Duration,
    settle: Duration,
    measure: Duration,
}

/// The three-window measurement plus migration counters.
pub struct RebalanceRun {
    /// Commits in the uniform window.
    pub pre_commits: u64,
    /// Commits in the skewed window.
    pub skew_commits: u64,
    /// Commits in the post-split window (skew still applied).
    pub post_commits: u64,
    /// Aborts in the uniform window.
    pub pre_aborts: u64,
    /// Aborts in the skewed window.
    pub skew_aborts: u64,
    /// Aborts in the post-split window.
    pub post_aborts: u64,
    /// Records bulk-copied by the migration.
    pub records_copied: u64,
    /// Bytes bulk-copied by the migration.
    pub bytes_copied: u64,
    /// Delta catch-up rounds before cutover.
    pub catchup_rounds: u32,
    /// Routing epoch after cutover.
    pub final_epoch: u64,
    /// Shard-map installs observed cluster-wide.
    pub map_installs: u64,
    /// Records rehomed onto the new group.
    pub records_moved: u64,
    /// Prepares fenced for carrying a stale epoch.
    pub stale_epoch_prepares: u64,
}

fn nand() -> NandConfig {
    // A deliberately narrow device: one channel makes a single shard's
    // flash the bottleneck under skew, which is the phenomenon the split
    // is supposed to fix.
    NandConfig {
        blocks: 2048,
        pages_per_block: 32,
        channels: 1,
        queue_depth: 16,
        ..NandConfig::default()
    }
}

/// Runs the three-window skew/split experiment once.
#[allow(clippy::too_many_lines)]
pub fn run_once(scale: Scale, seed: u64) -> RebalanceRun {
    let keyspace: u64 = match scale {
        Scale::Quick => 2_048,
        Scale::Full => 4_096,
    };
    let w = match scale {
        Scale::Quick => Windows {
            warmup: Duration::from_millis(100),
            settle: Duration::from_millis(80),
            measure: Duration::from_millis(200),
        },
        Scale::Full => Windows {
            warmup: Duration::from_millis(200),
            settle: Duration::from_millis(120),
            measure: Duration::from_millis(500),
        },
    };
    let interarrival = Duration::from_micros(150);

    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let obs = Obs::new();
    let mut cfg = MilanaClusterConfig {
        shards: SHARDS,
        replicas: REPLICAS,
        clients: CLIENTS,
        nand: nand(),
        preload_keys: keyspace,
        clock: ClockSpec::perfect(),
        ..MilanaClusterConfig::default()
    };
    cfg.tuning.obs = obs.clone();
    cfg.client_cfg.obs = obs.clone();
    let mut cluster = MilanaCluster::build(&h, cfg);

    // Rank the hot shard's keys once, against the pre-split map: the skewed
    // phase keeps drawing from this set even after the split rehomes half
    // of it — that is exactly how the load spreads back out.
    let hot: Rc<Vec<Key>> = Rc::new(
        (0..keyspace)
            .map(Key::from)
            .filter(|k| cluster.map.borrow().shard_for(k) == ShardId(0))
            .collect(),
    );
    let zipf = Rc::new(Zipf::new(hot.len(), ZIPF_S_X100 as f64 / 100.0));

    let commits = Rc::new(Cell::new(0u64));
    let aborts = Rc::new(Cell::new(0u64));
    let skewed = Rc::new(Cell::new(false));
    let stop = Rc::new(Cell::new(false));

    let hh = h.clone();
    let commits2 = commits.clone();
    let aborts2 = aborts.clone();
    let skewed2 = skewed.clone();
    let stop2 = stop.clone();
    let out = Rc::new(Cell::new(None::<(u64, u64, u32, u64)>));
    let out2 = out.clone();
    let counts = Rc::new(Cell::new((0u64, 0u64, 0u64, 0u64, 0u64, 0u64)));
    let counts2 = counts.clone();

    sim.block_on(async move {
        for c in &cluster.clients {
            let c = c.clone();
            let hh2 = hh.clone();
            let commits = commits2.clone();
            let aborts = aborts2.clone();
            let skewed = skewed2.clone();
            let stop = stop2.clone();
            let hot = hot.clone();
            let zipf = zipf.clone();
            let mut rng = hh.fork_rng();
            hh.spawn(async move {
                let mut next = hh2.now();
                while !stop.get() {
                    let key = if skewed.get() && rng.gen_range(0..100u64) < HOT_PCT {
                        hot[zipf.sample(&mut rng)].clone()
                    } else {
                        Key::from(rng.gen_range(0..keyspace))
                    };
                    let read_only = rng.gen_range(0..100u64) < READ_ONLY_PCT;
                    let c2 = c.clone();
                    let commits = commits.clone();
                    let aborts = aborts.clone();
                    hh2.spawn(async move {
                        let mut t = c2.begin_with(TxnOpts::default());
                        if t.get(&key).await.is_err() {
                            aborts.set(aborts.get() + 1);
                            return;
                        }
                        if read_only {
                            commits.set(commits.get() + 1);
                            return;
                        }
                        t.put(key, value(&b"resharded"[..]));
                        match t.commit().await {
                            Ok(_) => commits.set(commits.get() + 1),
                            Err(_) => aborts.set(aborts.get() + 1),
                        }
                    });
                    next += interarrival;
                    hh2.sleep_until(next).await;
                }
            });
        }

        let window = |label: &'static str| {
            let hh = hh.clone();
            let commits = commits2.clone();
            let aborts = aborts2.clone();
            async move {
                let (c0, a0) = (commits.get(), aborts.get());
                hh.sleep(w.measure).await;
                let got = (commits.get() - c0, aborts.get() - a0);
                let _ = label;
                got
            }
        };

        hh.sleep(w.warmup).await;
        let (pre_c, pre_a) = window("pre").await;

        skewed2.set(true);
        hh.sleep(w.settle).await;
        let (skew_c, skew_a) = window("skew").await;

        // Split the hot shard live, with the skewed load still running.
        let engine = RebalanceEngine::new(
            &hh,
            MASTER_NODE,
            cluster.map.clone(),
            cluster.master.clone(),
            RebalanceSpec::default(),
            cluster.config.tuning.obs.clone(),
        );
        let from = ShardId(0);
        let new_shard = ShardId(cluster.map.borrow().len() as u32);
        let dest = cluster.provision_group(new_shard);
        let sources: Vec<shardkit::SourceReplica> = cluster.replicas[from.0 as usize]
            .iter()
            .map(|s| (s.addr, s.server.backend().clone()))
            .collect();
        let report = engine
            .run(RebalancePlan::Split { from }, dest, sources)
            .await;
        out2.set(Some((
            report.records_copied,
            report.bytes_copied,
            report.catchup_rounds,
            report.final_epoch,
        )));

        hh.sleep(w.settle).await;
        let (post_c, post_a) = window("post").await;

        stop2.set(true);
        hh.sleep(Duration::from_millis(20)).await;
        counts2.set((pre_c, pre_a, skew_c, skew_a, post_c, post_a));
    });

    let (pre_c, pre_a, skew_c, skew_a, post_c, post_a) = counts.get();
    let (records_copied, bytes_copied, catchup_rounds, final_epoch) =
        out.get().expect("split completed");
    RebalanceRun {
        pre_commits: pre_c,
        skew_commits: skew_c,
        post_commits: post_c,
        pre_aborts: pre_a,
        skew_aborts: skew_a,
        post_aborts: post_a,
        records_copied,
        bytes_copied,
        catchup_rounds,
        final_epoch,
        map_installs: obs.registry.counter("map_installs").get(),
        records_moved: obs.registry.counter("migration_records_moved").get(),
        stale_epoch_prepares: obs.registry.counter("stale_epoch_prepares").get(),
    }
}

/// Runs the fault campaign half of the experiment: crash + partition in
/// every migration phase, audited for write conservation and
/// single-owner-per-epoch.
pub fn run_fault_campaign(scale: Scale, seed: u64) -> RebalanceCampaignReport {
    let campaign_seeds: Vec<u64> = match scale {
        Scale::Quick => vec![seed],
        Scale::Full => vec![seed, seed + 1],
    };
    run_rebalance_campaign(&RebalanceCampaignConfig {
        seeds: campaign_seeds,
        inject: true,
        ..RebalanceCampaignConfig::default()
    })
}

/// Post-split committed throughput as a percentage of pre-skew.
pub fn recovery_pct(run: &RebalanceRun) -> u64 {
    run.post_commits * 100 / run.pre_commits.max(1)
}

/// Prints the windows table, migration counters, and verdicts.
pub fn print(run: &RebalanceRun, campaign: &RebalanceCampaignReport) {
    println!("{:>10} {:>9} {:>8}", "window", "commits", "aborts");
    println!(
        "{:>10} {:>9} {:>8}",
        "pre-skew", run.pre_commits, run.pre_aborts
    );
    println!(
        "{:>10} {:>9} {:>8}",
        "skew", run.skew_commits, run.skew_aborts
    );
    println!(
        "{:>10} {:>9} {:>8}",
        "post-split", run.post_commits, run.post_aborts
    );
    println!(
        "split: {} records / {} bytes copied, {} catch-up rounds, epoch {}",
        run.records_copied, run.bytes_copied, run.catchup_rounds, run.final_epoch
    );
    let pct = recovery_pct(run);
    println!(
        "post-split recovery: {pct}% of pre-skew committed throughput ({})",
        if pct >= 80 {
            "ok, >= 80%"
        } else {
            "FAILED, < 80%"
        }
    );
    println!(
        "fault campaign: {} seed(s), {} violation(s) ({})",
        campaign.outcomes.len(),
        campaign.violation_count(),
        if campaign.offending_seeds().is_empty() {
            "ok"
        } else {
            "FAILED"
        }
    );
}

/// Deterministic JSON payload for the artifact.
pub fn to_json(run: &RebalanceRun, campaign: &RebalanceCampaignReport, seed: u64) -> Json {
    let pct = recovery_pct(run);
    Json::obj()
        .field("seed", Json::U64(seed))
        .field("shards", Json::U64(u64::from(SHARDS)))
        .field("replicas", Json::U64(u64::from(REPLICAS)))
        .field("clients", Json::U64(u64::from(CLIENTS)))
        .field("hot_pct", Json::U64(HOT_PCT))
        .field("zipf_s_x100", Json::U64(ZIPF_S_X100))
        .field("read_only_pct", Json::U64(READ_ONLY_PCT))
        .field(
            "windows",
            Json::obj()
                .field(
                    "pre",
                    Json::obj()
                        .field("commits", Json::U64(run.pre_commits))
                        .field("aborts", Json::U64(run.pre_aborts)),
                )
                .field(
                    "skew",
                    Json::obj()
                        .field("commits", Json::U64(run.skew_commits))
                        .field("aborts", Json::U64(run.skew_aborts)),
                )
                .field(
                    "post",
                    Json::obj()
                        .field("commits", Json::U64(run.post_commits))
                        .field("aborts", Json::U64(run.post_aborts)),
                ),
        )
        .field(
            "migration",
            Json::obj()
                .field("records_copied", Json::U64(run.records_copied))
                .field("bytes_copied", Json::U64(run.bytes_copied))
                .field("catchup_rounds", Json::U64(u64::from(run.catchup_rounds)))
                .field("final_epoch", Json::U64(run.final_epoch))
                .field("map_installs", Json::U64(run.map_installs))
                .field("records_moved", Json::U64(run.records_moved))
                .field("stale_epoch_prepares", Json::U64(run.stale_epoch_prepares)),
        )
        .field("campaign", campaign.to_json())
        .field(
            "checks",
            Json::obj()
                .field("recovery_pct", Json::U64(pct))
                .field("recovery_ok", Json::Bool(pct >= 80))
                .field(
                    "campaign_clean",
                    Json::Bool(campaign.offending_seeds().is_empty()),
                ),
        )
}

/// True when every acceptance check passed.
pub fn ok(run: &RebalanceRun, campaign: &RebalanceCampaignReport) -> bool {
    recovery_pct(run) >= 80 && campaign.offending_seeds().is_empty()
}
