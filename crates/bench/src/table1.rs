//! Table 1 — single-SSD multi-version FTL performance: unified (MFTL) vs
//! split (VFTL) under varying get/put mixes.
//!
//! Paper setup (§5.1): one emulated SSD, 2 M keys, 512 B tuples, closed-loop
//! KV micro-benchmark, 15-minute runs. Reported: throughput (kilo-req/s) and
//! average get/put latency for get ratios 100/75/50/25 %.
//!
//! We reproduce the same experiment at reduced scale (keyspace and run
//! length; see `REPRO_SCALE`) on the simulated device with the paper's
//! timing parameters (4 KB pages, 32 pages/block, 50 µs read, 100 µs
//! program, 1 ms erase, queue depth 128, 1 ms packing window).
//!
//! Per-op software overhead models the cost the paper attributes to the
//! split design: VFTL traverses two mapping layers through a block
//! interface, MFTL one unified table (§3.1: SDF "collapses the two-step
//! translation into a single translation").

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, Backend, BackendKind, Key, NandConfig, StoreError};
use obskit::Json;
use simkit::metrics::Histogram;
use simkit::Sim;
use timesync::{ClientId, Discipline, SyncedClock, Timestamp, Version};

use crate::common::Scale;

/// One measured cell of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Get percentage of the op mix.
    pub get_pct: u32,
    /// "VFTL" or "MFTL".
    pub ftl: &'static str,
    /// Throughput in kilo-requests per (virtual) second.
    pub kiops: f64,
    /// Mean get latency, µs.
    pub get_us: f64,
    /// Mean put latency, µs (NaN for 100 % gets).
    pub put_us: f64,
}

/// The paper's Table 1 numbers, for side-by-side printing.
pub const PAPER_TABLE1: &[(u32, f64, f64, f64, f64, f64, f64)] = &[
    // get%, VFTL kIOPS, MFTL kIOPS, VFTL get us, MFTL get us, VFTL put us, MFTL put us
    (100, 351.0, 456.0, 68.1, 59.9, f64::NAN, f64::NAN),
    (75, 295.0, 430.0, 363.1, 62.9, 568.5, 872.8),
    (50, 217.0, 277.0, 516.6, 70.3, 673.8, 859.0),
    (25, 215.0, 189.0, 435.6, 77.7, 659.8, 895.8),
];

/// Device + run parameters for one cell.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Preloaded keys.
    pub keys: u64,
    /// Closed-loop workers.
    pub workers: u32,
    /// Channels on the device.
    pub channels: u32,
    /// Fraction of device capacity occupied by the dataset.
    pub utilization: f64,
    /// Warm-up (virtual).
    pub warmup: Duration,
    /// Measurement window (virtual).
    pub measure: Duration,
}

impl Table1Config {
    /// Derives a config from the global scale knob.
    pub fn for_scale(scale: Scale) -> Table1Config {
        match scale {
            Scale::Quick => Table1Config {
                keys: 20_000,
                workers: 64,
                channels: 32,
                utilization: 0.08,
                warmup: Duration::from_millis(400),
                measure: Duration::from_millis(1000),
            },
            Scale::Full => Table1Config {
                keys: 200_000,
                workers: 64,
                channels: 32,
                utilization: 0.08,
                warmup: Duration::from_millis(800),
                measure: Duration::from_secs(3),
            },
        }
    }
}

/// Runs one (FTL, get%) cell. The optional string is a stderr note about
/// puts that hit capacity backpressure — returned instead of printed so
/// parallel sweeps emit notes in deterministic (sweep) order.
pub fn run_cell(
    kind: BackendKind,
    get_pct: u32,
    cfg: &Table1Config,
    seed: u64,
) -> (Table1Row, Option<String>) {
    assert!(matches!(kind, BackendKind::Vftl | BackendKind::Mftl));
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let nand = NandConfig {
        channels: cfg.channels,
        queue_depth: 128,
        ..NandConfig::default()
    }
    .sized_for(cfg.keys, 512, cfg.utilization);
    let store = Backend::new(kind, &h, nand);
    store.attach_tracer(&crate::common::run_obs().tracer, 0);
    // 512-byte tuples: 16 B key + 472 B value + 24 B header.
    let payload = value(vec![0u8; 472]);
    for i in 0..cfg.keys {
        store.bulk_load(
            Key::from(i),
            payload.clone(),
            Version::new(Timestamp(1), ClientId(0)),
        );
    }
    store.finish_load();

    // Watermark maintenance: trail true time by 100 ms so superseded
    // versions become collectible (the SEMEL client would drive this).
    {
        let store = store.clone();
        let hh = h.clone();
        h.spawn(async move {
            loop {
                hh.sleep(Duration::from_millis(10)).await;
                let wm = Timestamp::from_sim(hh.now()).before(Duration::from_millis(50));
                store.set_watermark(wm);
            }
        });
    }

    let measuring = Rc::new(Cell::new(false));
    let get_hist = Rc::new(RefCell::new(Histogram::new()));
    let put_hist = Rc::new(RefCell::new(Histogram::new()));
    let put_errors = Rc::new(Cell::new(0u64));
    let until = h.now() + cfg.warmup + cfg.measure;
    let mut joins = Vec::new();
    for w in 0..cfg.workers {
        let store = store.clone();
        let hh = h.clone();
        let payload = payload.clone();
        let measuring = measuring.clone();
        let get_hist = get_hist.clone();
        let put_hist = put_hist.clone();
        let put_errors = put_errors.clone();
        let keys = cfg.keys;
        joins.push(h.spawn(async move {
            let mut rng = hh.fork_rng();
            let client = ClientId(w + 1);
            // A strictly monotonic per-worker clock (the SEMEL client
            // library's behavior): retried writes get fresh, larger stamps.
            let clock = SyncedClock::new(Discipline::Perfect, w as u64);
            loop {
                if hh.now() >= until {
                    break;
                }
                let key = Key::from(rand::Rng::gen_range(&mut rng, 0..keys));
                let is_get = rand::Rng::gen_range(&mut rng, 0..100u32) < get_pct;
                let t0 = hh.now();
                if is_get {
                    let at = clock.now(hh.now());
                    let _ = store.get_at(&key, at).await;
                    if measuring.get() {
                        get_hist
                            .borrow_mut()
                            .record((hh.now() - t0).as_nanos() as u64);
                    }
                } else {
                    // Retry timestamp races (rare under uniform keys); the
                    // monotonic clock guarantees progress.
                    let ok = loop {
                        let version = Version::new(clock.now(hh.now()), client);
                        match store.put(key.clone(), payload.clone(), version).await {
                            Ok(()) => break true,
                            Err(StoreError::StaleWrite(_)) => continue,
                            Err(_) => break false, // capacity backpressure
                        }
                    };
                    if measuring.get() {
                        if ok {
                            put_hist
                                .borrow_mut()
                                .record((hh.now() - t0).as_nanos() as u64);
                        } else {
                            put_errors.set(put_errors.get() + 1);
                        }
                    }
                }
            }
        }));
    }
    sim.run_until(h.now() + cfg.warmup);
    measuring.set(true);
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let gets = get_hist.borrow();
    let puts = put_hist.borrow();
    let ftl = match kind {
        BackendKind::Vftl => "VFTL",
        _ => "MFTL",
    };
    let note = (put_errors.get() > 0).then(|| {
        format!(
            "  note: {} {}% {} puts hit capacity backpressure (excluded from stats)",
            put_errors.get(),
            get_pct,
            ftl
        )
    });
    let total_ops = gets.count() + puts.count();
    let row = Table1Row {
        get_pct,
        ftl,
        kiops: total_ops as f64 / cfg.measure.as_secs_f64() / 1e3,
        get_us: gets.mean() / 1e3,
        put_us: if puts.count() == 0 {
            f64::NAN
        } else {
            puts.mean() / 1e3
        },
    };
    (row, note)
}

/// Runs the full table on the `perfkit` worker pool (one sim per cell,
/// merged back — and backpressure notes printed — in sweep order).
pub fn run(cfg: &Table1Config) -> Vec<Table1Row> {
    let mut items = Vec::new();
    for &get_pct in &[100u32, 75, 50, 25] {
        for kind in [BackendKind::Vftl, BackendKind::Mftl] {
            items.push((kind, get_pct));
        }
    }
    let cells = perfkit::pool::run_ordered_auto(items, |(kind, get_pct)| {
        run_cell(kind, get_pct, cfg, 1000 + get_pct as u64)
    });
    cells
        .into_iter()
        .map(|(row, note)| {
            if let Some(note) = note {
                eprintln!("{note}");
            }
            row
        })
        .collect()
}

/// Deterministic JSON payload: one object per measured cell (`put_us` is
/// `null` for the 100 % get mix — non-finite floats serialize as null).
pub fn to_json(rows: &[Table1Row]) -> Json {
    Json::obj().field(
        "rows",
        Json::arr(rows.iter().map(|r| {
            Json::obj()
                .field("get_pct", Json::U64(r.get_pct as u64))
                .field("ftl", Json::str(r.ftl))
                .field("kiops", Json::F64(r.kiops))
                .field("get_us", Json::F64(r.get_us))
                .field("put_us", Json::F64(r.put_us))
        })),
    )
}

/// Pretty-prints measured rows next to the paper's numbers.
pub fn print(rows: &[Table1Row]) {
    println!("Table 1: Single-SSD multi-version FTL performance (measured vs paper)");
    println!(
        "{:>5} {:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "get%", "ftl", "kIOPS", "(paper)", "get us", "(paper)", "put us", "(paper)"
    );
    for r in rows {
        let paper = PAPER_TABLE1
            .iter()
            .find(|p| p.0 == r.get_pct)
            .expect("paper row");
        let (pk, pg, pp) = if r.ftl == "VFTL" {
            (paper.1, paper.3, paper.5)
        } else {
            (paper.2, paper.4, paper.6)
        };
        println!(
            "{:>5} {:>6} | {:>10.0} {:>10.0} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            r.get_pct, r.ftl, r.kiops, pk, r.get_us, pg, r.put_us, pp
        );
    }
}
