//! Perf baselines for the hot paths the perfkit pass touched: the
//! validate loop, batch replication flush, and the FTL read path, plus
//! end-to-end wall-clock for two representative suites.
//!
//! Every bench reports two kinds of numbers, kept strictly apart:
//!
//! - **deterministic** counters — iteration counts, verdict/result
//!   checksums, and simulator task-poll counts. Byte-stable for a given
//!   seed, so CI can diff them across runs and catch a behavior change
//!   masquerading as a perf delta.
//! - **timing** fields — wall-clock nanoseconds and derived rates
//!   (events/sec, ns/op). Machine- and load-dependent; excluded from the
//!   byte-stability contract and omitted entirely in deterministic-only
//!   mode so two runs of the same build can be `cmp`'d.
//!
//! With the `count-allocs` feature (and `repro_perf`'s counting global
//! allocator) each bench also reports the allocation count and bytes it
//! drove through the allocator — deterministic for a single-threaded
//! bench, so allocation regressions diff like event counts. The suite
//! timings honor the `--threads`/`PERF_THREADS` knob; allocation counts
//! are only byte-stable at `--threads 1`.

use std::time::{Duration, Instant};

use flashsim::{Backend, BackendKind, Key, NandConfig};
use milana::msg::{TxnId, TxnRecord, TxnStatus};
use milana::table::TxnTable;
use obskit::Json;
use perfkit::FastMap;
use simkit::Sim;
use timesync::{ClientId, Timestamp, Version};

use crate::common::Scale;

/// One microbench result. Deterministic counters and timing fields live
/// in separate JSON sub-objects (see the module docs).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name (stable identifier).
    pub name: &'static str,
    /// Operations executed (deterministic).
    pub iters: u64,
    /// Fold of the per-op outcomes — a behavior checksum (deterministic).
    pub checksum: u64,
    /// Simulator task polls driven, 0 for pure-CPU benches (deterministic).
    pub sim_polls: u64,
    /// Allocations and bytes during the bench (deterministic at
    /// `--threads 1`); present only with `count-allocs`.
    pub allocs: Option<(u64, u64)>,
    /// Wall-clock for the measured loop (timing).
    pub wall: Duration,
}

impl BenchResult {
    /// Nanoseconds per operation (timing).
    pub fn ns_per_iter(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Operations per second (timing). For sim-driven benches the more
    /// interesting rate is [`BenchResult::events_per_sec`].
    pub fn iters_per_sec(&self) -> f64 {
        self.iters as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulator task polls per second of wall clock (timing); 0 for
    /// pure-CPU benches.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_polls as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Wall-clock for one end-to-end suite run (timing) plus a deterministic
/// shape summary proving the run did the same work.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Suite name (stable identifier).
    pub name: &'static str,
    /// Points/outcomes produced (deterministic).
    pub points: u64,
    /// Total commits across the suite (deterministic).
    pub commits: u64,
    /// Allocations and bytes (deterministic at `--threads 1`); present
    /// only with `count-allocs`.
    pub allocs: Option<(u64, u64)>,
    /// Wall-clock for the suite (timing).
    pub wall: Duration,
}

/// Everything `repro_perf` measures.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Seed the microbenches derive from.
    pub seed: u64,
    /// Worker threads the suite runs used.
    pub threads: usize,
    /// Microbench results.
    pub benches: Vec<BenchResult>,
    /// End-to-end suite timings.
    pub suites: Vec<SuiteResult>,
}

fn key(i: u64) -> Key {
    Key::from(i)
}

fn version(ts: u64) -> Version {
    Version::new(Timestamp(ts), ClientId(0))
}

fn txid(seq: u64) -> TxnId {
    TxnId {
        client: ClientId(1),
        seq,
    }
}

/// Reads the allocation counters when `count-allocs` is on.
fn alloc_counts() -> Option<(u64, u64)> {
    #[cfg(feature = "count-allocs")]
    {
        let c = perfkit::alloc::AllocCounts::now();
        Some((c.allocations, c.bytes))
    }
    #[cfg(not(feature = "count-allocs"))]
    None
}

fn alloc_delta(before: Option<(u64, u64)>) -> Option<(u64, u64)> {
    let (a0, b0) = before?;
    let (a1, b1) = alloc_counts()?;
    Some((a1.saturating_sub(a0), b1.saturating_sub(b0)))
}

/// Validate hot loop: Algorithm 1 against a populated transaction table,
/// mixing clean validations with every abort class. Pure CPU — this is
/// the FastMap + scratch-reuse path the optimization pass targeted.
pub fn bench_validate(scale: Scale, seed: u64) -> BenchResult {
    let (prepared, iters) = match scale {
        Scale::Quick => (256u64, 200_000u64),
        Scale::Full => (1_024, 2_000_000),
    };
    let keyspace = prepared * 8;

    // Table population: `prepared` records each holding 4 keys, plus
    // read-timestamp metadata over a disjoint stripe.
    let mut table = TxnTable::new();
    for p in 0..prepared {
        let base = p * 4;
        table.prepare(TxnRecord {
            txid: txid(p),
            ts_commit: Timestamp(1_000 + p),
            writes: (0..4)
                .map(|j| (key(base + j), flashsim::value(&b"v"[..])))
                .collect::<Vec<_>>()
                .into(),
            participants: vec![semel::shard::ShardId(0)].into(),
            status: TxnStatus::Prepared,
        });
    }
    for i in 0..keyspace / 2 {
        table.note_read(&key(prepared * 4 + i), Timestamp(500 + i));
    }
    let committed: FastMap<Key, Version> = (0..keyspace)
        .map(|i| (key(i), version(100 + i % 50)))
        .collect();

    // Pre-built read/write sets, rotated by a seeded LCG so the verdict
    // mix is fixed per seed but exercises success and every abort arm.
    let mut rng = seed | 1;
    let mut next = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    type ValidateSet = (Vec<(Key, Version)>, Vec<Key>, Timestamp);
    let sets: Vec<ValidateSet> = (0..512)
        .map(|_| {
            let r = next() % keyspace;
            let r2 = (r + 1) % keyspace;
            let w = next() % keyspace;
            let ts = 900 + next() % 1_200;
            // One in eight read sets carries a stale version, so the loop
            // sees clean validations, ReadStale, ReadSawPrepared (keys in
            // the prepared range), and WriteAfterRead (writes under the
            // read-timestamp stripe) in a seed-dependent mix.
            let v2 = if next().is_multiple_of(8) {
                version(1)
            } else {
                version(100 + r2 % 50)
            };
            (
                vec![(key(r), version(100 + r % 50)), (key(r2), v2)],
                vec![key(w), key((w + 3) % keyspace)],
                Timestamp(ts),
            )
        })
        .collect();

    let before = alloc_counts();
    let start = Instant::now();
    let mut checksum = 0u64;
    for i in 0..iters {
        let (reads, writes, ts) = &sets[(i % sets.len() as u64) as usize];
        let verdict = table.validate(reads, writes, *ts, |k| committed.get(k).copied());
        // Fold the verdict discriminant so any behavior change shows up.
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(if verdict.is_success() { 1 } else { 2 });
    }
    let wall = start.elapsed();
    BenchResult {
        name: "validate",
        iters,
        checksum,
        sim_polls: 0,
        allocs: alloc_delta(before),
        wall,
    }
}

/// Batch replication flush: drive a [`batchkit::Batcher`] through full
/// size-flushes and deadline flushes inside one deterministic sim. The
/// flush fn echoes item payloads, so the checksum proves item order and
/// batch boundaries.
pub fn bench_batch_flush(scale: Scale, seed: u64) -> BenchResult {
    let items: u64 = match scale {
        Scale::Quick => 40_000,
        Scale::Full => 400_000,
    };
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let before = alloc_counts();
    let start = Instant::now();
    let batcher: batchkit::Batcher<u64, u64> = batchkit::Batcher::new(
        &h,
        simkit::net::NodeId(0),
        "perf",
        batchkit::BatchConfig {
            batch_max: 8,
            batch_deadline: Duration::from_micros(100),
        },
        obskit::Obs::new(),
        |batch: Vec<u64>| async move { batch.into_iter().map(|x| x.wrapping_mul(3)).collect() },
    );
    let b = batcher.clone();
    let checksum = sim.block_on(async move {
        let mut sum = 0u64;
        let mut n = 0u64;
        while n < items {
            // Seven awaited in a burst (size flush at 8 with the eighth),
            // then one lone submit that rides the deadline timer.
            let burst: Vec<_> = (0..8).map(|j| b.submit(n + j)).collect();
            for fut in burst {
                sum = sum.wrapping_add(fut.await.unwrap_or(0));
            }
            n += 8;
            if n.is_multiple_of(1_024) {
                sum = sum.wrapping_add(b.submit(n).await.unwrap_or(0));
                n += 1;
            }
        }
        sum
    });
    let wall = start.elapsed();
    BenchResult {
        name: "batch_flush",
        iters: items,
        checksum,
        sim_polls: h.polls(),
        allocs: alloc_delta(before),
        wall,
    }
}

/// FTL read path: snapshot (`get_at`) and latest reads against a
/// preloaded MFTL device — the mapping-table lookup the FastMap pass
/// rewrote, plus the simulated NAND read pipeline.
pub fn bench_ftl_read(scale: Scale, seed: u64) -> BenchResult {
    let (keys, reads) = match scale {
        Scale::Quick => (2_000u64, 20_000u64),
        Scale::Full => (8_000, 200_000),
    };
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let backend = Backend::new(BackendKind::Mftl, &h, NandConfig::default());
    for i in 0..keys {
        backend.bulk_load(
            key(i),
            flashsim::value(&b"payload"[..]),
            version(10 + i % 7),
        );
    }
    backend.finish_load();
    let before = alloc_counts();
    let start = Instant::now();
    let checksum = sim.block_on(async move {
        let mut sum = 0u64;
        for i in 0..reads {
            let k = key((i * 2_654_435_761) % keys);
            let got = if i % 4 == 0 {
                backend.get_at(&k, Timestamp(1_000)).await
            } else {
                backend.get_latest(&k).await
            };
            if let Ok(vv) = got {
                sum = sum
                    .wrapping_mul(31)
                    .wrapping_add(vv.version.ts.0)
                    .wrapping_add(vv.value.len() as u64);
            }
        }
        sum
    });
    let wall = start.elapsed();
    BenchResult {
        name: "ftl_read",
        iters: reads,
        checksum,
        sim_polls: h.polls(),
        allocs: alloc_delta(before),
        wall,
    }
}

/// End-to-end wall-clock for the group-commit sweep (honors `--threads`).
pub fn suite_batch(scale: Scale, seed: u64) -> SuiteResult {
    let cfg = crate::batch::BatchSweepConfig::for_scale(scale);
    let before = alloc_counts();
    let start = Instant::now();
    let points = crate::batch::run(&cfg, seed);
    let wall = start.elapsed();
    SuiteResult {
        name: "batch",
        points: points.len() as u64,
        commits: points.iter().map(|p| p.commits).sum(),
        allocs: alloc_delta(before),
        wall,
    }
}

/// End-to-end wall-clock for the read-scaling suite (honors `--threads`).
pub fn suite_readscale(scale: Scale, seed: u64) -> SuiteResult {
    let cfg = crate::readscale::ReadScaleConfig::for_scale(scale);
    let before = alloc_counts();
    let start = Instant::now();
    let outcome = crate::readscale::run(&cfg, seed);
    let wall = start.elapsed();
    SuiteResult {
        name: "readscale",
        points: outcome.points.len() as u64,
        commits: outcome.points.iter().map(|p| p.commits).sum(),
        allocs: alloc_delta(before),
        wall,
    }
}

/// Runs every microbench and suite timer.
pub fn run(scale: Scale, seed: u64) -> PerfReport {
    let benches = vec![
        bench_validate(scale, seed),
        bench_batch_flush(scale, seed),
        bench_ftl_read(scale, seed),
    ];
    let suites = vec![suite_batch(scale, seed), suite_readscale(scale, seed)];
    PerfReport {
        seed,
        threads: perfkit::pool::threads(),
        benches,
        suites,
    }
}

fn alloc_json(allocs: Option<(u64, u64)>, obj: Json) -> Json {
    match allocs {
        Some((n, bytes)) => obj
            .field("allocations", Json::U64(n))
            .field("alloc_bytes", Json::U64(bytes)),
        None => obj,
    }
}

/// Renders the report. With `timing: false` every machine-dependent
/// field is omitted, so two runs of the same build produce byte-identical
/// documents (the CI perf-smoke contract).
pub fn to_json(report: &PerfReport, timing: bool) -> Json {
    let benches = Json::arr(report.benches.iter().map(|b| {
        let det = alloc_json(
            b.allocs,
            Json::obj()
                .field("iters", Json::U64(b.iters))
                .field("checksum", Json::U64(b.checksum))
                .field("sim_polls", Json::U64(b.sim_polls)),
        );
        let obj = Json::obj()
            .field("name", Json::str(b.name))
            .field("deterministic", det);
        if timing {
            obj.field(
                "timing",
                Json::obj()
                    .field("wall_ns", Json::U64(b.wall.as_nanos() as u64))
                    .field("ns_per_iter", Json::F64(b.ns_per_iter()))
                    .field("iters_per_sec", Json::F64(b.iters_per_sec()))
                    .field("sim_events_per_sec", Json::F64(b.events_per_sec())),
            )
        } else {
            obj
        }
    }));
    let suites = Json::arr(report.suites.iter().map(|s| {
        let det = alloc_json(
            s.allocs,
            Json::obj()
                .field("points", Json::U64(s.points))
                .field("commits", Json::U64(s.commits)),
        );
        let obj = Json::obj()
            .field("name", Json::str(s.name))
            .field("deterministic", det);
        if timing {
            obj.field(
                "timing",
                Json::obj().field("wall_ns", Json::U64(s.wall.as_nanos() as u64)),
            )
        } else {
            obj
        }
    }));
    Json::obj()
        .field("seed", Json::U64(report.seed))
        .field("threads", Json::U64(report.threads as u64))
        .field("count_allocs", Json::Bool(cfg!(feature = "count-allocs")))
        .field("benches", benches)
        .field("suites", suites)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Microbenches only: the end-to-end suites are exercised (and
    // byte-checked) by their own determinism tests, and running them
    // twice here would dominate the debug-profile test wall-clock.
    fn micro_report(seed: u64) -> PerfReport {
        let mut benches = vec![
            bench_validate(Scale::Quick, seed),
            bench_batch_flush(Scale::Quick, seed),
            bench_ftl_read(Scale::Quick, seed),
        ];
        // Alloc counts are per-process (the CI contract compares two
        // *processes*); in-process reruns see allocator warm-up skew.
        for b in &mut benches {
            b.allocs = None;
        }
        PerfReport {
            seed,
            threads: 1,
            benches,
            suites: vec![],
        }
    }

    #[test]
    fn deterministic_fields_are_stable_across_runs() {
        let a = micro_report(42);
        let b = micro_report(42);
        assert_eq!(
            to_json(&a, false).to_pretty_string(),
            to_json(&b, false).to_pretty_string(),
            "deterministic-only documents must match byte for byte"
        );
    }

    #[test]
    fn checksums_depend_on_seed() {
        let a = bench_validate(Scale::Quick, 1);
        let b = bench_validate(Scale::Quick, 2);
        assert_eq!(a.iters, b.iters);
        assert_ne!(a.checksum, b.checksum, "seed must steer the verdict mix");
    }

    #[test]
    fn sim_benches_report_polls() {
        let f = bench_ftl_read(Scale::Quick, 7);
        assert!(f.sim_polls > 0, "sim bench must drive the executor");
        let v = bench_validate(Scale::Quick, 7);
        assert_eq!(v.sim_polls, 0, "pure-CPU bench must not touch a sim");
    }
}
