//! # bench — experiment reproductions for every table and figure
//!
//! One module per evaluation artifact of the paper:
//!
//! | Artifact | Module | Binary |
//! |---|---|---|
//! | Table 1 (FTL throughput/latency) | [`table1`] | `repro_table1` |
//! | Figure 6 (aborts vs clients, SFTL/MFTL) | [`fig6`] | `repro_fig6` |
//! | Figure 7 (aborts vs α, PTP/NTP × backend) | [`fig7`] | `repro_fig7` |
//! | Figure 8 (latency vs throughput, ±LV) | [`fig8`] | `repro_fig8` |
//! | Figure 9 (MILANA vs Centiman LV) | [`fig9`] | `repro_fig9` |
//! | Group commit / RPC coalescing | [`batch`] | `repro_batch` |
//! | Elastic resharding under load | [`rebalance`] | `repro_rebalance` |
//! | Read scaling (backup snapshot reads) | [`readscale`] | `repro_readscale` |
//! | Cold-restart recovery (mount scan + MTTR) | [`recovery`] | `repro_recovery` |
//! | Clock-fault robustness (skew, fencing, ε bound) | [`clockfault`] | `repro_clockfault` |
//!
//! Ablations of the paper's design choices live in [`ablations`]
//! (`repro_ablations`): relaxed vs ordered replication, the clock-precision
//! spectrum, and DFTL-style demand-paged mapping.
//!
//! `repro_all` runs everything. Set `REPRO_SCALE=full` for larger,
//! slower, closer-to-paper runs. Criterion benches (`cargo bench`) cover
//! the per-operation costs underlying each experiment.
//!
//! Every binary also accepts `--json <path>` and then writes its measured
//! points as a deterministic JSON artifact (see [`artifact`]): same seed,
//! same scale → byte-identical file.

pub mod ablations;
pub mod artifact;
pub mod batch;
pub mod clockfault;
pub mod common;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod readscale;
pub mod rebalance;
pub mod recovery;
pub mod table1;
