//! Figure 9 — MILANA's local validation vs Centiman's watermark-based
//! local validation.
//!
//! Paper setup (§5.3): 3 shards on SSD (MFTL), no replication, 5 client VMs
//! × 6 Retwis instances (30 total), 75 % read-only mix, watermarks
//! disseminated every 1,000 transactions, PTP software timestamping.
//!
//! Expected shape: comparable throughput at low contention; as α grows,
//! Centiman's local-validation hit rate collapses (89 % → 25 % in the
//! paper) and its throughput drops ~20 % below MILANA, which locally
//! validates **all** read-only transactions.

use std::time::Duration;

use flashsim::{BackendKind, NandConfig};
use milana::centiman::{CentimanClient, CentimanConfig, Validator};
use milana::cluster::MilanaClusterConfig;
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use semel::cluster::{ClusterConfig, SemelCluster};
use simkit::net::{Addr, NodeId};
use simkit::Sim;
use timesync::{ClientId, ClockSpec};

use crate::common::{run_retwis_generic, run_retwis_on_milana, Scale};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// "MILANA" or "Centiman".
    pub system: &'static str,
    /// Contention parameter.
    pub alpha: f64,
    /// Committed transactions per virtual second.
    pub throughput: f64,
    /// Fraction of read-only transactions validated locally.
    pub local_fraction: f64,
    /// Abort rate.
    pub abort_rate: f64,
    /// Full workload counters for the run, frozen so points can cross
    /// the worker-pool boundary.
    pub stats: obskit::FrozenTxnStats,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Contention values.
    pub alphas: Vec<f64>,
    /// Client VMs.
    pub client_vms: u32,
    /// Instances per VM (paper: 6).
    pub instances_per_vm: u32,
    /// Keyspace.
    pub keyspace: u64,
    /// Watermark dissemination period in decided transactions (paper: 1000).
    pub report_every: u64,
    /// Warm-up per run.
    pub warmup: Duration,
    /// Measurement window.
    pub measure: Duration,
}

impl Fig9Config {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> Fig9Config {
        match scale {
            Scale::Quick => Fig9Config {
                alphas: vec![0.4, 0.6, 0.8],
                client_vms: 5,
                instances_per_vm: 6,
                keyspace: 12_000,
                report_every: 200,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(800),
            },
            Scale::Full => Fig9Config {
                alphas: vec![0.4, 0.5, 0.6, 0.7, 0.8],
                client_vms: 5,
                instances_per_vm: 6,
                keyspace: 60_000,
                report_every: 1000,
                warmup: Duration::from_millis(500),
                measure: Duration::from_secs(3),
            },
        }
    }

    fn nand(&self) -> NandConfig {
        NandConfig {
            channels: 8,
            queue_depth: 128,
            ..NandConfig::default()
        }
        .sized_for(self.keyspace / 3, 512, 0.08)
    }
}

fn run_milana_point(alpha: f64, cfg: &Fig9Config, seed: u64) -> Fig9Point {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let cluster = milana::cluster::MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: 3,
            replicas: 1, // no replication, matching Centiman's validators
            clients: cfg.client_vms,
            backend: BackendKind::Mftl,
            nand: cfg.nand(),
            clock: ClockSpec::ptp_software(),
            preload_keys: cfg.keyspace,
            value_size: 472,
            // ExoGENI-style VM networking (~300 us RTT).
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(150),
                jitter_std: Duration::from_micros(30),
                ..simkit::net::LatencyConfig::default()
            },
            tuning: milana::server::ServerTuning {
                obs: crate::common::run_obs(),
                ..Default::default()
            },
            ..MilanaClusterConfig::default()
        },
    );
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        WorkloadConfig {
            mix: Mix::retwis_read_heavy(),
            keyspace: cfg.keyspace,
            zipf_alpha: alpha,
            value_size: 472,
            max_retries: 1000,
        },
        cfg.instances_per_vm,
        cfg.warmup,
        cfg.measure,
    );
    let ro_commits = outcome.local_validated.max(1);
    Fig9Point {
        system: "MILANA",
        alpha,
        throughput: outcome.stats.throughput(outcome.elapsed),
        // MILANA validates every read-only transaction locally by design.
        local_fraction: if ro_commits > 0 { 1.0 } else { 0.0 },
        abort_rate: outcome.stats.abort_rate(),
        stats: outcome.stats.freeze(),
    }
}

fn run_centiman_point(alpha: f64, cfg: &Fig9Config, seed: u64) -> Fig9Point {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let clients_total = cfg.client_vms;
    let storage = SemelCluster::build(
        &h,
        ClusterConfig {
            shards: 3,
            replicas: 1,
            clients: clients_total,
            backend: BackendKind::Mftl,
            nand: cfg.nand(),
            clock: ClockSpec::ptp_software(),
            preload_keys: cfg.keyspace,
            value_size: 472,
            // ExoGENI-style VM networking (~300 us RTT).
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(150),
                jitter_std: Duration::from_micros(30),
                ..simkit::net::LatencyConfig::default()
            },
            obs: crate::common::run_obs(),
            ..ClusterConfig::default()
        },
    );
    let client_ids: Vec<ClientId> = (0..clients_total).map(ClientId).collect();
    // One validator per shard, colocated with its storage server (paper:
    // "these validators run on the storage VMs").
    let validators: Vec<Addr> = (0..3u32)
        .map(|s| {
            let node = storage
                .map
                .borrow()
                .group(semel::shard::ShardId(s))
                .primary
                .node;
            let addr = Addr::new(node, 8);
            Validator::spawn(&h, addr, client_ids.clone());
            addr
        })
        .collect();
    let cents: Vec<CentimanClient> = (0..clients_total)
        .map(|i| {
            CentimanClient::new(
                &h,
                NodeId(10_000 + i),
                storage.clients[i as usize].clone(),
                validators.clone(),
                storage.map.clone(),
                CentimanConfig {
                    report_every: cfg.report_every,
                    obs: crate::common::run_obs(),
                    ..CentimanConfig::default()
                },
            )
        })
        .collect();
    let (stats, elapsed) = run_retwis_generic(
        &mut sim,
        &cents,
        WorkloadConfig {
            mix: Mix::retwis_read_heavy(),
            keyspace: cfg.keyspace,
            zipf_alpha: alpha,
            value_size: 472,
            max_retries: 1000,
        },
        cfg.instances_per_vm,
        cfg.warmup,
        cfg.measure,
    );
    let (mut local, mut remote) = (0u64, 0u64);
    for c in &cents {
        let s = c.stats();
        local += s.local_validated;
        remote += s.remote_validated;
    }
    Fig9Point {
        system: "Centiman",
        alpha,
        throughput: stats.throughput(elapsed),
        local_fraction: if local + remote == 0 {
            0.0
        } else {
            local as f64 / (local + remote) as f64
        },
        abort_rate: stats.abort_rate(),
        stats: stats.freeze(),
    }
}

/// Runs the full comparison on the `perfkit` worker pool. Each (system,
/// α) pair is one unit of work so the two systems' sims stay fully
/// independent; results merge back in sweep order.
pub fn run(cfg: &Fig9Config) -> Vec<Fig9Point> {
    let mut items = Vec::new();
    for &alpha in &cfg.alphas {
        items.push(("MILANA", alpha));
        items.push(("Centiman", alpha));
    }
    perfkit::pool::run_ordered_auto(items, |(system, alpha)| {
        let seed = 900 + (alpha * 100.0) as u64;
        match system {
            "MILANA" => run_milana_point(alpha, cfg, seed),
            _ => run_centiman_point(alpha, cfg, seed),
        }
    })
}

/// Deterministic JSON payload: one object per (system, α) point with the
/// shared abort-reason taxonomy, so MILANA and Centiman aborts compare
/// class-for-class.
pub fn to_json(cfg: &Fig9Config, points: &[Fig9Point]) -> Json {
    Json::obj()
        .field(
            "alphas",
            Json::arr(cfg.alphas.iter().map(|&a| Json::F64(a))),
        )
        .field("report_every", Json::U64(cfg.report_every))
        .field(
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj()
                    .field("system", Json::str(p.system))
                    .field("alpha", Json::F64(p.alpha))
                    .field("throughput", Json::F64(p.throughput))
                    .field("local_fraction", Json::F64(p.local_fraction))
                    .field("abort_rate", Json::F64(p.abort_rate))
                    .field("abort_reasons", p.stats.abort_reasons_json())
                    .field("latency_ns", p.stats.latency.summary_json())
            })),
        )
}

/// Prints throughput and local-validation series.
pub fn print(cfg: &Fig9Config, points: &[Fig9Point]) {
    println!("Figure 9: MILANA vs Centiman local validation — 3 MFTL shards, 75% read-only");
    println!(
        "{:>10} {:>6} {:>12} {:>10} {:>9}",
        "system", "alpha", "ktxn/s", "local %", "abort %"
    );
    for p in points {
        println!(
            "{:>10} {:>6} {:>12.1} {:>10.1} {:>9.2}",
            p.system,
            p.alpha,
            p.throughput / 1e3,
            p.local_fraction * 100.0,
            p.abort_rate * 100.0
        );
    }
    let lo = cfg.alphas.first().copied().unwrap_or(0.4);
    let hi = cfg.alphas.last().copied().unwrap_or(0.8);
    for a in [lo, hi] {
        let find = |sys: &str| points.iter().find(|p| p.system == sys && p.alpha == a);
        if let (Some(m), Some(c)) = (find("MILANA"), find("Centiman")) {
            println!(
                "  alpha={a}: MILANA/Centiman throughput = {:.2} (paper: ~1.0 low contention, ~1.2 high); \
                 Centiman local = {:.0}% (paper: 89% at 0.4 -> 25% at 0.8)",
                m.throughput / c.throughput,
                c.local_fraction * 100.0
            );
        }
    }
}
