//! Figure 6 — transaction abort rate vs number of clients, single-version
//! (SFTL) vs multi-version (MFTL) storage.
//!
//! Paper setup (§5.2): one VM hosting the storage layer and a varying
//! number of clients, *zero clock skew* (single machine), Retwis Table-2
//! mix, one outstanding transaction per client, aborted transactions
//! retried with the same keys, contention parameter α swept.
//!
//! Expected shape: abort rates climb with clients and α; MFTL stays well
//! below SFTL because tardy read-only transactions can still read their
//! snapshot and commit instead of aborting.

use std::time::Duration;

use flashsim::{BackendKind, NandConfig};
use milana::cluster::MilanaClusterConfig;
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use simkit::Sim;
use timesync::ClockSpec;

use crate::common::{run_retwis_on_milana, Scale};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Storage backend ("SFTL"/"MFTL").
    pub ftl: &'static str,
    /// Contention parameter.
    pub alpha: f64,
    /// Number of clients.
    pub clients: u32,
    /// Abort rate (aborted attempts / all attempts).
    pub abort_rate: f64,
    /// Workload counters, merged across the averaged seeds (frozen so
    /// points can be returned from worker threads).
    pub stats: obskit::FrozenTxnStats,
}

/// Parameters for the sweep.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Client counts on the x-axis.
    pub client_counts: Vec<u32>,
    /// Contention series.
    pub alphas: Vec<f64>,
    /// Keyspace size.
    pub keyspace: u64,
    /// Warm-up per run.
    pub warmup: Duration,
    /// Measurement window per run.
    pub measure: Duration,
}

impl Fig6Config {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> Fig6Config {
        match scale {
            Scale::Quick => Fig6Config {
                client_counts: vec![4, 8, 12, 16, 20],
                alphas: vec![0.6, 0.8],
                keyspace: 5_000,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(1000),
            },
            Scale::Full => Fig6Config {
                client_counts: vec![4, 8, 12, 16, 20, 24],
                alphas: vec![0.6, 0.7, 0.8],
                keyspace: 20_000,
                warmup: Duration::from_millis(500),
                measure: Duration::from_secs(5),
            },
        }
    }
}

fn run_point(
    kind: BackendKind,
    alpha: f64,
    clients: u32,
    cfg: &Fig6Config,
    seed: u64,
) -> Fig6Point {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    // SFTL stores one tuple per logical page; multi-version backends pack
    // eight 512 B tuples per 4 KB page and need version headroom.
    let nand = match kind {
        BackendKind::Sftl => NandConfig {
            channels: 8,
            queue_depth: 128,
            ..NandConfig::default()
        }
        .sized_for(cfg.keyspace, 4096, 0.5),
        _ => NandConfig {
            channels: 8,
            queue_depth: 128,
            ..NandConfig::default()
        }
        .sized_for(cfg.keyspace, 512, 0.08),
    };
    let cluster = milana::cluster::MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: 1,
            replicas: 1, // single machine: storage layer without replication
            clients,
            backend: kind,
            nand,
            clock: ClockSpec::perfect(), // no clock skew on one VM
            preload_keys: cfg.keyspace,
            value_size: 472,
            // Single-machine deployment: loopback-ish latencies.
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(5),
                jitter_std: Duration::from_micros(1),
                ..simkit::net::LatencyConfig::default()
            },
            tuning: milana::server::ServerTuning {
                obs: crate::common::run_obs(),
                ..Default::default()
            },
            ..MilanaClusterConfig::default()
        },
    );
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        WorkloadConfig {
            mix: Mix::retwis(),
            keyspace: cfg.keyspace,
            zipf_alpha: alpha,
            value_size: 472,
            max_retries: 1000,
        },
        1, // one outstanding transaction per client (paper)
        cfg.warmup,
        cfg.measure,
    );
    Fig6Point {
        ftl: match kind {
            BackendKind::Sftl => "SFTL",
            _ => "MFTL",
        },
        alpha,
        clients,
        abort_rate: outcome.stats.abort_rate(),
        stats: outcome.stats.freeze(),
    }
}

/// Runs the full sweep, averaging each point over three seeds (the no-wait
/// retry policy makes single runs noisy on the single-version backend).
/// Points run on the `perfkit` worker pool (one sim per thread); the
/// three averaged seeds stay inside one worker so each point is a single
/// unit of deterministic work, and results merge back in sweep order.
pub fn run(cfg: &Fig6Config) -> Vec<Fig6Point> {
    let mut items = Vec::new();
    for kind in [BackendKind::Sftl, BackendKind::Mftl] {
        for &alpha in &cfg.alphas {
            for &clients in &cfg.client_counts {
                items.push((kind, alpha, clients));
            }
        }
    }
    perfkit::pool::run_ordered_auto(items, |(kind, alpha, clients)| {
        let mut acc = 0.0;
        let merged = obskit::TxnStats::new();
        const SEEDS: u64 = 3;
        for r in 0..SEEDS {
            let seed = 600 + (alpha * 100.0) as u64 + clients as u64 + r * 7919;
            let p = run_point(kind, alpha, clients, cfg, seed);
            acc += p.abort_rate;
            // Re-inflate is unnecessary: fold the frozen per-seed stats
            // into a live accumulator, then freeze once for the point.
            merged.merge_frozen(&p.stats);
        }
        Fig6Point {
            ftl: match kind {
                BackendKind::Sftl => "SFTL",
                _ => "MFTL",
            },
            alpha,
            clients,
            abort_rate: acc / SEEDS as f64,
            stats: merged.freeze(),
        }
    })
}

/// Deterministic JSON payload: one object per (FTL, α, clients) point
/// with its abort-reason breakdown and latency percentiles.
pub fn to_json(cfg: &Fig6Config, points: &[Fig6Point]) -> Json {
    Json::obj()
        .field(
            "client_counts",
            Json::arr(cfg.client_counts.iter().map(|&c| Json::U64(c as u64))),
        )
        .field(
            "alphas",
            Json::arr(cfg.alphas.iter().map(|&a| Json::F64(a))),
        )
        .field(
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj()
                    .field("ftl", Json::str(p.ftl))
                    .field("alpha", Json::F64(p.alpha))
                    .field("clients", Json::U64(p.clients as u64))
                    .field("abort_rate", Json::F64(p.abort_rate))
                    .field("abort_reasons", p.stats.abort_reasons_json())
                    .field("latency_ns", p.stats.latency.summary_json())
            })),
        )
}

/// Prints the sweep as series over client counts.
pub fn print(cfg: &Fig6Config, points: &[Fig6Point]) {
    println!("Figure 6: abort rate (%) vs clients — SFTL vs MFTL, zero skew");
    print!("{:>14}", "series\\clients");
    for c in &cfg.client_counts {
        print!(" {c:>7}");
    }
    println!();
    for ftl in ["SFTL", "MFTL"] {
        for &alpha in &cfg.alphas {
            print!("{:>10} a={alpha:<3}", ftl);
            for &clients in &cfg.client_counts {
                let p = points
                    .iter()
                    .find(|p| p.ftl == ftl && p.alpha == alpha && p.clients == clients)
                    .expect("point");
                print!(" {:>7.2}", p.abort_rate * 100.0);
            }
            println!();
        }
    }
    println!("(paper: MFTL aborts well below SFTL at every client count; gap widens with α)");
}
