//! Regenerates Figure 7 (abort rate vs contention, PTP vs NTP, by backend).

use bench::common::Scale;
use bench::fig7;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 7 at {scale:?} scale ...");
    let cfg = fig7::Fig7Config::for_scale(scale);
    let points = fig7::run(&cfg);
    fig7::print(&cfg, &points);
    bench::artifact::maybe_write("fig7", scale, fig7::to_json(&cfg, &points));
    bench::common::maybe_dump_trace();
}
