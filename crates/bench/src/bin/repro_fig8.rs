//! Regenerates Figure 8 (latency vs throughput, with/without local validation).

use bench::common::Scale;
use bench::fig8;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 8 at {scale:?} scale ...");
    let cfg = fig8::Fig8Config::for_scale(scale);
    let points = fig8::run(&cfg);
    fig8::print(&cfg, &points);
    bench::artifact::maybe_write("fig8", scale, fig8::to_json(&cfg, &points));
    bench::common::maybe_dump_trace();
}
