//! Cold-restart recovery reproduction: mount-scan time and MTTR vs. store
//! size, plus a power-fail fault campaign with durability checking.
//!
//! ```text
//! repro_recovery [--seed S] [--inject durability-skip] [--json PATH] [--threads N]
//! ```
//!
//! - `--seed S` fixes the simulation seed (default 1). The same seed and
//!   scale produce a byte-identical `--json` artifact.
//! - `--inject durability-skip` flips the seeded fraud — cold restarts
//!   adopt the mounted floor and skip anti-entropy catch-up. The sweep's
//!   durability audit and the campaign's checker must both catch it, and
//!   the exit code stays 1 (a clean exit means the checks are blind).
//! - `--json PATH` writes the byte-stable artifact.
//!
//! Exits non-zero when an honest run loses an acked write (or an injected
//! fraud goes undetected).

use bench::common::Scale;
use bench::recovery::{self, RecoveryConfig};

fn main() {
    let scale = Scale::from_env();
    let mut cfg = RecoveryConfig::for_scale(scale);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        match arg.as_str() {
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed"),
            "--inject" => match take("--inject").as_str() {
                "durability-skip" => cfg.inject_durability_skip = true,
                what => panic!("unknown --inject {what}"),
            },
            "--json" => {
                take("--json");
            }
            "--threads" => {
                take("--threads");
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                if !other.starts_with("--json=") {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }

    eprintln!(
        "recovery: {} store size(s), {} campaign fault(s), seed {}{} ...",
        cfg.store_sizes.len(),
        cfg.campaign_faults,
        cfg.seed,
        if cfg.inject_durability_skip {
            " [durability-skip injected]"
        } else {
            ""
        }
    );
    let trials = recovery::run(&cfg);
    let campaign = recovery::run_powerfail_campaign(&cfg);
    recovery::print(&cfg, &trials, &campaign);

    bench::artifact::maybe_write(
        "recovery",
        scale,
        recovery::to_json(&cfg, &trials, &campaign),
    );
    if cfg.inject_durability_skip {
        // Mirror repro_chaos: a caught fraud exits 1 (CI inverts this
        // check), while a blind checker exits 0 and CI flags the miss.
        if recovery::ok(&cfg, &trials, &campaign) {
            std::process::exit(1);
        }
        eprintln!("durability checks missed the injected fraud");
        return;
    }
    if !recovery::ok(&cfg, &trials, &campaign) {
        std::process::exit(1);
    }
}
