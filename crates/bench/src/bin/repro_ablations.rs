//! Runs the design-choice ablations (replication ordering, clock
//! precision spectrum, mapping residency, packing window, open loop).

use bench::artifact;
use bench::common::Scale;
use obskit::Json;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running ablations at {scale:?} scale ...\n");
    let replication = bench::ablations::run_replication(scale);
    println!();
    let clocks = bench::ablations::run_clocks(scale);
    println!();
    let dftl = bench::ablations::run_dftl(scale);
    println!();
    let packing = bench::ablations::run_packing(scale);
    println!();
    let open_loop = bench::ablations::run_open_loop(scale);
    artifact::maybe_write(
        "ablations",
        scale,
        Json::obj()
            .field("replication", replication)
            .field("clocks", clocks)
            .field("dftl", dftl)
            .field("packing", packing)
            .field("open_loop", open_loop),
    );
    bench::common::maybe_dump_trace();
}
