//! Runs the three design-choice ablations (replication ordering, clock
//! precision spectrum, mapping residency).

use bench::ablations;
use bench::common::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running ablations at {scale:?} scale ...\n");
    ablations::run_replication(scale);
    println!();
    ablations::run_clocks(scale);
    println!();
    ablations::run_dftl(scale);
    println!();
    ablations::run_packing(scale);
    println!();
    ablations::run_open_loop(scale);
}
