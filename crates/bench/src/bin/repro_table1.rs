//! Regenerates Table 1 (single-SSD VFTL vs MFTL performance).

use bench::common::Scale;
use bench::table1;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Table 1 at {scale:?} scale (REPRO_SCALE=full for more) ...");
    let cfg = table1::Table1Config::for_scale(scale);
    let rows = table1::run(&cfg);
    table1::print(&rows);
    bench::artifact::maybe_write("table1", scale, table1::to_json(&rows));
    bench::common::maybe_dump_trace();
}
