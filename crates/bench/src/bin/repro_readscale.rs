//! Read-scaling reproduction: backup snapshot reads vs primary-only
//! routing. See [`bench::readscale`] for the experiment design and
//! acceptance checks.
//!
//! ```text
//! repro_readscale [--seed S] [--json PATH] [--threads N]
//! ```
//!
//! Exits non-zero on a failed check. With `--json PATH` the sweep is
//! exported as a byte-stable artifact: same seed, same scale →
//! identical file.

use bench::common::Scale;
use bench::{artifact, readscale};

fn main() {
    let scale = Scale::from_env();
    let mut seed = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed")
            }
            "--json" | "--threads" => {
                it.next();
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let cfg = readscale::ReadScaleConfig::for_scale(scale);
    eprintln!("read scaling: seed {seed}, routes + backup-reads chaos campaign ...");
    let out = readscale::run(&cfg, seed);
    readscale::print(&out);
    artifact::maybe_write("readscale", scale, readscale::to_json(&out));
    if !readscale::ok(&out) {
        std::process::exit(1);
    }
}
