//! Randomized fault campaigns with serializability checking.
//!
//! Runs N seeds × M faults of a contended counter workload under the
//! faultkit nemesis, audits conservation, and checks the recorded trace
//! for serializability, snapshot-read, and replication violations. The
//! same seed always reproduces the same campaign byte for byte.
//!
//! ```text
//! repro_chaos [--seed S]... [--seeds N] [--faults M] [--shards K] [--threads N]
//!             [--inject validation-skip|overload] [--json PATH] [--trace PATH]
//! ```
//!
//! - `--seed S` runs exactly seed S (repeatable); otherwise seeds `0..N`
//!   from `--seeds` (default 3, `REPRO_SCALE=full` → 8).
//! - `--faults M` faults per seed (default 50, full scale 200).
//! - `--inject validation-skip` disables Algorithm-1 read validation on
//!   every primary — a seeded bug the checker must catch (exit stays 1).
//! - `--inject overload` schedules only overload bursts, exercising the
//!   admission/retry plane (the run must still be clean).
//! - `--json PATH` writes the byte-stable campaign artifact.
//! - `--trace PATH` writes the full obskit trace (JSONL) of the first
//!   offending seed, or of the last seed when all are clean.
//!
//! Exits non-zero when any seed has a violation or a failed audit.

use bench::common::Scale;
use faultkit::{run_seed_with_trace, CampaignConfig, CampaignReport};

struct Args {
    seeds: Vec<u64>,
    faults: usize,
    shards: u32,
    inject: bool,
    overload: bool,
    trace: Option<std::path::PathBuf>,
}

fn parse_args(scale: Scale) -> Args {
    let (mut n_seeds, mut faults) = match scale {
        Scale::Quick => (3u64, 50usize),
        Scale::Full => (8, 200),
    };
    let mut explicit_seeds = Vec::new();
    let mut shards = 2u32;
    let mut inject = false;
    let mut overload = false;
    let mut trace = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        match arg.as_str() {
            "--seed" => explicit_seeds.push(take("--seed").parse().expect("--seed")),
            "--seeds" => n_seeds = take("--seeds").parse().expect("--seeds"),
            "--faults" => faults = take("--faults").parse().expect("--faults"),
            "--shards" => shards = take("--shards").parse().expect("--shards"),
            "--inject" => match take("--inject").as_str() {
                "validation-skip" => inject = true,
                "overload" => overload = true,
                what => panic!("unknown --inject {what}"),
            },
            "--json" => {
                take("--json");
            }
            "--threads" => {
                take("--threads");
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            "--trace" => trace = Some(take("--trace").into()),
            other => {
                if let Some(rest) = other.strip_prefix("--trace=") {
                    trace = Some(rest.into());
                } else if !other.starts_with("--json=") {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    let seeds = if explicit_seeds.is_empty() {
        (0..n_seeds).collect()
    } else {
        explicit_seeds
    };
    Args {
        seeds,
        faults,
        shards,
        inject,
        overload,
        trace,
    }
}

fn main() {
    let scale = Scale::from_env();
    let args = parse_args(scale);
    let cfg = CampaignConfig {
        seeds: args.seeds.clone(),
        faults: args.faults,
        shards: args.shards,
        skip_validation: args.inject,
        overload_only: args.overload,
        ..CampaignConfig::default()
    };
    eprintln!(
        "chaos campaign: {} seed(s) x {} faults, {} shard(s){}{} ...",
        cfg.seeds.len(),
        cfg.faults,
        cfg.shards,
        if args.inject {
            " [validation-skip injected]"
        } else {
            ""
        },
        if args.overload {
            " [overload bursts only]"
        } else {
            ""
        }
    );

    let mut outcomes = Vec::new();
    let mut offender_trace: Option<String> = None;
    let mut last_trace = String::new();
    for &seed in &cfg.seeds {
        let (o, trace) = run_seed_with_trace(&cfg, seed);
        println!(
            "seed {:>4}: acked {:>5}  committed {:>5}  aborted {:>5}  unknown {:>3}  \
             faults {:>3}  conservation {}  violations {}{}",
            o.seed,
            o.acked,
            o.committed,
            o.aborted,
            o.unknown,
            o.fault_counts.values().map(|&(a, _)| a).sum::<u64>(),
            if o.conservation_ok { "ok" } else { "FAILED" },
            o.violations.len(),
            if o.trace_dropped > 0 {
                format!(
                    "  [trace ring dropped {} events; provenance checks skipped]",
                    o.trace_dropped
                )
            } else {
                String::new()
            },
        );
        if args.trace.is_some() {
            if !o.clean() && offender_trace.is_none() {
                offender_trace = Some(trace);
            } else {
                last_trace = trace;
            }
        }
        outcomes.push(o);
    }
    let report = CampaignReport { outcomes };

    for o in report.outcomes.iter().filter(|o| !o.clean()) {
        println!("\noffending seed {}:", o.seed);
        if !o.conservation_ok {
            println!(
                "  conservation violated: audit total {} vs acked {} (+{} unknown)",
                o.audit_total, o.acked, o.unknowns
            );
        }
        for v in &o.violations {
            println!("  {}: {}", v.class, v.description);
            println!("  minimal trace slice:");
            for line in v.trace_slice.lines() {
                println!("    {line}");
            }
        }
    }
    if report.violation_count() == 0 && report.offending_seeds().is_empty() {
        println!("all {} seed(s) clean", report.outcomes.len());
    }

    bench::artifact::maybe_write("chaos", scale, report.to_json());
    if let Some(path) = &args.trace {
        match std::fs::write(path, offender_trace.unwrap_or(last_trace)) {
            Ok(()) => eprintln!("wrote trace to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if !report.offending_seeds().is_empty() {
        std::process::exit(1);
    }
}
