//! Runs every experiment reproduction in sequence.

use bench::artifact;
use bench::common::Scale;
use obskit::Json;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running all reproductions at {scale:?} scale ...\n");
    let t1 = bench::table1::Table1Config::for_scale(scale);
    let t1_rows = bench::table1::run(&t1);
    bench::table1::print(&t1_rows);
    println!();
    let f6 = bench::fig6::Fig6Config::for_scale(scale);
    let f6_points = bench::fig6::run(&f6);
    bench::fig6::print(&f6, &f6_points);
    println!();
    let f7 = bench::fig7::Fig7Config::for_scale(scale);
    let f7_points = bench::fig7::run(&f7);
    bench::fig7::print(&f7, &f7_points);
    println!();
    let f8 = bench::fig8::Fig8Config::for_scale(scale);
    let f8_points = bench::fig8::run(&f8);
    bench::fig8::print(&f8, &f8_points);
    println!();
    let f9 = bench::fig9::Fig9Config::for_scale(scale);
    let f9_points = bench::fig9::run(&f9);
    bench::fig9::print(&f9, &f9_points);
    println!();
    let replication = bench::ablations::run_replication(scale);
    println!();
    let clocks = bench::ablations::run_clocks(scale);
    println!();
    let dftl = bench::ablations::run_dftl(scale);
    println!();
    let packing = bench::ablations::run_packing(scale);
    println!();
    let open_loop = bench::ablations::run_open_loop(scale);
    println!();
    let batch_cfg = bench::batch::BatchSweepConfig::for_scale(scale);
    let batch_points = bench::batch::run(&batch_cfg, 1);
    bench::batch::print(&batch_points);
    println!();
    let rb_run = bench::rebalance::run_once(scale, 1);
    let rb_campaign = bench::rebalance::run_fault_campaign(scale, 1);
    bench::rebalance::print(&rb_run, &rb_campaign);
    println!();
    let rs_cfg = bench::readscale::ReadScaleConfig::for_scale(scale);
    let rs_out = bench::readscale::run(&rs_cfg, 1);
    bench::readscale::print(&rs_out);
    println!();
    let rec_cfg = bench::recovery::RecoveryConfig::for_scale(scale);
    let rec_trials = bench::recovery::run(&rec_cfg);
    let rec_campaign = bench::recovery::run_powerfail_campaign(&rec_cfg);
    bench::recovery::print(&rec_cfg, &rec_trials, &rec_campaign);
    println!();
    let cf_cfg = bench::clockfault::ClockFaultConfig::for_scale(scale);
    let cf_sweep = bench::clockfault::run_sweep(&cf_cfg);
    let cf_degradation = bench::clockfault::run_degradation(&cf_cfg);
    let cf_campaign = bench::clockfault::run_fault_campaign(&cf_cfg);
    bench::clockfault::print(&cf_cfg, &cf_sweep, &cf_degradation, &cf_campaign);
    artifact::maybe_write(
        "all",
        scale,
        Json::obj()
            .field("table1", bench::table1::to_json(&t1_rows))
            .field("fig6", bench::fig6::to_json(&f6, &f6_points))
            .field("fig7", bench::fig7::to_json(&f7, &f7_points))
            .field("fig8", bench::fig8::to_json(&f8, &f8_points))
            .field("fig9", bench::fig9::to_json(&f9, &f9_points))
            .field(
                "ablations",
                Json::obj()
                    .field("replication", replication)
                    .field("clocks", clocks)
                    .field("dftl", dftl)
                    .field("packing", packing)
                    .field("open_loop", open_loop),
            )
            .field("batch", bench::batch::to_json(&batch_points, 1))
            .field(
                "rebalance",
                bench::rebalance::to_json(&rb_run, &rb_campaign, 1),
            )
            .field("readscale", bench::readscale::to_json(&rs_out))
            .field(
                "recovery",
                bench::recovery::to_json(&rec_cfg, &rec_trials, &rec_campaign),
            )
            .field(
                "clockfault",
                bench::clockfault::to_json(&cf_cfg, &cf_sweep, &cf_degradation, &cf_campaign),
            ),
    );
    bench::common::maybe_dump_trace();
}
