//! Runs every experiment reproduction in sequence.

use bench::common::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running all reproductions at {scale:?} scale ...\n");
    let t1 = bench::table1::Table1Config::for_scale(scale);
    bench::table1::print(&bench::table1::run(&t1));
    println!();
    let f6 = bench::fig6::Fig6Config::for_scale(scale);
    bench::fig6::print(&f6, &bench::fig6::run(&f6));
    println!();
    let f7 = bench::fig7::Fig7Config::for_scale(scale);
    bench::fig7::print(&f7, &bench::fig7::run(&f7));
    println!();
    let f8 = bench::fig8::Fig8Config::for_scale(scale);
    bench::fig8::print(&f8, &bench::fig8::run(&f8));
    println!();
    let f9 = bench::fig9::Fig9Config::for_scale(scale);
    bench::fig9::print(&f9, &bench::fig9::run(&f9));
    println!();
    bench::ablations::run_replication(scale);
    println!();
    bench::ablations::run_clocks(scale);
    println!();
    bench::ablations::run_dftl(scale);
    println!();
    bench::ablations::run_packing(scale);
    println!();
    bench::ablations::run_open_loop(scale);
}
