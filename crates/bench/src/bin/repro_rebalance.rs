//! Elastic-resharding reproduction. See [`bench::rebalance`] for the
//! experiment design and acceptance checks.
//!
//! ```text
//! repro_rebalance [--seed S] [--json PATH] [--threads N]
//! ```
//!
//! Exits non-zero on a failed check. With `--json PATH` the run is
//! exported as a byte-stable artifact: same seed, same scale →
//! identical file.

use bench::common::Scale;
use bench::{artifact, rebalance};

fn main() {
    let scale = Scale::from_env();
    let mut seed = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed")
            }
            "--json" | "--threads" => {
                it.next();
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "rebalance: seed {seed}, 4 clients, zipf s={}.{:02} hot {}% ...",
        rebalance::ZIPF_S_X100 / 100,
        rebalance::ZIPF_S_X100 % 100,
        rebalance::HOT_PCT
    );
    let run = rebalance::run_once(scale, seed);
    let campaign = rebalance::run_fault_campaign(scale, seed);
    rebalance::print(&run, &campaign);
    artifact::maybe_write(
        "rebalance",
        scale,
        rebalance::to_json(&run, &campaign, seed),
    );
    if !rebalance::ok(&run, &campaign) {
        std::process::exit(1);
    }
}
