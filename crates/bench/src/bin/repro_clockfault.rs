//! Clock-fault robustness reproduction: abort rate across the clock
//! precision spectrum, a fence-and-recover degradation run, and a
//! clock-fault campaign with the external-consistency bound checked.
//!
//! ```text
//! repro_clockfault [--seed S] [--inject uncertainty-skip] [--json PATH] [--threads N]
//! ```
//!
//! - `--seed S` fixes the simulation seed (default 1). The same seed and
//!   scale produce a byte-identical `--json` artifact.
//! - `--inject uncertainty-skip` flips the seeded fraud — primaries keep
//!   tracking clock health but ignore the verdicts, so mis-timestamped
//!   prepares commit. The campaign's checker must flag the resulting
//!   `clock_bound_breach`, and the exit code stays 1 (a clean exit means
//!   the clock bound is checked by nobody).
//! - `--json PATH` writes the byte-stable artifact.
//!
//! Exits non-zero when an honest run breaks the skew ordering, fails to
//! fence the broken client, commits past the promised ε — or when an
//! injected fraud goes undetected.

use bench::clockfault::{self, ClockFaultConfig};
use bench::common::Scale;

fn main() {
    let scale = Scale::from_env();
    let mut cfg = ClockFaultConfig::for_scale(scale);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        match arg.as_str() {
            "--seed" => cfg.seed = take("--seed").parse().expect("--seed"),
            "--inject" => match take("--inject").as_str() {
                "uncertainty-skip" => cfg.inject_uncertainty_skip = true,
                what => panic!("unknown --inject {what}"),
            },
            "--json" => {
                take("--json");
            }
            "--threads" => {
                take("--threads");
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                if !other.starts_with("--json=") {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
    }

    eprintln!(
        "clockfault: 4 disciplines x {} sub-seed(s), {} campaign fault(s), seed {}{} ...",
        cfg.sub_seeds,
        cfg.campaign_faults,
        cfg.seed,
        if cfg.inject_uncertainty_skip {
            " [uncertainty-skip injected]"
        } else {
            ""
        }
    );
    let sweep = clockfault::run_sweep(&cfg);
    let degradation = clockfault::run_degradation(&cfg);
    let campaign = clockfault::run_fault_campaign(&cfg);
    clockfault::print(&cfg, &sweep, &degradation, &campaign);

    bench::artifact::maybe_write(
        "clockfault",
        scale,
        clockfault::to_json(&cfg, &sweep, &degradation, &campaign),
    );
    if cfg.inject_uncertainty_skip {
        // Mirror repro_chaos: a caught fraud exits 1 (CI inverts this
        // check), while a blind checker exits 0 and CI flags the miss.
        if clockfault::ok(&cfg, &sweep, &degradation, &campaign) {
            std::process::exit(1);
        }
        eprintln!("clock-bound checker missed the injected fraud");
        return;
    }
    if !clockfault::ok(&cfg, &sweep, &degradation, &campaign) {
        std::process::exit(1);
    }
}
