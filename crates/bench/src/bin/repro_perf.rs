//! Perf baselines: microbenches for the validate hot loop, batch
//! replication flush, and the FTL read path, plus end-to-end suite
//! wall-clocks. See [`bench::perf`] for what each number means.
//!
//! ```text
//! repro_perf [--seed S] [--json PATH] [--threads N] [--deterministic-only]
//! ```
//!
//! - `--seed S` fixes the microbench seed (default 42).
//! - `--json PATH` writes `BENCH_perf.json`: deterministic counters and
//!   timing fields in separate sub-objects.
//! - `--deterministic-only` omits every timing field, so two runs of the
//!   same build produce byte-identical documents (the CI perf-smoke
//!   check `cmp`s exactly this).
//! - Build with `--features bench/count-allocs` to add allocation
//!   counts from the counting global allocator (byte-stable at
//!   `--threads 1`).

use bench::common::Scale;
use bench::{artifact, perf};

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: perfkit::alloc::CountingAllocator = perfkit::alloc::CountingAllocator;

fn main() {
    let mut seed = 42u64;
    let mut deterministic_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--deterministic-only" => deterministic_only = true,
            "--json" | "--threads" => {
                it.next();
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    let report = perf::run(scale, seed);

    println!("perf baselines (seed {seed}, threads {}):", report.threads);
    for b in &report.benches {
        print!(
            "  {:<12} {:>9} iters  checksum {:016x}",
            b.name, b.iters, b.checksum
        );
        if deterministic_only {
            println!();
        } else if b.sim_polls > 0 {
            println!(
                "  {:>7.1} ms  {:>8.0} ns/op  {:>11.0} sim-events/s",
                b.wall.as_secs_f64() * 1e3,
                b.ns_per_iter(),
                b.events_per_sec()
            );
        } else {
            println!(
                "  {:>7.1} ms  {:>8.0} ns/op  {:>11.0} ops/s",
                b.wall.as_secs_f64() * 1e3,
                b.ns_per_iter(),
                b.iters_per_sec()
            );
        }
    }
    for s in &report.suites {
        print!(
            "  suite {:<12} {:>3} points  {:>9} commits",
            s.name, s.points, s.commits
        );
        if deterministic_only {
            println!();
        } else {
            println!("  {:>7.2} s", s.wall.as_secs_f64());
        }
    }

    artifact::maybe_write("perf", scale, perf::to_json(&report, !deterministic_only));
}
