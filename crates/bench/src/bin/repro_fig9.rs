//! Regenerates Figure 9 (MILANA vs Centiman local validation).

use bench::common::Scale;
use bench::fig9;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 9 at {scale:?} scale ...");
    let cfg = fig9::Fig9Config::for_scale(scale);
    let points = fig9::run(&cfg);
    fig9::print(&cfg, &points);
    bench::artifact::maybe_write("fig9", scale, fig9::to_json(&cfg, &points));
    bench::common::maybe_dump_trace();
}
