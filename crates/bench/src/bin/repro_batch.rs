//! Group-commit & RPC-coalescing sweep. See [`bench::batch`] for the
//! experiment design and acceptance checks.
//!
//! ```text
//! repro_batch [--seed S] [--json PATH] [--threads N]
//! ```
//!
//! Exits non-zero on a failed check. With `--json PATH` the sweep is
//! exported as a byte-stable artifact: same seed, same scale →
//! identical file.

use std::time::Duration;

use bench::common::Scale;
use bench::{artifact, batch};

fn main() {
    let scale = Scale::from_env();
    let mut seed = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed")
            }
            "--json" | "--threads" => {
                it.next();
            }
            other if other.starts_with("--json=") || other.starts_with("--threads=") => {}
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let cfg = batch::BatchSweepConfig::for_scale(scale);
    eprintln!(
        "batch sweep: seed {seed}, 4 clients x {}/s, deadline {} us ...",
        Duration::from_secs(1).as_nanos() / batch::INTERARRIVAL.as_nanos(),
        batch::DEADLINE.as_micros()
    );
    let points = batch::run(&cfg, seed);
    batch::print(&points);
    artifact::maybe_write("batch", scale, batch::to_json(&points, seed));
    if !batch::ok(&points) {
        std::process::exit(1);
    }
}
