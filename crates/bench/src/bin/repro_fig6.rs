//! Regenerates Figure 6 (abort rate vs clients, SFTL vs MFTL, zero skew).

use bench::common::Scale;
use bench::fig6;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 6 at {scale:?} scale ...");
    let cfg = fig6::Fig6Config::for_scale(scale);
    let points = fig6::run(&cfg);
    fig6::print(&cfg, &points);
    bench::artifact::maybe_write("fig6", scale, fig6::to_json(&cfg, &points));
    bench::common::maybe_dump_trace();
}
