//! Shared plumbing for the experiment reproductions: scale factors,
//! formatted table output, and MILANA/Retwis run helpers.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Duration;

use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use obskit::{Obs, TxnStats};
use retwis::driver::{run_instance, TxnSystem, WorkloadConfig};
use simkit::rng::Zipf;
use simkit::time::SimTime;
use simkit::{Sim, SimHandle};

/// Experiment scale, settable via the `REPRO_SCALE` environment variable:
/// `quick` (CI-sized), `full` (paper-shaped; slower). Defaults to `quick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small keyspaces / short runs; minutes of wall time for everything.
    Quick,
    /// Larger keyspaces / longer runs; closer to the paper's regime.
    Full,
}

impl Scale {
    /// Reads `REPRO_SCALE` from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("REPRO_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Measurement window of virtual time.
    pub fn measure(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(1500),
            Scale::Full => Duration::from_secs(10),
        }
    }

    /// Warm-up window of virtual time before measurement.
    pub fn warmup(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(300),
            Scale::Full => Duration::from_secs(2),
        }
    }

    /// Transactional keyspace size (the paper preloads 2 M keys; we scale
    /// down and note it in EXPERIMENTS.md).
    pub fn keyspace(&self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 200_000,
        }
    }
}

thread_local! {
    static TRACE_OBS: RefCell<Option<Obs>> = const { RefCell::new(None) };
}

/// Parses `--trace <path>` / `--trace=<path>` from the process arguments.
pub fn trace_path_from_args() -> Option<PathBuf> {
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            return it.next().map(PathBuf::from);
        }
        if let Some(rest) = arg.strip_prefix("--trace=") {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// The process-wide observability bundle the experiment modules attach to
/// every cluster they build. With `--trace <path>` on the command line it
/// carries a bounded tracer (most recent 1 M events; older ones counted as
/// dropped) that [`maybe_dump_trace`] writes out as JSONL. Without the
/// flag tracing is disabled and recording costs nothing.
pub fn run_obs() -> Obs {
    TRACE_OBS.with(|slot| {
        slot.borrow_mut()
            .get_or_insert_with(|| {
                if trace_path_from_args().is_some() {
                    Obs::with_trace(1 << 20)
                } else {
                    Obs::new()
                }
            })
            .clone()
    })
}

/// Writes the recorded trace to the `--trace <path>` file as JSONL; no-op
/// without the flag. Call once at the end of every `repro_*` main. A
/// failed write aborts the binary so CI never mistakes a missing trace
/// for success.
pub fn maybe_dump_trace() {
    let Some(path) = trace_path_from_args() else {
        return;
    };
    let obs = run_obs();
    match std::fs::write(&path, obs.tracer.dump_jsonl()) {
        Ok(()) => eprintln!(
            "wrote trace ({} events, {} dropped) to {}",
            obs.tracer.len(),
            obs.tracer.dropped(),
            path.display()
        ),
        Err(e) => {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Prints a row of fixed-width columns.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Outcome of one Retwis-over-MILANA run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Aggregated workload counters (measurement window only).
    pub stats: TxnStats,
    /// Virtual measurement duration.
    pub elapsed: Duration,
    /// Fraction of read-only commits decided locally (MILANA clients).
    pub local_validated: u64,
}

/// Drives `instances_per_client` Retwis instances on every cluster client
/// for `warmup + measure` virtual time; only the measurement window counts.
pub fn run_retwis_on_milana(
    sim: &mut Sim,
    cluster: &MilanaCluster,
    wl: WorkloadConfig,
    instances_per_client: u32,
    warmup: Duration,
    measure: Duration,
) -> RunOutcome {
    let h = sim.handle();
    let zipf = Rc::new(Zipf::new(wl.keyspace as usize, wl.zipf_alpha));
    let wl = Rc::new(wl);
    // Warm-up phase uses a throwaway stats sink.
    let sink = TxnStats::new();
    let warm_until = h.now() + warmup;
    let mut joins = Vec::new();
    for c in &cluster.clients {
        for _ in 0..instances_per_client {
            joins.push(h.spawn(run_instance(
                h.clone(),
                c.clone(),
                wl.clone(),
                zipf.clone(),
                sink.clone(),
                warm_until,
            )));
        }
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let stats = TxnStats::new();
    let lv_before: u64 = cluster
        .clients
        .iter()
        .map(|c| c.stats().local_validations)
        .sum();
    let until = h.now() + measure;
    let mut joins = Vec::new();
    for c in &cluster.clients {
        for _ in 0..instances_per_client {
            joins.push(h.spawn(run_instance(
                h.clone(),
                c.clone(),
                wl.clone(),
                zipf.clone(),
                stats.clone(),
                until,
            )));
        }
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let lv_after: u64 = cluster
        .clients
        .iter()
        .map(|c| c.stats().local_validations)
        .sum();
    RunOutcome {
        stats,
        elapsed: measure,
        local_validated: lv_after - lv_before,
    }
}

/// Builds a standard MILANA cluster for the figure experiments.
pub fn build_cluster(handle: &SimHandle, cfg: MilanaClusterConfig) -> MilanaCluster {
    MilanaCluster::build(handle, cfg)
}

/// Drives Retwis instances over any [`TxnSystem`] clients (used by the
/// Centiman comparison, where clients are not MILANA's).
pub fn run_retwis_generic<S: TxnSystem>(
    sim: &mut Sim,
    clients: &[S],
    wl: WorkloadConfig,
    instances_per_client: u32,
    warmup: Duration,
    measure: Duration,
) -> (TxnStats, Duration) {
    let h = sim.handle();
    let zipf = Rc::new(Zipf::new(wl.keyspace as usize, wl.zipf_alpha));
    let wl = Rc::new(wl);
    let sink = TxnStats::new();
    let warm_until = h.now() + warmup;
    let mut joins = Vec::new();
    for c in clients {
        for _ in 0..instances_per_client {
            joins.push(h.spawn(run_instance(
                h.clone(),
                c.clone(),
                wl.clone(),
                zipf.clone(),
                sink.clone(),
                warm_until,
            )));
        }
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    let stats = TxnStats::new();
    let until = h.now() + measure;
    let mut joins = Vec::new();
    for c in clients {
        for _ in 0..instances_per_client {
            joins.push(h.spawn(run_instance(
                h.clone(),
                c.clone(),
                wl.clone(),
                zipf.clone(),
                stats.clone(),
                until,
            )));
        }
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    (stats, measure)
}

/// Virtual-time helper: `now + d` as a [`SimTime`].
pub fn deadline(h: &SimHandle, d: Duration) -> SimTime {
    h.now() + d
}
