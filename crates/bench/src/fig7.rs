//! Figure 7 — PTP vs NTP: MILANA abort rates vs contention, across storage
//! backends.
//!
//! Paper setup (§5.2): 3 storage VMs (1 primary + 2 backups), 5 client VMs
//! each running 4 Retwis instances (20 total), clocks synchronized with PTP
//! software timestamping (~53 µs mean skew) or NTP (~1.51 ms), backends
//! DRAM / VFTL / MFTL, contention α swept, aborted transactions retried
//! with the same keys.
//!
//! Expected shape: PTP aborts below NTP everywhere (the headline: up to
//! 43 % lower under high contention); under NTP, DRAM (fastest writes)
//! aborts most, then VFTL, then MFTL.

use std::time::Duration;

use flashsim::{BackendKind, NandConfig};
use milana::cluster::MilanaClusterConfig;
use obskit::Json;
use retwis::driver::WorkloadConfig;
use retwis::mix::Mix;
use simkit::Sim;
use timesync::{ClockSpec, Discipline};

use crate::common::{run_retwis_on_milana, Scale};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Clock discipline ("PTP"/"NTP").
    pub sync: &'static str,
    /// Storage backend name.
    pub backend: &'static str,
    /// Contention parameter.
    pub alpha: f64,
    /// Abort rate.
    pub abort_rate: f64,
    /// Full workload counters for the run (abort reasons, latency),
    /// frozen so points can cross the worker-pool boundary.
    pub stats: obskit::FrozenTxnStats,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Contention values on the x-axis.
    pub alphas: Vec<f64>,
    /// Backends compared.
    pub backends: Vec<BackendKind>,
    /// Client VMs.
    pub client_vms: u32,
    /// Retwis instances per client VM.
    pub instances_per_vm: u32,
    /// Keyspace size.
    pub keyspace: u64,
    /// Warm-up per run.
    pub warmup: Duration,
    /// Measurement window per run.
    pub measure: Duration,
}

impl Fig7Config {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> Fig7Config {
        match scale {
            Scale::Quick => Fig7Config {
                alphas: vec![0.5, 0.7, 0.9],
                backends: vec![BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl],
                client_vms: 5,
                instances_per_vm: 4,
                keyspace: 5_000,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(1000),
            },
            Scale::Full => Fig7Config {
                alphas: vec![0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
                backends: vec![BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl],
                client_vms: 5,
                instances_per_vm: 4,
                keyspace: 20_000,
                warmup: Duration::from_millis(500),
                measure: Duration::from_secs(5),
            },
        }
    }
}

fn backend_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Dram => "DRAM",
        BackendKind::Sftl => "SFTL",
        BackendKind::Vftl => "VFTL",
        BackendKind::Mftl => "MFTL",
    }
}

fn run_point(
    discipline: Discipline,
    sync: &'static str,
    kind: BackendKind,
    alpha: f64,
    cfg: &Fig7Config,
    seed: u64,
) -> Fig7Point {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let nand = NandConfig {
        channels: 8,
        queue_depth: 128,
        ..NandConfig::default()
    }
    .sized_for(cfg.keyspace, 512, 0.08);
    let cluster = milana::cluster::MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: 1,
            replicas: 3, // 1 primary + 2 backups (paper)
            clients: cfg.client_vms,
            backend: kind,
            nand,
            clock: ClockSpec::from(discipline),
            preload_keys: cfg.keyspace,
            value_size: 472,
            // ExoGENI-style VM networking (~300 us RTT).
            net: simkit::net::LatencyConfig {
                one_way: Duration::from_micros(150),
                jitter_std: Duration::from_micros(30),
                ..simkit::net::LatencyConfig::default()
            },
            tuning: milana::server::ServerTuning {
                obs: crate::common::run_obs(),
                ..Default::default()
            },
            ..MilanaClusterConfig::default()
        },
    );
    let outcome = run_retwis_on_milana(
        &mut sim,
        &cluster,
        WorkloadConfig {
            mix: Mix::retwis(),
            keyspace: cfg.keyspace,
            zipf_alpha: alpha,
            value_size: 472,
            max_retries: 1000,
        },
        cfg.instances_per_vm,
        cfg.warmup,
        cfg.measure,
    );
    Fig7Point {
        sync,
        backend: backend_name(kind),
        alpha,
        abort_rate: outcome.stats.abort_rate(),
        stats: outcome.stats.freeze(),
    }
}

/// Runs the full sweep on the `perfkit` worker pool (one sim per point,
/// merged back in sweep order).
pub fn run(cfg: &Fig7Config) -> Vec<Fig7Point> {
    let mut items = Vec::new();
    for (discipline, sync) in [(Discipline::PtpSoftware, "PTP"), (Discipline::Ntp, "NTP")] {
        for &kind in &cfg.backends {
            for &alpha in &cfg.alphas {
                items.push((discipline.clone(), sync, kind, alpha));
            }
        }
    }
    perfkit::pool::run_ordered_auto(items, |(discipline, sync, kind, alpha)| {
        let seed = 700 + (alpha * 100.0) as u64;
        run_point(discipline, sync, kind, alpha, cfg, seed)
    })
}

/// Deterministic JSON payload: every point with its abort-reason
/// breakdown and latency percentiles, plus a per-clock-model rollup
/// (the artifact the paper's PTP-vs-NTP headline is checked against).
pub fn to_json(cfg: &Fig7Config, points: &[Fig7Point]) -> Json {
    let point_docs = points.iter().map(|p| {
        Json::obj()
            .field("sync", Json::str(p.sync))
            .field("backend", Json::str(p.backend))
            .field("alpha", Json::F64(p.alpha))
            .field("abort_rate", Json::F64(p.abort_rate))
            .field("abort_reasons", p.stats.abort_reasons_json())
            .field("latency_ns", p.stats.latency.summary_json())
    });
    let mut by_clock = Json::obj();
    for sync in ["PTP", "NTP"] {
        let merged = obskit::TxnStats::new();
        for p in points.iter().filter(|p| p.sync == sync) {
            merged.merge_frozen(&p.stats);
        }
        by_clock = by_clock.field(
            sync,
            Json::obj()
                .field("abort_rate", Json::F64(merged.abort_rate()))
                .field("abort_reasons", merged.abort_reasons.to_json())
                .field("latency_ns", merged.latency.snapshot().summary_json()),
        );
    }
    Json::obj()
        .field(
            "alphas",
            Json::arr(cfg.alphas.iter().map(|&a| Json::F64(a))),
        )
        .field(
            "backends",
            Json::arr(cfg.backends.iter().map(|&k| Json::str(backend_name(k)))),
        )
        .field("points", Json::arr(point_docs))
        .field("by_clock", by_clock)
}

/// Prints series of abort rates over α, plus the PTP-vs-NTP reduction.
pub fn print(cfg: &Fig7Config, points: &[Fig7Point]) {
    println!("Figure 7: abort rate (%) vs contention α — PTP vs NTP by backend");
    print!("{:>12}", "series\\alpha");
    for a in &cfg.alphas {
        print!(" {a:>7}");
    }
    println!();
    for sync in ["PTP", "NTP"] {
        for &kind in &cfg.backends {
            let name = backend_name(kind);
            print!("{:>8}/{:<4}", sync, name);
            for &alpha in &cfg.alphas {
                let p = points
                    .iter()
                    .find(|p| p.sync == sync && p.backend == name && p.alpha == alpha)
                    .expect("point");
                print!(" {:>7.2}", p.abort_rate * 100.0);
            }
            println!();
        }
    }
    // Headline: abort-rate reduction of PTP vs NTP at the highest contention.
    let max_alpha = *cfg.alphas.last().expect("non-empty alphas");
    for &kind in &cfg.backends {
        let name = backend_name(kind);
        let get = |sync: &str| {
            points
                .iter()
                .find(|p| p.sync == sync && p.backend == name && p.alpha == max_alpha)
                .map(|p| p.abort_rate)
                .unwrap_or(f64::NAN)
        };
        let (ptp, ntp) = (get("PTP"), get("NTP"));
        if ntp > 0.0 {
            println!(
                "  {name}: PTP reduces aborts by {:.0}% at alpha={max_alpha} (paper headline: up to 43%)",
                (1.0 - ptp / ntp) * 100.0
            );
        }
    }
}
