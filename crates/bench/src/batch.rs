//! Group-commit & RPC-coalescing sweep (library core of `repro_batch`).
//!
//! Drives the same open-loop read-modify-write load against a MILANA
//! cluster at several `batch_max` settings (same seed, same arrival
//! schedule) and reports the wire economy and commit latency of each:
//! replication envelopes vs. records, coordinator envelopes vs. items,
//! and p50/p99 commit latency.
//!
//! Acceptance checks:
//! - `batch_max = 16` cuts replication envelopes per commit by at least
//!   2x vs. the unbatched `batch_max = 1` baseline at equal offered load;
//! - its p99 commit latency stays within the flush-deadline bound
//!   (unbatched p99 + one coordinator window + one replication window,
//!   plus scheduling slack).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use batchkit::BatchConfig;
use flashsim::{value, Key};
use milana::client::TxnOpts;
use milana::cluster::MilanaCluster;
use obskit::{Json, Obs};
use semel::ClusterSpec;
use simkit::Sim;

use crate::common::Scale;

const SHARDS: u32 = 2;
const REPLICAS: u32 = 3;
const CLIENTS: u32 = 4;
/// Flush window shared by the coordinator and replication planes.
pub const DEADLINE: Duration = Duration::from_micros(100);
/// Open-loop interarrival per client (10k txns/s/client): dense enough
/// that flush windows see more than one item.
pub const INTERARRIVAL: Duration = Duration::from_micros(100);
/// Allowance for timer/RPC scheduling on top of the two flush windows.
const SLACK_US: u64 = 300;

/// One measured `batch_max` setting.
pub struct BatchPoint {
    /// Coalescing limit under test.
    pub batch_max: usize,
    /// Open-loop arrivals inside the measurement window.
    pub offered: u64,
    /// Commits inside the window.
    pub commits: u64,
    /// Aborts inside the window.
    pub aborts: u64,
    /// All commits (including warm-up / drain), for per-commit rates.
    pub total_commits: u64,
    /// Replication envelopes sent by all replicas.
    pub repl_envelopes: u64,
    /// Replication records carried by those envelopes.
    pub repl_records: u64,
    /// Coordinator envelopes sent by all clients.
    pub coord_envelopes: u64,
    /// Coordinator requests carried by those envelopes.
    pub coord_items: u64,
    /// Median commit latency, µs.
    pub p50_us: u64,
    /// Tail commit latency, µs.
    pub p99_us: u64,
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Sweep parameters.
pub struct BatchSweepConfig {
    /// `batch_max` settings, baseline (1) first.
    pub batch_maxes: Vec<usize>,
    /// Keyspace size.
    pub keyspace: u64,
    /// Warm-up per point.
    pub warmup: Duration,
    /// Measurement window per point.
    pub measure: Duration,
}

impl BatchSweepConfig {
    /// Derives from the global scale knob.
    pub fn for_scale(scale: Scale) -> BatchSweepConfig {
        let (keyspace, warmup, measure) = match scale {
            Scale::Quick => (4_000, Duration::from_millis(50), Duration::from_millis(250)),
            Scale::Full => (20_000, Duration::from_millis(200), Duration::from_secs(2)),
        };
        BatchSweepConfig {
            batch_maxes: vec![1, 4, 8, 16],
            keyspace,
            warmup,
            measure,
        }
    }
}

fn run_point(batch_max: usize, cfg: &BatchSweepConfig, seed: u64) -> BatchPoint {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let obs = Obs::new();
    let keyspace = cfg.keyspace;
    let (warmup, measure) = (cfg.warmup, cfg.measure);
    let spec = ClusterSpec::new(SHARDS, REPLICAS, CLIENTS)
        .preloaded(keyspace)
        .batching(BatchConfig {
            batch_max,
            batch_deadline: DEADLINE,
        })
        .observed(obs.clone());
    let cluster = MilanaCluster::build(&h, spec.into());
    let clients = cluster.clients.clone();
    let hh = h.clone();
    // (commit latencies, aborts, offered) inside the measurement window.
    let acc = Rc::new(RefCell::new((Vec::<u64>::new(), 0u64, 0u64)));
    let acc2 = acc.clone();
    sim.block_on(async move {
        let start = hh.now() + warmup;
        let until = start + measure;
        let mut drivers = Vec::new();
        for c in &cluster.clients {
            let c = c.clone();
            let hh2 = hh.clone();
            let acc = acc2.clone();
            drivers.push(hh.spawn(async move {
                let mut next = hh2.now();
                while hh2.now() < until {
                    let c2 = c.clone();
                    let hh3 = hh2.clone();
                    let acc = acc.clone();
                    let key = Key::from(hh2.rand_range(0, keyspace));
                    hh2.spawn(async move {
                        let t0 = hh3.now();
                        let measured = t0 >= start;
                        if measured {
                            acc.borrow_mut().2 += 1;
                        }
                        let mut t = c2.begin_with(TxnOpts::default());
                        if t.get(&key).await.is_err() {
                            return;
                        }
                        t.put(key, value(&b"batched"[..]));
                        match t.commit().await {
                            Ok(_) if measured => {
                                let ns = (hh3.now() - t0).as_nanos() as u64;
                                acc.borrow_mut().0.push(ns);
                            }
                            Err(_) if measured => acc.borrow_mut().1 += 1,
                            _ => {}
                        }
                    });
                    next += INTERARRIVAL;
                    hh2.sleep_until(next).await;
                }
            }));
        }
        for d in drivers {
            d.await;
        }
        // Drain in-flight transactions so their RPCs are accounted.
        hh.sleep(Duration::from_millis(20)).await;
    });
    let (mut lat, aborts, offered) = Rc::try_unwrap(acc).unwrap().into_inner();
    lat.sort_unstable();
    let reg = &obs.registry;
    let (mut repl_envelopes, mut repl_records) = (0, 0);
    for n in 0..SHARDS * REPLICAS {
        repl_envelopes += reg.counter(&format!("milana.node{n}.repl_envelopes")).get();
        repl_records += reg.counter(&format!("milana.node{n}.repl_records")).get();
    }
    let (mut coord_envelopes, mut coord_items) = (0, 0);
    for c in 0..CLIENTS {
        coord_envelopes += reg
            .counter(&format!("milana.client{c}.coord_envelopes"))
            .get();
        coord_items += reg.counter(&format!("milana.client{c}.coord_items")).get();
    }
    BatchPoint {
        batch_max,
        offered,
        commits: lat.len() as u64,
        aborts,
        total_commits: clients.iter().map(|c| c.stats().commits).sum(),
        repl_envelopes,
        repl_records,
        coord_envelopes,
        coord_items,
        p50_us: pct(&lat, 0.5) / 1_000,
        p99_us: pct(&lat, 0.99) / 1_000,
    }
}

fn env_per_commit(p: &BatchPoint) -> f64 {
    p.repl_envelopes as f64 / p.total_commits.max(1) as f64
}

/// Runs the full sweep, one point per `batch_max`, all from `seed`, on
/// the `perfkit` worker pool (each point is an independent sim; results
/// merge back in sweep order).
pub fn run(cfg: &BatchSweepConfig, seed: u64) -> Vec<BatchPoint> {
    perfkit::pool::run_ordered_auto(cfg.batch_maxes.clone(), |b| run_point(b, cfg, seed))
}

/// Acceptance verdicts; see the module docs.
pub struct BatchChecks {
    /// Envelope-per-commit reduction, baseline / batch 16.
    pub reduction: f64,
    /// p99 bound: baseline p99 + two flush windows + slack.
    pub bound_us: u64,
    /// `batch_max = 16` p99, for reporting.
    pub best_p99_us: u64,
    /// Reduction at least 2x.
    pub reduction_ok: bool,
    /// p99 within the bound.
    pub latency_ok: bool,
}

/// Evaluates the acceptance checks over a finished sweep.
pub fn checks(points: &[BatchPoint]) -> BatchChecks {
    let base = points.iter().find(|p| p.batch_max == 1).expect("baseline");
    let best = points.iter().find(|p| p.batch_max == 16).expect("batch 16");
    let reduction = env_per_commit(base) / env_per_commit(best);
    let bound_us = base.p99_us + 2 * DEADLINE.as_micros() as u64 + SLACK_US;
    BatchChecks {
        reduction,
        bound_us,
        best_p99_us: best.p99_us,
        reduction_ok: reduction >= 2.0,
        latency_ok: best.p99_us <= bound_us,
    }
}

/// Prints the sweep table and the acceptance verdicts.
pub fn print(points: &[BatchPoint]) {
    println!(
        "{:>9} {:>8} {:>8} {:>7} {:>9} {:>9} {:>10} {:>9} {:>8} {:>8}",
        "batch_max",
        "offered",
        "commits",
        "aborts",
        "repl_env",
        "repl_rec",
        "coord_env",
        "coord_it",
        "p50_us",
        "p99_us"
    );
    for p in points {
        println!(
            "{:>9} {:>8} {:>8} {:>7} {:>9} {:>9} {:>10} {:>9} {:>8} {:>8}",
            p.batch_max,
            p.offered,
            p.commits,
            p.aborts,
            p.repl_envelopes,
            p.repl_records,
            p.coord_envelopes,
            p.coord_items,
            p.p50_us,
            p.p99_us
        );
    }
    let c = checks(points);
    println!(
        "replication-RPC reduction at batch_max=16: {:.2}x per commit ({})",
        c.reduction,
        if c.reduction_ok {
            "ok, >= 2x"
        } else {
            "FAILED, < 2x"
        }
    );
    println!(
        "p99 commit latency at batch_max=16: {} us vs bound {} us ({})",
        c.best_p99_us,
        c.bound_us,
        if c.latency_ok { "ok" } else { "FAILED" }
    );
}

/// Deterministic JSON payload for the artifact.
pub fn to_json(points: &[BatchPoint], seed: u64) -> Json {
    let c = checks(points);
    Json::obj()
        .field("seed", Json::U64(seed))
        .field("deadline_us", Json::U64(DEADLINE.as_micros() as u64))
        .field(
            "interarrival_us",
            Json::U64(INTERARRIVAL.as_micros() as u64),
        )
        .field("shards", Json::U64(u64::from(SHARDS)))
        .field("replicas", Json::U64(u64::from(REPLICAS)))
        .field("clients", Json::U64(u64::from(CLIENTS)))
        .field(
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj()
                    .field("batch_max", Json::U64(p.batch_max as u64))
                    .field("offered", Json::U64(p.offered))
                    .field("commits", Json::U64(p.commits))
                    .field("aborts", Json::U64(p.aborts))
                    .field("total_commits", Json::U64(p.total_commits))
                    .field("repl_envelopes", Json::U64(p.repl_envelopes))
                    .field("repl_records", Json::U64(p.repl_records))
                    .field("coord_envelopes", Json::U64(p.coord_envelopes))
                    .field("coord_items", Json::U64(p.coord_items))
                    .field("p50_commit_us", Json::U64(p.p50_us))
                    .field("p99_commit_us", Json::U64(p.p99_us))
            })),
        )
        .field(
            "checks",
            Json::obj()
                .field(
                    "rpc_reduction_x",
                    Json::F64((c.reduction * 100.0).round() / 100.0),
                )
                .field("p99_bound_us", Json::U64(c.bound_us))
                .field("reduction_ok", Json::Bool(c.reduction_ok))
                .field("latency_ok", Json::Bool(c.latency_ok)),
        )
}

/// True when every acceptance check passed.
pub fn ok(points: &[BatchPoint]) -> bool {
    let c = checks(points);
    c.reduction_ok && c.latency_ok
}
