//! Serial-vs-parallel determinism: the `--threads`/`PERF_THREADS` knob
//! must never leak into an artifact. One suite per pooled family — group
//! commit, resharding campaigns, read scaling, and chaos campaigns —
//! each rendered at 1 worker and at 4 workers, asserting byte-identical
//! JSON.
//!
//! The in-process checks flip `PERF_THREADS` around small library runs
//! (a mutex serializes them — the knob is process-global env state). The
//! chaos check additionally spawns the real `repro_chaos` binary with
//! `--threads`, covering the CLI surface end to end: flag parsing, pool
//! scheduling, ordered merge, and serialization.

use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests that mutate the process-global `PERF_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    std::env::set_var("PERF_THREADS", threads);
    let out = f();
    std::env::remove_var("PERF_THREADS");
    out
}

fn assert_thread_invariant(name: &str, render: impl Fn() -> String) {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = with_threads("1", &render);
    let parallel = with_threads("4", &render);
    assert!(!serial.is_empty(), "{name} rendered an empty artifact");
    assert_eq!(
        serial, parallel,
        "{name}: 1-worker and 4-worker artifacts must be byte-identical"
    );
}

#[test]
fn batch_artifact_is_thread_invariant() {
    let cfg = bench::batch::BatchSweepConfig {
        // The full ladder: batch::to_json runs the acceptance checks,
        // which expect the 1/4/8/16 points.
        batch_maxes: vec![1, 4, 8, 16],
        keyspace: 1_000,
        warmup: Duration::from_millis(20),
        measure: Duration::from_millis(80),
    };
    assert_thread_invariant("batch", || {
        bench::batch::to_json(&bench::batch::run(&cfg, 3), 3).to_pretty_string()
    });
}

#[test]
fn rebalance_campaign_artifact_is_thread_invariant() {
    let cfg = faultkit::RebalanceCampaignConfig {
        seeds: vec![1, 2, 3, 4],
        ..faultkit::RebalanceCampaignConfig::default()
    };
    assert_thread_invariant("rebalance", || {
        faultkit::run_rebalance_campaign(&cfg)
            .to_json()
            .to_pretty_string()
    });
}

#[test]
fn readscale_artifact_is_thread_invariant() {
    let cfg = bench::readscale::ReadScaleConfig {
        keyspace: 1_000,
        warmup: Duration::from_millis(20),
        measure: Duration::from_millis(80),
        campaign_seeds: vec![11],
        ..bench::readscale::ReadScaleConfig::for_scale(bench::common::Scale::Quick)
    };
    assert_thread_invariant("readscale", || {
        bench::readscale::to_json(&bench::readscale::run(&cfg, 3)).to_pretty_string()
    });
}

#[test]
fn chaos_artifact_is_thread_invariant() {
    let cfg = faultkit::CampaignConfig {
        seeds: vec![5, 6, 7, 8],
        faults: 10,
        ..faultkit::CampaignConfig::default()
    };
    assert_thread_invariant("chaos", || {
        faultkit::run_campaign(&cfg).to_json().to_pretty_string()
    });
}

/// End-to-end CLI check: the real binary, the real `--threads` flag.
#[test]
fn chaos_binary_threads_flag_is_artifact_invariant() {
    let run = |threads: &str| {
        let path = std::env::temp_dir().join(format!(
            "thread-determinism-{}-chaos-t{threads}.json",
            std::process::id()
        ));
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro_chaos"))
            .args(["--seeds", "2", "--faults", "20", "--threads", threads])
            .arg("--json")
            .arg(&path)
            .env("REPRO_SCALE", "quick")
            .env_remove("PERF_THREADS")
            .output()
            .expect("spawn repro_chaos");
        assert!(
            out.status.success(),
            "repro_chaos --threads {threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&path).expect("artifact written");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(
        serial, parallel,
        "repro_chaos: --threads 1 and --threads 4 artifacts must be byte-identical"
    );
}
