//! End-to-end artifact determinism: same seed, same config → byte-identical
//! JSON. This is the contract `obskit::Json` documents (insertion-ordered
//! fields, shortest-roundtrip floats, no wall-clock reads), checked here
//! through a real — tiny — Figure 7 run so a regression anywhere in the
//! stack (sim scheduling, RNG forking, stat accumulation, serialization)
//! fails loudly.

use std::time::Duration;

use bench::artifact;
use bench::common::Scale;
use bench::fig7::{self, Fig7Config};
use faultkit::{run_campaign, CampaignConfig};
use flashsim::BackendKind;

fn tiny_cfg() -> Fig7Config {
    Fig7Config {
        alphas: vec![0.8],
        backends: vec![BackendKind::Mftl],
        client_vms: 2,
        instances_per_vm: 2,
        keyspace: 2_000,
        warmup: Duration::from_millis(50),
        measure: Duration::from_millis(150),
    }
}

#[test]
fn same_seed_fig7_artifacts_are_byte_identical() {
    let cfg = tiny_cfg();
    let render = || {
        let points = fig7::run(&cfg);
        artifact::envelope("fig7", Scale::Quick, fig7::to_json(&cfg, &points)).to_pretty_string()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "same-seed artifacts must match byte for byte");
    assert!(a.ends_with('\n'), "artifact files end with a newline");
}

#[test]
fn fig7_artifact_reports_reasons_and_percentiles_per_clock() {
    let cfg = tiny_cfg();
    let points = fig7::run(&cfg);
    let doc = fig7::to_json(&cfg, &points).to_string();
    for key in [
        r#""by_clock""#,
        r#""PTP""#,
        r#""NTP""#,
        r#""abort_reasons""#,
        r#""validation""#,
        r#""latency_ns""#,
        r#""p99""#,
    ] {
        assert!(doc.contains(key), "artifact is missing {key}: {doc}");
    }
    // The tiny run still commits transactions under both disciplines.
    for p in &points {
        assert!(
            p.stats.commits > 0,
            "{}/{} committed nothing",
            p.sync,
            p.backend
        );
    }
}

#[test]
fn overload_campaign_artifacts_are_byte_identical_and_report_sheds() {
    let cfg = CampaignConfig {
        seeds: vec![5],
        faults: 10,
        shards: 1,
        overload_only: true,
        ..CampaignConfig::default()
    };
    let render = || {
        let report = run_campaign(&cfg);
        assert!(report.offending_seeds().is_empty(), "{report:?}");
        artifact::envelope("chaos", Scale::Quick, report.to_json()).to_pretty_string()
    };
    let a = render();
    let b = render();
    assert_eq!(
        a, b,
        "same-seed campaign artifacts must match byte for byte"
    );
    // The admission plane is visible in the artifact, and the overload
    // bursts actually drove it into shedding.
    for key in [r#""server_sheds""#, r#""client_retries""#, r#""overload""#] {
        assert!(a.contains(key), "artifact is missing {key}: {a}");
    }
    let report = run_campaign(&cfg);
    assert!(
        report.outcomes[0].server_sheds > 0,
        "overload bursts never hit the admission gate: {:?}",
        report.outcomes[0]
    );
}
