//! Criterion benches over the simulated storage stack: how much wall time
//! the simulator needs per batch of FTL operations (Table 1's substrate),
//! for both the unified and the split multi-version designs.

use criterion::{criterion_group, criterion_main, Criterion};
use flashsim::{value, Backend, BackendKind, Key, NandConfig};
use simkit::Sim;
use timesync::{ClientId, Timestamp, Version};

fn run_ops(kind: BackendKind, gets: u64, puts: u64) {
    let mut sim = Sim::new(1);
    let h = sim.handle();
    let nand = NandConfig {
        channels: 8,
        ..NandConfig::default()
    }
    .sized_for(2_000, 512, 0.08);
    let store = Backend::new(kind, &h, nand);
    let payload = value(vec![0u8; 472]);
    for i in 0..1_000u64 {
        store.bulk_load(
            Key::from(i),
            payload.clone(),
            Version::new(Timestamp(1), ClientId(0)),
        );
    }
    store.finish_load();
    let total = gets + puts;
    let mut joins = Vec::new();
    for w in 0..8u64 {
        let store = store.clone();
        let payload = payload.clone();
        let hh = h.clone();
        joins.push(h.spawn(async move {
            let mut ts = 1_000 + w;
            for i in 0..total / 8 {
                let key = Key::from((w * 7919 + i * 31) % 1_000);
                if i % (total / (puts.max(1))).max(1) == 0 {
                    ts += 1_000;
                    let _ = store
                        .put(
                            key,
                            payload.clone(),
                            Version::new(Timestamp(ts), ClientId(w as u32)),
                        )
                        .await;
                } else {
                    let _ = store.get_at(&key, Timestamp(hh.now().as_nanos() + 1)).await;
                }
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
}

fn bench_mftl(c: &mut Criterion) {
    c.bench_function("mftl_1k_ops_75r25w", |b| {
        b.iter(|| run_ops(BackendKind::Mftl, 750, 250))
    });
}

fn bench_vftl(c: &mut Criterion) {
    c.bench_function("vftl_1k_ops_75r25w", |b| {
        b.iter(|| run_ops(BackendKind::Vftl, 750, 250))
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_1k_ops_75r25w", |b| {
        b.iter(|| run_ops(BackendKind::Dram, 750, 250))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mftl, bench_vftl, bench_dram
}
criterion_main!(benches);
