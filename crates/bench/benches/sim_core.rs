//! Criterion benches for the simulation substrate itself: task scheduling,
//! timers, and RPC round trips — the per-event costs every experiment pays.

use criterion::{criterion_group, criterion_main, Criterion};
use simkit::net::{Addr, NodeId};
use simkit::rpc::{recv_request, RpcClient};
use simkit::Sim;
use std::time::Duration;

fn bench_spawn_join(c: &mut Criterion) {
    c.bench_function("spawn_join_1k_tasks", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            sim.block_on(async move {
                let mut joins = Vec::new();
                for i in 0..1_000u64 {
                    joins.push(h.spawn(async move { i * 2 }));
                }
                let mut sum = 0;
                for j in joins {
                    sum += j.await;
                }
                sum
            })
        })
    });
}

fn bench_timer_wheel(c: &mut Criterion) {
    c.bench_function("sleep_1k_timers", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            sim.block_on(async move {
                let mut joins = Vec::new();
                for i in 0..1_000u64 {
                    let hh = h.clone();
                    joins.push(h.spawn(async move {
                        hh.sleep(Duration::from_micros(i % 100)).await;
                    }));
                }
                for j in joins {
                    j.await;
                }
            })
        })
    });
}

fn bench_rpc_round_trip(c: &mut Criterion) {
    #[derive(Debug, Clone)]
    struct Ping(u64);
    #[derive(Debug, Clone)]
    struct Pong(u64);
    c.bench_function("rpc_1k_round_trips", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let h = sim.handle();
            let hh = h.clone();
            sim.block_on(async move {
                let mb = hh.bind(Addr::new(NodeId(2), 0));
                let h2 = hh.clone();
                hh.spawn_on(NodeId(2), async move {
                    while let Some((Ping(v), _f, resp)) = recv_request::<Ping>(&h2, &mb).await {
                        resp.reply(Pong(v + 1));
                    }
                });
                let client = RpcClient::new(&hh, NodeId(1), 0);
                let mut acc = 0u64;
                for i in 0..1_000u64 {
                    if let Ok(Pong(v)) = client
                        .call::<Ping, Pong>(
                            Addr::new(NodeId(2), 0),
                            Ping(i),
                            Duration::from_millis(10),
                        )
                        .await
                    {
                        acc += v;
                    }
                }
                acc
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spawn_join, bench_timer_wheel, bench_rpc_round_trip
}
criterion_main!(benches);
