//! Criterion benches for the pure-CPU transaction machinery: Algorithm-1
//! validation, prepare/decide cycles, and version-chain visibility.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flashsim::Key;
use milana::msg::{TxnId, TxnRecord, TxnStatus};
use milana::table::TxnTable;
use semel::shard::ShardId;
use timesync::{ClientId, Timestamp, Version};

fn table_with_keys(n: u64) -> TxnTable {
    let mut t = TxnTable::new();
    for i in 0..n {
        t.note_read(&Key::from(i), Timestamp(10));
    }
    t
}

fn bench_validate(c: &mut Criterion) {
    let table = table_with_keys(10_000);
    let reads: Vec<(Key, Version)> = (0..4u64)
        .map(|i| (Key::from(i), Version::new(Timestamp(5), ClientId(0))))
        .collect();
    let writes: Vec<Key> = (4..8u64).map(Key::from).collect();
    c.bench_function("validate_4r4w", |b| {
        b.iter(|| {
            std::hint::black_box(table.validate(&reads, &writes, Timestamp(20), |_| {
                Some(Version::new(Timestamp(5), ClientId(0)))
            }))
        })
    });
}

fn bench_prepare_decide(c: &mut Criterion) {
    c.bench_function("prepare_decide_cycle", |b| {
        let mut seq = 0u64;
        let mut table = TxnTable::new();
        b.iter(|| {
            seq += 1;
            let txid = TxnId {
                client: ClientId(1),
                seq,
            };
            table.prepare(TxnRecord {
                txid,
                ts_commit: Timestamp(seq),
                writes: vec![(Key::from(seq % 64), flashsim::value(&b"v"[..]))].into(),
                participants: vec![ShardId(0)].into(),
                status: TxnStatus::Prepared,
            });
            std::hint::black_box(table.decide(txid, true));
        })
    });
}

fn bench_note_read(c: &mut Criterion) {
    c.bench_function("note_read_hot_key", |b| {
        let mut table = table_with_keys(1);
        let key = Key::from(0u64);
        let mut ts = 100u64;
        b.iter(|| {
            ts += 1;
            std::hint::black_box(table.note_read(&key, Timestamp(ts)))
        })
    });
}

fn bench_shard_map(c: &mut Criterion) {
    let map = semel::shard::ShardMap::new(
        (0..16)
            .map(|i| semel::shard::ReplicaGroup {
                primary: simkit::net::Addr::new(simkit::net::NodeId(i), 0),
                backups: vec![],
            })
            .collect(),
    );
    c.bench_function("shard_for_key", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(map.shard_for(&Key::from(i)))
        })
    });
}

fn bench_clock(c: &mut Criterion) {
    use timesync::{Discipline, SyncedClock};
    c.bench_function("synced_clock_now", |b| {
        let clock = SyncedClock::new(Discipline::Ntp, 7);
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            std::hint::black_box(clock.now(simkit::SimTime::from_nanos(t)))
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    use rand::SeedableRng;
    let zipf = simkit::rng::Zipf::new(2_000_000, 0.8);
    c.bench_function("zipf_sample_2m", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| std::hint::black_box(zipf.sample(&mut rng)))
    });
}

fn bench_histogram(c: &mut Criterion) {
    use simkit::metrics::Histogram;
    c.bench_function("histogram_record", |b| {
        b.iter_batched(
            Histogram::new,
            |mut h| {
                for v in 0..1000u64 {
                    h.record(v * 997);
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_validate, bench_prepare_decide, bench_note_read,
              bench_shard_map, bench_clock, bench_zipf, bench_histogram
}
criterion_main!(benches);
