//! A deterministic, single-threaded, virtual-time async executor.
//!
//! The executor drives `!Send` futures over a simulated clock: time advances
//! only when no task is runnable, jumping straight to the next timer or
//! message delivery. Runs are exactly reproducible for a given seed because
//! all scheduling is FIFO and all randomness flows from one seeded RNG.
//!
//! # Examples
//!
//! ```
//! use simkit::{Sim, time::SimTime};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(42);
//! let h = sim.handle();
//! let elapsed = sim.block_on(async move {
//!     h.sleep(Duration::from_millis(5)).await;
//!     h.now()
//! });
//! assert_eq!(elapsed, SimTime::from_millis(5));
//! ```

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::{Addr, NetState, NodeId, Packet};
use crate::time::SimTime;

/// Identifies a spawned task. Slot indices are reused; the generation
/// counter distinguishes incarnations so stale wake-ups are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskId {
    idx: u32,
    gen: u32,
}

type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    id: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.lock().unwrap().push_back(self.id);
    }
}

struct Task {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    node: Option<NodeId>,
}

enum SlotState {
    Vacant,
    Idle(Task),
    /// The task has been taken out of the slab for polling.
    Polling,
}

struct Slot {
    gen: u32,
    state: SlotState,
}

#[derive(Default)]
struct TaskSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl TaskSlab {
    fn insert(&mut self, task: Task) -> TaskId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.state = SlotState::Idle(task);
            TaskId { idx, gen: slot.gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Idle(task),
            });
            TaskId { idx, gen: 0 }
        }
    }

    fn take_for_poll(&mut self, id: TaskId) -> Option<Task> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        match std::mem::replace(&mut slot.state, SlotState::Polling) {
            SlotState::Idle(task) => Some(task),
            other => {
                slot.state = other;
                None
            }
        }
    }

    fn put_back(&mut self, id: TaskId, task: Task) {
        let slot = &mut self.slots[id.idx as usize];
        debug_assert_eq!(slot.gen, id.gen);
        debug_assert!(matches!(slot.state, SlotState::Polling));
        slot.state = SlotState::Idle(task);
    }

    fn complete(&mut self, id: TaskId) {
        let slot = &mut self.slots[id.idx as usize];
        debug_assert_eq!(slot.gen, id.gen);
        slot.state = SlotState::Vacant;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
    }

    /// Removes every idle task owned by `node`, returning the futures so the
    /// caller can drop them outside the scheduler borrow.
    fn remove_node(&mut self, node: NodeId) -> Vec<Task> {
        let mut removed = Vec::new();
        for idx in 0..self.slots.len() {
            let owned =
                matches!(&self.slots[idx].state, SlotState::Idle(t) if t.node == Some(node));
            if owned {
                let slot = &mut self.slots[idx];
                if let SlotState::Idle(task) = std::mem::replace(&mut slot.state, SlotState::Vacant)
                {
                    slot.gen = slot.gen.wrapping_add(1);
                    self.free.push(idx as u32);
                    self.live -= 1;
                    removed.push(task);
                }
            }
        }
        removed
    }
}

pub(crate) enum TimerFire {
    Wake(Waker),
    Deliver { to: Addr, packet: Packet },
}

pub(crate) struct TimerEntry {
    at: SimTime,
    seq: u64,
    fire: TimerFire,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

pub(crate) struct Inner {
    now: SimTime,
    seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    tasks: TaskSlab,
    rng: StdRng,
    pub(crate) net: NetState,
    /// Task polls executed so far. Deterministic for a given seed and
    /// workload, so perf baselines can report sim-events/sec with a
    /// byte-stable numerator.
    polls: u64,
}

impl Inner {
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn schedule(&mut self, at: SimTime, fire: TimerFire) {
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, fire }));
    }

    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Removes all idle tasks owned by `node` so the caller can drop their
    /// futures outside of the scheduler borrow.
    pub(crate) fn tasks_remove_node(&mut self, node: NodeId) -> Vec<impl Sized> {
        self.tasks.remove_node(node)
    }
}

/// A deterministic discrete-event simulation.
///
/// Owns the run loop; cheap [`SimHandle`]s are passed into tasks for
/// spawning, sleeping, messaging, and randomness.
pub struct Sim {
    handle: SimHandle,
}

impl Sim {
    /// Creates a simulation whose randomness derives entirely from `seed`.
    pub fn new(seed: u64) -> Sim {
        let inner = Inner {
            now: SimTime::ZERO,
            seq: 0,
            timers: BinaryHeap::new(),
            tasks: TaskSlab::default(),
            rng: StdRng::seed_from_u64(seed),
            net: NetState::new(),
            polls: 0,
        };
        Sim {
            handle: SimHandle {
                inner: Rc::new(RefCell::new(inner)),
                ready: Arc::new(Mutex::new(VecDeque::new())),
            },
        }
    }

    /// Returns a cheap, cloneable handle for use inside tasks.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Runs `fut` to completion, driving all other spawned tasks and virtual
    /// time along the way, and returns its output.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (no runnable task, no pending
    /// timer) before `fut` completes.
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let jh = self.handle.spawn(fut);
        loop {
            loop {
                let next = self.handle.ready.lock().unwrap().pop_front();
                match next {
                    Some(tid) => self.poll_task(tid),
                    None => break,
                }
                if jh.is_finished() {
                    return jh.try_take().expect("join handle lost its value");
                }
            }
            if jh.is_finished() {
                return jh.try_take().expect("join handle lost its value");
            }
            if !self.advance(None) {
                panic!(
                    "simulation deadlocked at {} before block_on future completed",
                    self.handle.now()
                );
            }
        }
    }

    /// Runs until there is no runnable task and no pending timer.
    pub fn run(&mut self) {
        loop {
            self.drain_ready();
            if !self.advance(None) {
                break;
            }
        }
    }

    /// Runs until virtual time reaches `deadline` (or the simulation goes
    /// idle, whichever comes first). Leaves later timers pending.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            self.drain_ready();
            match self.advance(Some(deadline)) {
                true => continue,
                false => break,
            }
        }
        let mut inner = self.handle.inner.borrow_mut();
        if inner.now < deadline {
            inner.now = deadline;
        }
    }

    fn drain_ready(&mut self) {
        loop {
            let next = self.handle.ready.lock().unwrap().pop_front();
            match next {
                Some(tid) => self.poll_task(tid),
                None => break,
            }
        }
    }

    /// Fires the next timer, advancing the clock. Returns false if there was
    /// nothing to fire (or it lies past `deadline`).
    fn advance(&mut self, deadline: Option<SimTime>) -> bool {
        let fire = {
            let mut inner = self.handle.inner.borrow_mut();
            match inner.timers.peek() {
                None => return false,
                Some(Reverse(entry)) => {
                    if let Some(d) = deadline {
                        if entry.at > d {
                            return false;
                        }
                    }
                    let Reverse(entry) = inner.timers.pop().unwrap();
                    debug_assert!(entry.at >= inner.now, "timer in the past");
                    inner.now = entry.at;
                    entry.fire
                }
            }
        };
        match fire {
            TimerFire::Wake(waker) => waker.wake(),
            TimerFire::Deliver { to, packet } => self.handle.deliver_now(to, packet),
        }
        true
    }

    fn poll_task(&mut self, tid: TaskId) {
        let task = {
            let mut inner = self.handle.inner.borrow_mut();
            inner.polls += 1;
            inner.tasks.take_for_poll(tid)
        };
        let Some(mut task) = task else { return };
        let waker = Waker::from(Arc::new(TaskWaker {
            id: tid,
            ready: self.handle.ready.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        let poll = task.fut.as_mut().poll(&mut cx);
        let mut inner = self.handle.inner.borrow_mut();
        match poll {
            Poll::Ready(()) => inner.tasks.complete(tid),
            Poll::Pending => {
                let killed = task.node.is_some_and(|n| inner.net.is_dead(n));
                if killed {
                    inner.tasks.complete(tid);
                    drop(inner);
                    drop(task);
                } else {
                    inner.tasks.put_back(tid, task);
                }
            }
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.handle.now())
            .finish()
    }
}

/// Cheap, cloneable handle to a running [`Sim`].
///
/// All task-side interaction with the simulation — spawning, sleeping,
/// messaging, randomness — goes through a handle.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) inner: Rc<RefCell<Inner>>,
    ready: ReadyQueue,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Task polls executed so far — the discrete-event "work" counter.
    /// Deterministic for a given seed and workload, so perf baselines can
    /// report sim-events/sec with a byte-stable numerator.
    pub fn polls(&self) -> u64 {
        self.inner.borrow().polls
    }

    /// Spawns a task not owned by any simulated node.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(fut, None)
    }

    /// Spawns a task owned by `node`; it is aborted if the node is killed.
    pub fn spawn_on<F>(&self, node: NodeId, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(fut, Some(node))
    }

    fn spawn_inner<F>(&self, fut: F, node: Option<NodeId>) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            value: None,
            waker: None,
            finished: false,
        }));
        let state2 = state.clone();
        let wrapped = Box::pin(async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.value = Some(out);
            s.finished = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        let tid = {
            let mut inner = self.inner.borrow_mut();
            if let Some(n) = node {
                assert!(
                    !inner.net.is_dead(n),
                    "spawn_on a dead node {n:?}; revive it first"
                );
            }
            inner.tasks.insert(Task { fut: wrapped, node })
        };
        self.ready.lock().unwrap().push_back(tid);
        JoinHandle { state }
    }

    /// Sleeps for `dur` of virtual time.
    pub fn sleep(&self, dur: Duration) -> Sleep {
        let deadline = self.now() + dur;
        self.sleep_until(deadline)
    }

    /// Sleeps until the given virtual instant (returns immediately if it is
    /// already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
        }
    }

    /// Yields once, letting other runnable tasks make progress.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Runs `fut` with an upper bound of `dur` virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`Elapsed`] if the timeout fires first.
    pub async fn timeout<F: Future>(&self, dur: Duration, fut: F) -> Result<F::Output, Elapsed> {
        let sleep = self.sleep(dur);
        let mut fut = std::pin::pin!(fut);
        let mut sleep = std::pin::pin!(sleep);
        std::future::poll_fn(|cx| {
            if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            if sleep.as_mut().poll(cx).is_ready() {
                return Poll::Ready(Err(Elapsed));
            }
            Poll::Pending
        })
        .await
    }

    /// Runs a closure against the simulation RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(self.inner.borrow_mut().rng())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn rand_f64(&self) -> f64 {
        self.with_rng(|r| r.gen::<f64>())
    }

    /// Uniform `u64` over the full range.
    pub fn rand_u64(&self) -> u64 {
        self.with_rng(|r| r.gen::<u64>())
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn rand_range(&self, lo: u64, hi: u64) -> u64 {
        self.with_rng(|r| r.gen_range(lo..hi))
    }

    /// Derives an independent RNG stream from the simulation RNG; useful for
    /// components that must not perturb global sampling order.
    pub fn fork_rng(&self) -> StdRng {
        let seed = self.rand_u64();
        StdRng::seed_from_u64(seed)
    }

    pub(crate) fn schedule_wake(&self, at: SimTime, waker: Waker) {
        self.inner.borrow_mut().schedule(at, TimerFire::Wake(waker));
    }
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.now())
            .finish()
    }
}

/// Error returned by [`SimHandle::timeout`] when the deadline fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "virtual-time deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

struct JoinState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Handle for awaiting a spawned task's output.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// True once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the output if the task has completed and the value was not
    /// already consumed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().value.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(v);
        }
        assert!(!s.finished, "JoinHandle polled after output was taken");
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Future returned by [`SimHandle::sleep`] / [`SimHandle::sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    handle: SimHandle,
    deadline: SimTime,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            Poll::Ready(())
        } else {
            self.handle.schedule_wake(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`SimHandle::yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_starts_at_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.handle().now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let t = sim.block_on(async move {
            h.sleep(Duration::from_secs(3600)).await;
            h.now()
        });
        assert_eq!(t, SimTime::from_secs(3600));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let h1 = h.clone();
        let h2 = h.clone();
        sim.block_on(async move {
            let a = h.spawn(async move {
                for i in 0..3 {
                    h1.sleep(Duration::from_micros(10)).await;
                    l1.borrow_mut().push(format!("a{i}"));
                }
            });
            let b = h.spawn(async move {
                for i in 0..3 {
                    h2.sleep(Duration::from_micros(15)).await;
                    l2.borrow_mut().push(format!("b{i}"));
                }
            });
            a.await;
            b.await;
        });
        // a fires at 10,20,30; b at 15,30,45. At the t=30 tie, b's timer was
        // registered earlier (at t=15) so it fires first.
        assert_eq!(
            log.borrow().clone(),
            vec!["a0", "b0", "a1", "b1", "a2", "b2"]
        );
    }

    #[test]
    fn join_handle_returns_value() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = sim.block_on(async move {
            let jh = h.spawn(async { 7u32 });
            jh.await
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn timeout_fires_on_slow_future() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            hh.timeout(Duration::from_millis(1), async {
                hh.sleep(Duration::from_millis(10)).await;
                5
            })
            .await
        });
        assert_eq!(out, Err(Elapsed));
        // The losing sleep timer still exists but time never ran to it.
    }

    #[test]
    fn timeout_passes_fast_future() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            hh.timeout(Duration::from_millis(10), async {
                hh.sleep(Duration::from_millis(1)).await;
                5
            })
            .await
        });
        assert_eq!(out, Ok(5));
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let draw = |seed| {
            let sim = Sim::new(seed);
            let h = sim.handle();
            (0..8).map(|_| h.rand_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hits = Rc::new(RefCell::new(0));
        let hits2 = hits.clone();
        let hh = h.clone();
        h.spawn(async move {
            loop {
                hh.sleep(Duration::from_millis(10)).await;
                *hits2.borrow_mut() += 1;
            }
        });
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(*hits.borrow(), 3);
        assert_eq!(h.now(), SimTime::from_millis(35));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    fn yield_now_round_robins() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let (h1, h2) = (h.clone(), h.clone());
        sim.block_on(async move {
            let a = h.spawn(async move {
                for i in 0..2 {
                    l1.borrow_mut().push(("a", i));
                    h1.yield_now().await;
                }
            });
            let b = h.spawn(async move {
                for i in 0..2 {
                    l2.borrow_mut().push(("b", i));
                    h2.yield_now().await;
                }
            });
            a.await;
            b.await;
        });
        assert_eq!(
            log.borrow().clone(),
            vec![("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        );
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn block_on_detects_deadlock() {
        let mut sim = Sim::new(1);
        sim.block_on(std::future::pending::<()>());
    }
}
