//! Distribution samplers built on any [`rand::Rng`].
//!
//! Implemented here (rather than pulling `rand_distr`) to keep the
//! dependency set to the approved offline crates; see DESIGN.md §6.

use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0): u1 in (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `Normal(mean, std)`.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples an exponential variate with the given mean.
///
/// # Panics
///
/// Panics if `mean` is not positive.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// A Zipf-distributed sampler over ranks `0..n`.
///
/// Rank `r` is drawn with probability proportional to `1 / (r + 1)^alpha`.
/// `alpha = 0` is the uniform distribution; larger `alpha` concentrates mass
/// on low ranks. This is the "contention parameter" knob used by the Retwis
/// experiments (§5.2 of the paper).
///
/// The full CDF is precomputed (`8 * n` bytes) so sampling is an `O(log n)`
/// binary search — build one sampler per run, not per draw.
///
/// # Examples
///
/// ```
/// use simkit::rng::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid Zipf alpha");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..len()`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_zero_alpha_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut head = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With alpha=1 over 1000 ranks, ranks 0..10 carry ~39% of the mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.5, "head fraction {frac}");
    }

    #[test]
    fn zipf_higher_alpha_more_skew() {
        let mut r = rng();
        let frac_at = |alpha: f64, r: &mut StdRng| {
            let z = Zipf::new(1000, alpha);
            let n = 20_000;
            (0..n).filter(|_| z.sample(r) == 0).count() as f64 / n as f64
        };
        let lo = frac_at(0.4, &mut r);
        let hi = frac_at(0.9, &mut r);
        assert!(hi > lo * 2.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 0.8);
        let mut r = rng();
        assert_eq!(z.sample(&mut r), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
