//! Virtual time for the simulation.
//!
//! [`SimTime`] is an absolute instant on the simulated timeline, measured in
//! nanoseconds since the simulation epoch. Spans of time are expressed with
//! the standard [`core::time::Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant of simulated time, in nanoseconds since the epoch.
///
/// `SimTime` is the *true* (oracle) time of the simulation; per-client skewed
/// clocks are built on top of it by the `timesync` crate.
///
/// # Examples
///
/// ```
/// use simkit::time::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_micros(50);
/// assert_eq!(t.as_nanos(), 50_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_micros(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// Duration since an earlier instant, or [`Duration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Applies a signed offset in nanoseconds, saturating at the timeline
    /// boundaries. Used by skewed-clock models.
    pub fn offset_by(self, ns: i64) -> SimTime {
        if ns >= 0 {
            SimTime(self.0.saturating_add(ns as u64))
        } else {
            SimTime(self.0.saturating_sub(ns.unsigned_abs()))
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
    }

    #[test]
    fn add_sub_duration() {
        let a = SimTime::from_micros(10);
        let b = a + Duration::from_micros(5);
        assert_eq!(b - a, Duration::from_micros(5));
        assert_eq!(b.saturating_since(a), Duration::from_micros(5));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn signed_offsets_saturate() {
        assert_eq!(SimTime::from_nanos(100).offset_by(-200), SimTime::ZERO);
        assert_eq!(SimTime::from_nanos(100).offset_by(50).as_nanos(), 150);
        assert_eq!(SimTime::MAX.offset_by(10), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000000s");
    }
}
