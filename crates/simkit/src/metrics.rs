//! Measurement utilities, now provided by the workspace-wide `obskit`
//! crate. This module re-exports [`obskit::Histogram`] so existing
//! `simkit::metrics::Histogram` users keep working; new code should
//! depend on `obskit` directly (registry, traces, exporters).

pub use obskit::hist::Histogram;
