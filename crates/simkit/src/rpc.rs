//! Typed request/response messaging over the simulated network.
//!
//! An [`RpcClient`] issues calls and demultiplexes replies by request id; a
//! server binds a [`Mailbox`] and uses [`recv_request`] to receive typed
//! requests together with a [`Responder`] for the (optional) reply.
//!
//! Calls to dead or partitioned nodes never complete, so every call carries
//! a timeout — exactly the failure surface distributed protocols must handle.

use perfkit::FastMap;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use crate::executor::SimHandle;
use crate::net::{Addr, Mailbox, NodeId};
use crate::sync::oneshot;
use crate::time::SimTime;

/// Absolute virtual-time expiry carried in every request envelope.
///
/// The caller stamps the latest instant at which the reply is still
/// useful; each downstream hop can check [`Deadline::expired`] and refuse
/// already-dead work instead of doing it. Casts (and control traffic that
/// must always apply, like 2PC outcomes) carry [`Deadline::NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(SimTime);

impl Deadline {
    /// The never-expires sentinel.
    pub const NONE: Deadline = Deadline(SimTime::MAX);

    /// A deadline `budget` after `now`.
    pub fn after(now: SimTime, budget: Duration) -> Deadline {
        Deadline(now.saturating_add(budget))
    }

    /// The absolute expiry instant.
    pub fn at(self) -> SimTime {
        self.0
    }

    /// True when the deadline has passed at `now`.
    pub fn expired(self, now: SimTime) -> bool {
        self != Deadline::NONE && now >= self.0
    }

    /// Budget left at `now`; `None` once expired. [`Deadline::NONE`]
    /// always reports the maximum budget.
    pub fn remaining(self, now: SimTime) -> Option<Duration> {
        if self.expired(now) {
            None
        } else {
            Some(self.0.saturating_since(now))
        }
    }

    /// The tighter of this deadline and `now + budget` — how a hop derives
    /// the deadline for its own downstream calls.
    pub fn tighten(self, now: SimTime, budget: Duration) -> Deadline {
        Deadline(self.0.min(now.saturating_add(budget)))
    }
}

/// Wire format for a request. Bodies are `Rc`-shared so the network layer
/// can duplicate packets under fault injection without re-serializing.
#[derive(Clone)]
struct Request {
    id: u64,
    /// Where to send the reply; `None` marks fire-and-forget casts.
    reply_to: Option<Addr>,
    /// Latest useful completion instant (propagated hop to hop).
    deadline: Deadline,
    body: Rc<dyn Any>,
}

/// Wire format for a reply.
#[derive(Clone)]
struct Reply {
    id: u64,
    body: Rc<dyn Any>,
}

/// Extracts an owned `T` from a shared body (cloning only when a duplicated
/// packet still holds the other reference).
fn unwrap_body<T: Any + Clone>(body: Rc<T>) -> T {
    Rc::try_unwrap(body).unwrap_or_else(|rc| (*rc).clone())
}

/// Wire wrapper for a coalesced batch of same-type requests sharing one
/// envelope (and one [`Deadline`]). Servers that understand batches receive
/// it through [`recv_incoming`] as [`Incoming::Batch`] and answer every item
/// in order with [`Responder::reply_batch`].
#[derive(Debug, Clone)]
pub struct Batch<Req> {
    /// The coalesced requests, in submission order.
    pub items: Vec<Req>,
}

/// Wire wrapper for the per-item replies to a [`Batch`], in item order.
#[derive(Debug, Clone)]
pub struct BatchReply<Resp> {
    /// One reply per batched request, in the batch's item order.
    pub items: Vec<Resp>,
}

/// Errors surfaced by [`RpcClient::call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply within the timeout (dead peer, partition, or lost message).
    Timeout,
    /// The local node died while the call was in flight.
    Closed,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Closed => write!(f, "rpc endpoint closed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Reply-routing table shared between a client and its demux task.
type PendingReplies = Rc<RefCell<FastMap<u64, oneshot::Sender<Rc<dyn Any>>>>>;

/// Client half of the RPC layer; lives on one node and may call any address.
///
/// Cloning is cheap and shares the underlying reply route.
#[derive(Clone)]
pub struct RpcClient {
    handle: SimHandle,
    reply_addr: Addr,
    pending: PendingReplies,
    next_id: Rc<Cell<u64>>,
}

impl RpcClient {
    /// Creates a client on `node`, binding `reply_port` for replies and
    /// spawning its demultiplexer task there.
    pub fn new(handle: &SimHandle, node: NodeId, reply_port: u16) -> RpcClient {
        let mailbox = handle.bind(Addr::new(node, reply_port));
        let pending: PendingReplies = Rc::new(RefCell::new(FastMap::default()));
        let pending2 = pending.clone();
        handle.spawn_on(node, async move {
            while let Some(pkt) = mailbox.recv().await {
                let Ok(reply) = pkt.payload.downcast::<Reply>() else {
                    continue; // stray packet on the reply port
                };
                if let Some(tx) = pending2.borrow_mut().remove(&reply.id) {
                    let _ = tx.send(reply.body);
                }
            }
        });
        RpcClient {
            handle: handle.clone(),
            reply_addr: Addr::new(node, reply_port),
            pending,
            next_id: Rc::new(Cell::new(0)),
        }
    }

    /// The address replies are routed to.
    pub fn reply_addr(&self) -> Addr {
        self.reply_addr
    }

    /// Issues a request and waits for its typed reply.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no reply arrives within `timeout`.
    ///
    /// # Panics
    ///
    /// Panics if the peer replies with a type other than `Resp` — that is a
    /// protocol-definition bug, not a runtime fault.
    pub async fn call<Req: Any + Clone, Resp: Any + Clone>(
        &self,
        to: Addr,
        req: Req,
        timeout: Duration,
    ) -> Result<Resp, RpcError> {
        let deadline = Deadline::after(self.handle.now(), timeout);
        self.call_with_deadline(to, req, timeout, deadline).await
    }

    /// Like [`RpcClient::call`], but carrying an explicit `deadline` in the
    /// envelope — the way multi-hop paths propagate the *original* caller's
    /// budget instead of resetting it at each hop. The effective wait is
    /// the tighter of `timeout` and the deadline's remaining budget; an
    /// already-expired deadline fails immediately without sending.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no reply arrives in time (or the deadline
    /// was already expired).
    pub async fn call_with_deadline<Req: Any + Clone, Resp: Any + Clone>(
        &self,
        to: Addr,
        req: Req,
        timeout: Duration,
        deadline: Deadline,
    ) -> Result<Resp, RpcError> {
        let Some(remaining) = deadline.remaining(self.handle.now()) else {
            return Err(RpcError::Timeout);
        };
        let wait = timeout.min(remaining);
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let (tx, rx) = oneshot::channel();
        self.pending.borrow_mut().insert(id, tx);
        self.handle.send(
            self.reply_addr,
            to,
            Request {
                id,
                reply_to: Some(self.reply_addr),
                deadline,
                body: Rc::new(req),
            },
        );
        match self.handle.timeout(wait, rx).await {
            Ok(Ok(body)) => Ok(unwrap_body(
                body.downcast::<Resp>()
                    .expect("rpc reply type mismatch: protocol bug"),
            )),
            Ok(Err(_)) => {
                // Demux task died (our node was killed).
                Err(RpcError::Closed)
            }
            Err(_) => {
                self.pending.borrow_mut().remove(&id);
                Err(RpcError::Timeout)
            }
        }
    }

    /// Coalesces `items` into one [`Batch`] envelope, sends it as a single
    /// request, and waits for the per-item replies. The whole batch shares
    /// one deadline (`timeout` from now): per-item admission on the server
    /// charges each item's cost against that single envelope budget.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if the batched reply does not arrive in time —
    /// the envelope is one packet, so items fail or survive together.
    ///
    /// # Panics
    ///
    /// Panics if the peer answers with a reply count different from the
    /// item count — a protocol-definition bug, like a reply type mismatch.
    pub async fn call_batch<Req: Any + Clone, Resp: Any + Clone>(
        &self,
        to: Addr,
        items: Vec<Req>,
        timeout: Duration,
    ) -> Result<Vec<Resp>, RpcError> {
        let n = items.len();
        let reply: BatchReply<Resp> = self.call(to, Batch { items }, timeout).await?;
        assert_eq!(
            reply.items.len(),
            n,
            "batch reply arity mismatch: protocol bug"
        );
        Ok(reply.items)
    }

    /// Sends a fire-and-forget [`Batch`] envelope; no replies are expected.
    pub fn cast_batch<Req: Any + Clone>(&self, to: Addr, items: Vec<Req>) {
        self.cast(to, Batch { items });
    }

    /// Sends a fire-and-forget request; no reply is expected or routed.
    pub fn cast<Req: Any + Clone>(&self, to: Addr, req: Req) {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.handle.send(
            self.reply_addr,
            to,
            Request {
                id,
                reply_to: None,
                deadline: Deadline::NONE,
                body: Rc::new(req),
            },
        );
    }
}

impl std::fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient")
            .field("reply_addr", &self.reply_addr)
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

/// Server-side handle for answering one request.
#[derive(Debug)]
pub struct Responder {
    handle: SimHandle,
    my_addr: Addr,
    reply_to: Option<Addr>,
    deadline: Deadline,
    id: u64,
}

impl Responder {
    /// Sends `resp` back to the caller. A no-op for casts.
    pub fn reply<Resp: Any + Clone>(self, resp: Resp) {
        if let Some(to) = self.reply_to {
            self.handle.send(
                self.my_addr,
                to,
                Reply {
                    id: self.id,
                    body: Rc::new(resp),
                },
            );
        }
    }

    /// Sends the per-item replies for a batched request back to the caller
    /// in one [`BatchReply`] envelope. A no-op for casts. The item count
    /// must equal the received batch's — [`RpcClient::call_batch`] panics
    /// on arity mismatch at the caller.
    pub fn reply_batch<Resp: Any + Clone>(self, items: Vec<Resp>) {
        self.reply(BatchReply { items });
    }

    /// True when the caller expects a reply.
    pub fn expects_reply(&self) -> bool {
        self.reply_to.is_some()
    }

    /// The deadline the caller stamped on this request
    /// ([`Deadline::NONE`] for casts).
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }
}

/// Receives the next typed request on `mailbox`.
///
/// Returns `None` when the mailbox closes (node killed). Packets whose body
/// is not a `Req` panic — mixing request types on one port is a wiring bug.
pub async fn recv_request<Req: Any + Clone>(
    handle: &SimHandle,
    mailbox: &Mailbox,
) -> Option<(Req, Addr, Responder)> {
    let pkt = mailbox.recv().await?;
    let from = pkt.from;
    let req = *pkt
        .payload
        .downcast::<Request>()
        .expect("non-rpc packet on rpc port");
    let Request {
        id,
        reply_to,
        deadline,
        body,
    } = req;
    let body = body
        .downcast::<Req>()
        .expect("rpc request type mismatch: protocol bug");
    Some((
        unwrap_body(body),
        from,
        Responder {
            handle: handle.clone(),
            my_addr: mailbox.addr(),
            reply_to,
            deadline,
            id,
        },
    ))
}

/// A request as seen by a batch-aware server: either a plain request or a
/// coalesced [`Batch`] of them sharing one envelope.
#[derive(Debug)]
pub enum Incoming<Req> {
    /// A single request.
    One(Req),
    /// A coalesced batch; answer every item in order with
    /// [`Responder::reply_batch`].
    Batch(Vec<Req>),
}

/// Receives the next request on `mailbox`, accepting both plain `Req`
/// bodies and [`Batch<Req>`] envelopes.
///
/// Returns `None` when the mailbox closes (node killed). Packets whose body
/// is neither panic — mixing request types on one port is a wiring bug.
pub async fn recv_incoming<Req: Any + Clone>(
    handle: &SimHandle,
    mailbox: &Mailbox,
) -> Option<(Incoming<Req>, Addr, Responder)> {
    let pkt = mailbox.recv().await?;
    let from = pkt.from;
    let req = *pkt
        .payload
        .downcast::<Request>()
        .expect("non-rpc packet on rpc port");
    let Request {
        id,
        reply_to,
        deadline,
        body,
    } = req;
    let incoming = match body.downcast::<Req>() {
        Ok(one) => Incoming::One(unwrap_body(one)),
        Err(body) => Incoming::Batch(
            unwrap_body(
                body.downcast::<Batch<Req>>()
                    .expect("rpc request type mismatch: protocol bug"),
            )
            .items,
        ),
    };
    Some((
        incoming,
        from,
        Responder {
            handle: handle.clone(),
            my_addr: mailbox.addr(),
            reply_to,
            deadline,
            id,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    const TIMEOUT: Duration = Duration::from_millis(100);

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u32);
    #[derive(Debug, Clone, PartialEq)]
    struct Pong(u32);

    fn spawn_echo(h: &SimHandle, node: NodeId) -> Addr {
        let mb = h.bind(Addr::new(node, 0));
        let h2 = h.clone();
        let addr = mb.addr();
        h.spawn_on(node, async move {
            while let Some((Ping(v), _from, resp)) = recv_request::<Ping>(&h2, &mb).await {
                resp.reply(Pong(v + 1));
            }
        });
        addr
    }

    #[test]
    fn call_round_trips() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            let server = spawn_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client.call::<Ping, Pong>(server, Ping(41), TIMEOUT).await
        });
        assert_eq!(out, Ok(Pong(42)));
    }

    #[test]
    fn concurrent_calls_demux_correctly() {
        let mut sim = Sim::new(3);
        let h = sim.handle();
        let hh = h.clone();
        let outs = sim.block_on(async move {
            let server = spawn_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            let mut joins = Vec::new();
            for i in 0..10u32 {
                let c = client.clone();
                joins.push(
                    hh.spawn(async move { c.call::<Ping, Pong>(server, Ping(i), TIMEOUT).await }),
                );
            }
            let mut outs = Vec::new();
            for j in joins {
                outs.push(j.await);
            }
            outs
        });
        for (i, o) in outs.into_iter().enumerate() {
            assert_eq!(o, Ok(Pong(i as u32 + 1)));
        }
    }

    /// Batch-aware echo: answers plain Pings and Batch<Ping> envelopes.
    fn spawn_batch_echo(h: &SimHandle, node: NodeId) -> Addr {
        let mb = h.bind(Addr::new(node, 0));
        let h2 = h.clone();
        let addr = mb.addr();
        h.spawn_on(node, async move {
            while let Some((incoming, _from, resp)) = recv_incoming::<Ping>(&h2, &mb).await {
                match incoming {
                    Incoming::One(Ping(v)) => resp.reply(Pong(v + 1)),
                    Incoming::Batch(items) => resp.reply_batch(
                        items
                            .into_iter()
                            .map(|Ping(v)| Pong(v + 1))
                            .collect::<Vec<_>>(),
                    ),
                }
            }
        });
        addr
    }

    #[test]
    fn call_batch_round_trips_in_item_order() {
        let mut sim = Sim::new(5);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            let server = spawn_batch_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client
                .call_batch::<Ping, Pong>(server, vec![Ping(1), Ping(2), Ping(3)], TIMEOUT)
                .await
        });
        assert_eq!(out, Ok(vec![Pong(2), Pong(3), Pong(4)]));
    }

    #[test]
    fn batch_server_still_answers_plain_calls() {
        let mut sim = Sim::new(5);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            let server = spawn_batch_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client.call::<Ping, Pong>(server, Ping(7), TIMEOUT).await
        });
        assert_eq!(out, Ok(Pong(8)));
    }

    #[test]
    fn cast_batch_is_fire_and_forget() {
        let mut sim = Sim::new(6);
        let h = sim.handle();
        let hh = h.clone();
        let got = sim.block_on(async move {
            let mb = hh.bind(Addr::new(NodeId(2), 0));
            let h2 = hh.clone();
            let jh = hh.spawn_on(NodeId(2), async move {
                let (incoming, _, resp) = recv_incoming::<Ping>(&h2, &mb)
                    .await
                    .expect("mailbox closed");
                match incoming {
                    Incoming::Batch(items) => {
                        assert!(!resp.expects_reply());
                        items.len()
                    }
                    Incoming::One(_) => panic!("expected batch"),
                }
            });
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client.cast_batch(Addr::new(NodeId(2), 0), vec![Ping(1), Ping(2)]);
            jh.await
        });
        assert_eq!(got, 2);
    }

    #[test]
    fn call_to_dead_node_times_out() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let out = sim.block_on(async move {
            let server = spawn_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            hh.kill_node(NodeId(2));
            client.call::<Ping, Pong>(server, Ping(1), TIMEOUT).await
        });
        assert_eq!(out, Err(RpcError::Timeout));
    }

    #[test]
    fn cast_is_fire_and_forget() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let got = sim.block_on(async move {
            let mb = hh.bind(Addr::new(NodeId(2), 0));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client.cast(Addr::new(NodeId(2), 0), Ping(7));
            let (Ping(v), _from, resp) = recv_request::<Ping>(&hh, &mb).await.unwrap();
            assert!(!resp.expects_reply());
            resp.reply(Pong(0)); // must be a harmless no-op
            v
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn duplicated_requests_and_replies_round_trip() {
        // With 100% duplication every request and reply is delivered twice;
        // the server simply answers twice and the demux drops the second
        // reply (its pending entry is gone). Calls still succeed.
        let mut sim = Sim::new(21);
        let h = sim.handle();
        let hh = h.clone();
        let outs = sim.block_on(async move {
            let server = spawn_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            hh.set_net_faults(crate::net::NetFaultConfig {
                dup_prob: 1.0,
                ..crate::net::NetFaultConfig::default()
            });
            let mut outs = Vec::new();
            for i in 0..5u32 {
                outs.push(client.call::<Ping, Pong>(server, Ping(i), TIMEOUT).await);
            }
            outs
        });
        for (i, o) in outs.into_iter().enumerate() {
            assert_eq!(o, Ok(Pong(i as u32 + 1)));
        }
    }

    #[test]
    fn call_stamps_deadline_and_server_sees_it() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let mb = hh.bind(Addr::new(NodeId(2), 0));
            let h2 = hh.clone();
            hh.spawn_on(NodeId(2), async move {
                while let Some((Ping(v), _f, resp)) = recv_request::<Ping>(&h2, &mb).await {
                    let dl = resp.deadline();
                    assert_ne!(dl, Deadline::NONE);
                    assert!(!dl.expired(h2.now()));
                    // The caller's budget was TIMEOUT; at most that remains.
                    assert!(dl.remaining(h2.now()).unwrap() <= TIMEOUT);
                    resp.reply(Pong(v));
                }
            });
            let client = RpcClient::new(&hh, NodeId(1), 0);
            let r = client
                .call::<Ping, Pong>(Addr::new(NodeId(2), 0), Ping(9), TIMEOUT)
                .await;
            assert_eq!(r, Ok(Pong(9)));
        });
    }

    #[test]
    fn expired_deadline_fails_without_sending() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let server = spawn_echo(&hh, NodeId(2));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            let dead = Deadline::after(hh.now(), Duration::ZERO);
            hh.sleep(Duration::from_millis(1)).await;
            let before = hh.now();
            let r = client
                .call_with_deadline::<Ping, Pong>(server, Ping(1), TIMEOUT, dead)
                .await;
            assert_eq!(r, Err(RpcError::Timeout));
            // Failed immediately — no virtual time elapsed waiting.
            assert_eq!(hh.now(), before);
        });
    }

    #[test]
    fn cast_carries_no_deadline() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let mb = hh.bind(Addr::new(NodeId(2), 0));
            let client = RpcClient::new(&hh, NodeId(1), 0);
            client.cast(Addr::new(NodeId(2), 0), Ping(7));
            let (_, _, resp) = recv_request::<Ping>(&hh, &mb).await.unwrap();
            assert_eq!(resp.deadline(), Deadline::NONE);
            assert!(!resp.deadline().expired(SimTime::MAX));
        });
    }

    #[test]
    fn tighten_takes_the_smaller_budget() {
        let now = SimTime::from_millis(10);
        let wide = Deadline::after(now, Duration::from_secs(5));
        let tight = wide.tighten(now, Duration::from_millis(3));
        assert_eq!(tight.at(), SimTime::from_millis(13));
        // Tightening with a larger budget keeps the original expiry.
        let same = wide.tighten(now, Duration::from_secs(50));
        assert_eq!(same, wide);
        assert_eq!(
            Deadline::NONE.tighten(now, Duration::from_millis(1)).at(),
            SimTime::from_millis(11)
        );
    }

    #[test]
    fn timeout_then_late_reply_is_discarded() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            // Server that replies after 10ms.
            let mb = hh.bind(Addr::new(NodeId(2), 0));
            let h2 = hh.clone();
            hh.spawn_on(NodeId(2), async move {
                while let Some((Ping(v), _f, resp)) = recv_request::<Ping>(&h2, &mb).await {
                    h2.sleep(Duration::from_millis(10)).await;
                    resp.reply(Pong(v));
                }
            });
            let client = RpcClient::new(&hh, NodeId(1), 0);
            let r = client
                .call::<Ping, Pong>(Addr::new(NodeId(2), 0), Ping(1), Duration::from_millis(1))
                .await;
            assert_eq!(r, Err(RpcError::Timeout));
            // Wait for the late reply to arrive and be dropped by the demux.
            hh.sleep(Duration::from_millis(20)).await;
            // A fresh call still works (ids do not collide).
            let r2 = client
                .call::<Ping, Pong>(Addr::new(NodeId(2), 0), Ping(5), TIMEOUT)
                .await;
            assert_eq!(r2, Ok(Pong(5)));
        });
    }
}
