//! Simulated message network.
//!
//! Nodes are identified by [`NodeId`]; a node can bind any number of
//! [`Addr`]s (node + port) to receive packets. Delivery is asynchronous with
//! a configurable latency distribution, and the network supports fault
//! injection: killing nodes (which also aborts their tasks) and partitioning
//! node pairs.
//!
//! Payloads are type-erased `Box<dyn Any>`; the RPC layer in [`crate::rpc`]
//! restores typing at the endpoints.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;

use perfkit::{FastMap, FastSet};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use rand::Rng;

use crate::executor::{SimHandle, TimerFire};

/// Identifies a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A bindable endpoint: a port on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The machine this endpoint lives on.
    pub node: NodeId,
    /// Port within the node (purely a demultiplexing key).
    pub port: u16,
}

impl Addr {
    /// Convenience constructor.
    pub const fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// A delivered message.
#[derive(Debug)]
pub struct Packet {
    /// Sender endpoint.
    pub from: Addr,
    /// Type-erased payload; receivers downcast to the expected type.
    pub payload: Box<dyn Any>,
}

/// One-way latency model for message delivery.
///
/// Samples `max(floor, Normal(one_way, jitter_std))`; messages a node sends
/// to itself use the (much smaller) `local` latency instead.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Mean one-way latency between distinct nodes.
    pub one_way: Duration,
    /// Standard deviation of the one-way latency.
    pub jitter_std: Duration,
    /// Loopback latency for same-node messages.
    pub local: Duration,
    /// Hard lower bound on any sampled latency.
    pub floor: Duration,
}

impl Default for LatencyConfig {
    /// Intra-data-center defaults: 25 µs one-way (≈50 µs RTT), 5 µs jitter,
    /// 2 µs loopback.
    fn default() -> LatencyConfig {
        LatencyConfig {
            one_way: Duration::from_micros(25),
            jitter_std: Duration::from_micros(5),
            local: Duration::from_micros(2),
            floor: Duration::from_micros(1),
        }
    }
}

impl LatencyConfig {
    fn sample(&self, rng: &mut impl Rng, local: bool) -> Duration {
        if local {
            return self.local;
        }
        let mean = self.one_way.as_nanos() as f64;
        let std = self.jitter_std.as_nanos() as f64;
        let z = crate::rng::standard_normal(rng);
        let ns = (mean + std * z).max(self.floor.as_nanos() as f64);
        Duration::from_nanos(ns as u64)
    }
}

/// Counters describing network activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted for delivery.
    pub sent: u64,
    /// Messages actually handed to a bound mailbox.
    pub delivered: u64,
    /// Messages dropped (dead node, partition, unbound address, or an
    /// injected drop fault).
    pub dropped: u64,
    /// Extra deliveries scheduled by injected duplication faults.
    pub duplicated: u64,
    /// Deliveries that took an injected delay spike.
    pub delay_spiked: u64,
}

/// Probabilistic message faults applied to every non-loopback send while
/// installed (see [`SimHandle::set_net_faults`]). All randomness comes from
/// the simulation RNG, so a faulty run is exactly as reproducible as a
/// clean one.
///
/// Loopback (same-node) messages are exempt: a machine's internal queues do
/// not traverse the network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultConfig {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (independent latencies —
    /// the duplicate may arrive first, which also exercises reordering).
    pub dup_prob: f64,
    /// Probability a message's latency is inflated by `delay_spike`.
    pub delay_spike_prob: f64,
    /// The extra latency added when a delay spike fires.
    pub delay_spike: Duration,
}

impl NetFaultConfig {
    fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_spike_prob <= 0.0
    }
}

#[derive(Debug, Default)]
struct MailboxInner {
    queue: VecDeque<Packet>,
    waker: Option<Waker>,
    closed: bool,
}

pub(crate) struct NetState {
    mailboxes: FastMap<Addr, Rc<RefCell<MailboxInner>>>,
    dead: FastSet<NodeId>,
    blocked: FastSet<(NodeId, NodeId)>,
    latency: LatencyConfig,
    faults: Option<NetFaultConfig>,
    stats: NetStats,
}

fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl NetState {
    pub(crate) fn new() -> NetState {
        NetState {
            mailboxes: FastMap::default(),
            dead: FastSet::default(),
            blocked: FastSet::default(),
            latency: LatencyConfig::default(),
            faults: None,
            stats: NetStats::default(),
        }
    }

    pub(crate) fn is_dead(&self, n: NodeId) -> bool {
        self.dead.contains(&n)
    }
}

/// Receiving end of a bound [`Addr`].
///
/// Dropping the mailbox does *not* unbind the address (an [`Addr`] may be
/// rebound after [`SimHandle::kill_node`] + [`SimHandle::revive_node`]).
#[derive(Debug)]
pub struct Mailbox {
    addr: Addr,
    inner: Rc<RefCell<MailboxInner>>,
}

impl Mailbox {
    /// The address this mailbox is bound to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Waits for the next packet. Resolves to `None` if the mailbox was
    /// closed (its node was killed).
    pub fn recv(&self) -> Recv<'_> {
        Recv { mailbox: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Packet> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Mailbox::recv`].
#[derive(Debug)]
pub struct Recv<'a> {
    mailbox: &'a Mailbox,
}

impl Future for Recv<'_> {
    type Output = Option<Packet>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.mailbox.inner.borrow_mut();
        if let Some(p) = inner.queue.pop_front() {
            return Poll::Ready(Some(p));
        }
        if inner.closed {
            return Poll::Ready(None);
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl SimHandle {
    /// Binds `addr`, returning its mailbox.
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound or its node is dead.
    pub fn bind(&self, addr: Addr) -> Mailbox {
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.net.is_dead(addr.node), "bind on dead node {addr}");
        let mb = Rc::new(RefCell::new(MailboxInner::default()));
        let prev = inner.net.mailboxes.insert(addr, mb.clone());
        assert!(prev.is_none(), "address {addr} already bound");
        Mailbox { addr, inner: mb }
    }

    /// Removes the binding for `addr`, if any. Queued packets are discarded.
    pub fn unbind(&self, addr: Addr) {
        self.inner.borrow_mut().net.mailboxes.remove(&addr);
    }

    /// Sends `msg` from `from` to `to` with simulated latency. Messages to or
    /// from dead nodes, or across a partition, are silently dropped (like a
    /// real network). While a [`NetFaultConfig`] is installed, non-loopback
    /// messages may additionally be dropped, duplicated, or delay-spiked
    /// (hence the `Clone` bound: duplication needs a second copy).
    pub fn send<M: Any + Clone>(&self, from: Addr, to: Addr, msg: M) {
        let mut inner = self.inner.borrow_mut();
        inner.net.stats.sent += 1;
        if inner.net.is_dead(from.node)
            || inner.net.is_dead(to.node)
            || inner.net.blocked.contains(&pair(from.node, to.node))
        {
            inner.net.stats.dropped += 1;
            return;
        }
        let local = from.node == to.node;
        let cfg = inner.net.latency.clone();
        let faults = if local {
            None
        } else {
            inner.net.faults.clone()
        };
        let mut duplicate = false;
        let mut spike = Duration::ZERO;
        if let Some(f) = &faults {
            if f.drop_prob > 0.0 && inner.rng().gen::<f64>() < f.drop_prob {
                inner.net.stats.dropped += 1;
                return;
            }
            duplicate = f.dup_prob > 0.0 && inner.rng().gen::<f64>() < f.dup_prob;
            if f.delay_spike_prob > 0.0 && inner.rng().gen::<f64>() < f.delay_spike_prob {
                spike = f.delay_spike;
                inner.net.stats.delay_spiked += 1;
            }
        }
        if duplicate {
            inner.net.stats.duplicated += 1;
            let latency = cfg.sample(inner.rng(), local);
            let at = inner.now() + latency;
            inner.schedule(
                at,
                TimerFire::Deliver {
                    to,
                    packet: Packet {
                        from,
                        payload: Box::new(msg.clone()),
                    },
                },
            );
        }
        let latency = cfg.sample(inner.rng(), local) + spike;
        let at = inner.now() + latency;
        inner.schedule(
            at,
            TimerFire::Deliver {
                to,
                packet: Packet {
                    from,
                    payload: Box::new(msg),
                },
            },
        );
    }

    pub(crate) fn deliver_now(&self, to: Addr, packet: Packet) {
        let mb = {
            let mut inner = self.inner.borrow_mut();
            if inner.net.is_dead(to.node) {
                inner.net.stats.dropped += 1;
                return;
            }
            match inner.net.mailboxes.get(&to).cloned() {
                Some(mb) => {
                    inner.net.stats.delivered += 1;
                    mb
                }
                None => {
                    inner.net.stats.dropped += 1;
                    return;
                }
            }
        };
        let mut mb = mb.borrow_mut();
        mb.queue.push_back(packet);
        if let Some(w) = mb.waker.take() {
            w.wake();
        }
    }

    /// Kills a node: aborts all its tasks, closes and unbinds its mailboxes,
    /// and drops all future traffic to/from it until [`SimHandle::revive_node`].
    pub fn kill_node(&self, node: NodeId) {
        let (tasks, boxes) = {
            let mut inner = self.inner.borrow_mut();
            inner.net.dead.insert(node);
            let doomed: Vec<Addr> = inner
                .net
                .mailboxes
                .keys()
                .filter(|a| a.node == node)
                .copied()
                .collect();
            let mut boxes = Vec::new();
            for a in doomed {
                if let Some(mb) = inner.net.mailboxes.remove(&a) {
                    boxes.push(mb);
                }
            }
            (inner.tasks_remove_node(node), boxes)
        };
        for mb in boxes {
            let mut mb = mb.borrow_mut();
            mb.closed = true;
            mb.queue.clear();
            if let Some(w) = mb.waker.take() {
                w.wake();
            }
        }
        drop(tasks); // dropped outside the scheduler borrow
    }

    /// Marks a previously killed node alive again. Its addresses must be
    /// re-bound and its tasks re-spawned by the caller.
    pub fn revive_node(&self, node: NodeId) {
        self.inner.borrow_mut().net.dead.remove(&node);
    }

    /// True if `node` is currently dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.inner.borrow().net.is_dead(node)
    }

    /// Partitions every node in `a` from every node in `b` (both directions).
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut inner = self.inner.borrow_mut();
        for &x in a {
            for &y in b {
                inner.net.blocked.insert(pair(x, y));
            }
        }
    }

    /// Heals all partitions.
    pub fn heal_partitions(&self) {
        self.inner.borrow_mut().net.blocked.clear();
    }

    /// Replaces the network latency model.
    pub fn set_latency(&self, cfg: LatencyConfig) {
        self.inner.borrow_mut().net.latency = cfg;
    }

    /// Installs probabilistic message faults (drop / duplicate / delay
    /// spike) applied to every subsequent non-loopback [`SimHandle::send`].
    /// A no-op config uninstalls, same as [`SimHandle::clear_net_faults`].
    pub fn set_net_faults(&self, cfg: NetFaultConfig) {
        self.inner.borrow_mut().net.faults = if cfg.is_noop() { None } else { Some(cfg) };
    }

    /// Removes any installed message faults.
    pub fn clear_net_faults(&self) {
        self.inner.borrow_mut().net.faults = None;
    }

    /// The currently installed message faults, if any.
    pub fn net_faults(&self) -> Option<NetFaultConfig> {
        self.inner.borrow().net.faults.clone()
    }

    /// Snapshot of network counters.
    pub fn net_stats(&self) -> NetStats {
        self.inner.borrow().net.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    fn a(n: u32, p: u16) -> Addr {
        Addr::new(NodeId(n), p)
    }

    #[test]
    fn message_arrives_with_latency() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let (t_sent, t_recv) = sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            let t_sent = hh.now();
            hh.send(a(1, 0), a(2, 0), 42u32);
            let pkt = mb.recv().await.unwrap();
            assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 42);
            assert_eq!(pkt.from, a(1, 0));
            (t_sent, hh.now())
        });
        let lat = t_recv - t_sent;
        assert!(lat >= Duration::from_micros(1), "latency {lat:?}");
        assert!(lat < Duration::from_millis(1), "latency {lat:?}");
    }

    #[test]
    fn local_messages_use_loopback_latency() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let lat = sim.block_on(async move {
            let mb = hh.bind(a(1, 1));
            let t0 = hh.now();
            hh.send(a(1, 0), a(1, 1), ());
            mb.recv().await.unwrap();
            hh.now() - t0
        });
        assert_eq!(lat, LatencyConfig::default().local);
    }

    #[test]
    fn fifo_between_same_pair_is_not_guaranteed_but_all_arrive() {
        let mut sim = Sim::new(7);
        let h = sim.handle();
        let hh = h.clone();
        let got = sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            for i in 0..20u32 {
                hh.send(a(1, 0), a(2, 0), i);
            }
            let mut got = Vec::new();
            for _ in 0..20 {
                let pkt = mb.recv().await.unwrap();
                got.push(*pkt.payload.downcast::<u32>().unwrap());
            }
            got
        });
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn partition_drops_messages() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            hh.partition(&[NodeId(1)], &[NodeId(2)]);
            hh.send(a(1, 0), a(2, 0), 1u32);
            hh.sleep(Duration::from_millis(1)).await;
            assert!(mb.is_empty());
            hh.heal_partitions();
            hh.send(a(1, 0), a(2, 0), 2u32);
            let pkt = mb.recv().await.unwrap();
            assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 2);
        });
        assert_eq!(h.net_stats().dropped, 1);
        assert_eq!(h.net_stats().delivered, 1);
    }

    #[test]
    fn killed_node_drops_traffic_and_closes_mailbox() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            let recv_task = hh.spawn_on(NodeId(3), {
                let mb3 = hh.bind(a(3, 0));
                async move { mb3.recv().await }
            });
            hh.kill_node(NodeId(3));
            // Receiver task aborted; message to node 2 still works.
            hh.send(a(1, 0), a(2, 0), 9u32);
            mb.recv().await.unwrap();
            assert!(!recv_task.is_finished());
            // Sends to the dead node vanish.
            hh.send(a(1, 0), a(3, 0), 1u32);
            hh.sleep(Duration::from_millis(1)).await;
        });
        assert!(h.is_dead(NodeId(3)));
    }

    #[test]
    fn revive_allows_rebinding() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            hh.bind(a(5, 0));
            hh.kill_node(NodeId(5));
            hh.revive_node(NodeId(5));
            let mb = hh.bind(a(5, 0)); // rebinding succeeds after revive
            hh.send(a(1, 0), a(5, 0), 3u32);
            let pkt = mb.recv().await.unwrap();
            assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let _m1 = h.bind(a(1, 0));
        let _m2 = h.bind(a(1, 0));
    }

    #[test]
    fn injected_drops_lose_messages_deterministically() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            let h = sim.handle();
            let hh = h.clone();
            sim.block_on(async move {
                let mb = hh.bind(a(2, 0));
                hh.set_net_faults(NetFaultConfig {
                    drop_prob: 0.5,
                    ..NetFaultConfig::default()
                });
                for i in 0..100u32 {
                    hh.send(a(1, 0), a(2, 0), i);
                }
                hh.sleep(Duration::from_millis(5)).await;
                mb.len()
            })
        };
        let got = run(11);
        assert!(got > 20 && got < 80, "half-ish survive: {got}");
        assert_eq!(got, run(11), "same seed, same drops");
    }

    #[test]
    fn injected_duplicates_deliver_twice() {
        let mut sim = Sim::new(5);
        let h = sim.handle();
        let hh = h.clone();
        let got = sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            hh.set_net_faults(NetFaultConfig {
                dup_prob: 1.0,
                ..NetFaultConfig::default()
            });
            hh.send(a(1, 0), a(2, 0), 7u32);
            hh.sleep(Duration::from_millis(5)).await;
            mb.len()
        });
        assert_eq!(got, 2);
        assert_eq!(h.net_stats().duplicated, 1);
    }

    #[test]
    fn delay_spike_inflates_latency_and_loopback_is_exempt() {
        let mut sim = Sim::new(9);
        let h = sim.handle();
        let hh = h.clone();
        sim.block_on(async move {
            let mb = hh.bind(a(2, 0));
            let lo = hh.bind(a(1, 1));
            hh.set_net_faults(NetFaultConfig {
                delay_spike_prob: 1.0,
                delay_spike: Duration::from_millis(10),
                ..NetFaultConfig::default()
            });
            let t0 = hh.now();
            hh.send(a(1, 0), a(2, 0), 1u32);
            mb.recv().await.unwrap();
            assert!(hh.now() - t0 >= Duration::from_millis(10));
            // Same-node messages bypass injected faults entirely.
            let t1 = hh.now();
            hh.send(a(1, 0), a(1, 1), 2u32);
            lo.recv().await.unwrap();
            assert_eq!(hh.now() - t1, LatencyConfig::default().local);
        });
        assert_eq!(h.net_stats().delay_spiked, 1);
        // clear_net_faults uninstalls.
        h.clear_net_faults();
        assert_eq!(h.net_faults(), None);
    }
}
