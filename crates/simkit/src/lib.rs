//! # simkit — deterministic discrete-event simulation runtime
//!
//! `simkit` is the substrate under the SEMEL/MILANA reproduction: a
//! single-threaded async executor over **virtual time**, plus the pieces a
//! simulated distributed system needs:
//!
//! - [`Sim`] / [`SimHandle`] — executor, virtual clock, task spawning with
//!   per-node ownership (so killing a node aborts its tasks);
//! - [`net`] — a message network with latency distributions, node kill /
//!   revive, and partitions;
//! - [`rpc`] — typed request/response with timeouts on top of [`net`];
//! - [`sync`] — oneshot / mpsc channels and a fair semaphore;
//! - [`rng`] — seeded distribution samplers (normal, exponential, Zipf);
//! - [`metrics`] — an HDR-style histogram for latency accounting.
//!
//! Virtual time advances only when no task is runnable, so a fifteen-minute
//! experiment takes however long its events take to process — and two runs
//! with the same seed produce byte-identical results.
//!
//! # Examples
//!
//! ```
//! use simkit::{Sim, net::{Addr, NodeId}};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(7);
//! let h = sim.handle();
//! let got = sim.block_on(async move {
//!     let mailbox = h.bind(Addr::new(NodeId(1), 0));
//!     h.send(Addr::new(NodeId(0), 0), mailbox.addr(), "hello");
//!     let pkt = mailbox.recv().await.unwrap();
//!     *pkt.payload.downcast::<&str>().unwrap()
//! });
//! assert_eq!(got, "hello");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod rpc;
pub mod sync;
pub mod time;

pub use executor::{Elapsed, JoinHandle, Sim, SimHandle};
pub use time::SimTime;
