//! Single-threaded async synchronization primitives for simulation tasks:
//! [`oneshot`] channels, unbounded [`mpsc`] channels, and a fair
//! [`Semaphore`] (used e.g. to model bounded device queue depth).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned when the other half of a channel is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

impl std::error::Error for Closed {}

/// One-shot value channels.
pub mod oneshot {
    use super::*;

    struct Inner<T> {
        value: Option<T>,
        waker: Option<Waker>,
        sender_dropped: bool,
    }

    /// Sending half; consumes itself on send.
    pub struct Sender<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Receiving half; a future resolving to the sent value.
    pub struct Receiver<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Creates a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Rc::new(RefCell::new(Inner {
            value: None,
            waker: None,
            sender_dropped: false,
        }));
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Delivers `value` to the receiver. Returns the value back if the
        /// receiver was dropped.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut inner = self.inner.borrow_mut();
            if Rc::strong_count(&self.inner) == 1 {
                return Err(value);
            }
            inner.value = Some(value);
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.inner.borrow_mut();
            inner.sender_dropped = true;
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, Closed>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.inner.borrow_mut();
            if let Some(v) = inner.value.take() {
                return Poll::Ready(Ok(v));
            }
            if inner.sender_dropped {
                return Poll::Ready(Err(Closed));
            }
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("oneshot::Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("oneshot::Receiver").finish_non_exhaustive()
        }
    }
}

/// Unbounded multi-producer single-consumer channels.
pub mod mpsc {
    use super::*;

    struct Inner<T> {
        queue: VecDeque<T>,
        waker: Option<Waker>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Rc::new(RefCell::new(Inner {
            queue: VecDeque::new(),
            waker: None,
            senders: 1,
            receiver_alive: true,
        }));
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), T> {
            let mut inner = self.inner.borrow_mut();
            if !inner.receiver_alive {
                return Err(value);
            }
            inner.queue.push_back(value);
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.borrow_mut().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.inner.borrow_mut();
            inner.senders -= 1;
            if inner.senders == 0 {
                if let Some(w) = inner.waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Waits for the next value; `None` once all senders are dropped and
        /// the queue is drained.
        pub fn recv(&self) -> RecvFut<'_, T> {
            RecvFut { rx: self }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.borrow_mut().queue.pop_front()
        }

        /// Queued item count.
        pub fn len(&self) -> usize {
            self.inner.borrow().queue.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.borrow_mut().receiver_alive = false;
        }
    }

    /// Future returned by [`Receiver::recv`].
    #[derive(Debug)]
    pub struct RecvFut<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Future for RecvFut<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.rx.inner.borrow_mut();
            if let Some(v) = inner.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if inner.senders == 0 {
                return Poll::Ready(None);
            }
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("mpsc::Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("mpsc::Receiver")
                .field("len", &self.len())
                .finish()
        }
    }
}

/// A fair (FIFO) async counting semaphore.
///
/// Releases hand permits directly to the longest-waiting acquirer, so a
/// stream of new arrivals cannot starve waiters. Used to model bounded
/// resources such as an SSD's hardware queue depth.
#[derive(Debug)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

#[derive(Debug)]
struct SemInner {
    permits: usize,
    waiters: VecDeque<Rc<RefCell<Waiter>>>,
}

#[derive(Debug)]
struct Waiter {
    granted: bool,
    cancelled: bool,
    waker: Option<Waker>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Acquires one permit, waiting if none is available. The permit is
    /// released when the returned guard is dropped.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone_ref(),
            waiter: None,
        }
    }

    fn clone_ref(&self) -> Semaphore {
        Semaphore {
            inner: self.inner.clone(),
        }
    }

    fn release_one(&self) {
        let mut inner = self.inner.borrow_mut();
        loop {
            match inner.waiters.pop_front() {
                Some(w) => {
                    let mut w = w.borrow_mut();
                    if w.cancelled {
                        continue;
                    }
                    w.granted = true;
                    if let Some(waker) = w.waker.take() {
                        waker.wake();
                    }
                    return;
                }
                None => {
                    inner.permits += 1;
                    return;
                }
            }
        }
    }
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        self.clone_ref()
    }
}

/// Future returned by [`Semaphore::acquire`].
#[derive(Debug)]
pub struct Acquire {
    sem: Semaphore,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.granted {
                drop(w);
                self.waiter = None;
                return Poll::Ready(Permit {
                    sem: self.sem.clone_ref(),
                });
            }
            w.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut inner = self.sem.inner.borrow_mut();
        if inner.permits > 0 && inner.waiters.is_empty() {
            inner.permits -= 1;
            drop(inner);
            return Poll::Ready(Permit {
                sem: self.sem.clone_ref(),
            });
        }
        let w = Rc::new(RefCell::new(Waiter {
            granted: false,
            cancelled: false,
            waker: Some(cx.waker().clone()),
        }));
        inner.waiters.push_back(w.clone());
        drop(inner);
        self.waiter = Some(w);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let mut w = w.borrow_mut();
            if w.granted {
                // We were handed a permit but never consumed it; pass it on.
                drop(w);
                self.sem.release_one();
            } else {
                w.cancelled = true;
            }
        }
    }
}

/// An acquired semaphore permit; releases on drop.
#[derive(Debug)]
pub struct Permit {
    sem: Semaphore,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.release_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::time::Duration;

    #[test]
    fn oneshot_delivers() {
        let mut sim = Sim::new(1);
        let out = sim.block_on(async {
            let (tx, rx) = oneshot::channel();
            tx.send(5u32).unwrap();
            rx.await
        });
        assert_eq!(out, Ok(5));
    }

    #[test]
    fn oneshot_sender_drop_closes() {
        let mut sim = Sim::new(1);
        let out = sim.block_on(async {
            let (tx, rx) = oneshot::channel::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(out, Err(Closed));
    }

    #[test]
    fn oneshot_receiver_drop_rejects_send() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(3), Err(3));
    }

    #[test]
    fn mpsc_preserves_order_and_closes() {
        let mut sim = Sim::new(1);
        let out = sim.block_on(async {
            let (tx, rx) = mpsc::channel();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mpsc_wakes_blocked_receiver() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let out = sim.block_on(async move {
            let (tx, rx) = mpsc::channel();
            let h2 = h.clone();
            h.spawn(async move {
                h2.sleep(Duration::from_millis(1)).await;
                tx.send(42).unwrap();
            });
            rx.recv().await
        });
        assert_eq!(out, Some(42));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let peak = Rc::new(RefCell::new((0usize, 0usize))); // (current, max)
        let sem = Semaphore::new(3);
        let mut handles = Vec::new();
        for _ in 0..10 {
            let sem = sem.clone();
            let peak = peak.clone();
            let h2 = h.clone();
            handles.push(h.spawn(async move {
                let _permit = sem.acquire().await;
                {
                    let mut p = peak.borrow_mut();
                    p.0 += 1;
                    p.1 = p.1.max(p.0);
                }
                h2.sleep(Duration::from_micros(50)).await;
                peak.borrow_mut().0 -= 1;
            }));
        }
        sim.block_on(async move {
            for jh in handles {
                jh.await;
            }
        });
        assert_eq!(peak.borrow().1, 3);
    }

    #[test]
    fn semaphore_is_fifo_fair() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let order = Rc::new(RefCell::new(Vec::new()));
        let sem = Semaphore::new(1);
        let mut handles = Vec::new();
        for i in 0..5 {
            let sem = sem.clone();
            let order = order.clone();
            let h2 = h.clone();
            handles.push(h.spawn(async move {
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                h2.sleep(Duration::from_micros(10)).await;
            }));
        }
        sim.block_on(async move {
            for jh in handles {
                jh.await;
            }
        });
        assert_eq!(order.borrow().clone(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancelled_waiter_does_not_leak_permit() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        let h2 = h.clone();
        sim.block_on(async move {
            let p = sem2.acquire().await;
            // Start a waiter, then cancel it via timeout.
            let waiter = h2.timeout(Duration::from_micros(5), sem2.acquire());
            assert!(waiter.await.is_err());
            drop(p);
            // Semaphore must still grant.
            let _p2 = h2
                .timeout(Duration::from_micros(5), sem2.acquire())
                .await
                .expect("permit available after cancellation");
        });
        // All permits returned once the block's guards drop.
        assert_eq!(sem.available(), 1);
    }
}
