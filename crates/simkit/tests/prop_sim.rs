//! Property-based tests for the simulation substrate: scheduling
//! determinism, timer ordering, histogram accuracy, and semaphore safety.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use proptest::prelude::*;
use simkit::metrics::Histogram;
use simkit::sync::Semaphore;
use simkit::Sim;

proptest! {
    /// Timers always fire in non-decreasing virtual time, regardless of the
    /// order they were created in.
    #[test]
    fn timers_fire_in_time_order(
        delays in proptest::collection::vec(0u64..10_000, 1..100),
    ) {
        let mut sim = Sim::new(7);
        let h = sim.handle();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut joins = Vec::new();
        for d in delays {
            let hh = h.clone();
            let fired = fired.clone();
            joins.push(h.spawn(async move {
                hh.sleep(Duration::from_micros(d)).await;
                fired.borrow_mut().push(hh.now().as_nanos());
            }));
        }
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        let f = fired.borrow();
        for w in f.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {} then {}", w[0], w[1]);
        }
    }

    /// The same seed gives byte-identical random streams and scheduling;
    /// event counts and final clocks match exactly across runs.
    #[test]
    fn identical_seeds_reproduce(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let h = sim.handle();
            let hh = h.clone();
            let out = sim.block_on(async move {
                let mut acc = 0u64;
                for _ in 0..20 {
                    let d = hh.rand_range(1, 1000);
                    hh.sleep(Duration::from_micros(d)).await;
                    acc = acc.wrapping_mul(31).wrapping_add(d);
                }
                acc
            });
            (out, h.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Histogram quantiles stay within the design error bound (~1.6%) of
    /// exact quantiles for arbitrary sample sets.
    #[test]
    fn histogram_quantile_error_is_bounded(
        mut samples in proptest::collection::vec(1u64..1_000_000_000, 10..500),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let idx = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
        let exact = samples[idx.min(samples.len() - 1)] as f64;
        let approx = h.quantile(q) as f64;
        // Log-linear buckets with 64 sub-buckets: ≤ 1/64 relative error,
        // plus clamping to [min, max].
        prop_assert!(
            approx <= exact * 1.02 + 1.0 && approx >= exact * 0.969 - 1.0,
            "q={q} exact={exact} approx={approx}"
        );
    }

    /// Histogram min/mean/max are exact.
    #[test]
    fn histogram_summary_stats_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// A semaphore never over-admits: the number of concurrently held
    /// permits never exceeds the capacity, for arbitrary task/hold patterns.
    #[test]
    fn semaphore_never_over_admits(
        permits in 1usize..6,
        holds in proptest::collection::vec(1u64..200, 1..60),
    ) {
        let mut sim = Sim::new(11);
        let h = sim.handle();
        let sem = Semaphore::new(permits);
        let peak = Rc::new(RefCell::new((0usize, 0usize)));
        let mut joins = Vec::new();
        for d in holds {
            let sem = sem.clone();
            let hh = h.clone();
            let peak = peak.clone();
            joins.push(h.spawn(async move {
                let _p = sem.acquire().await;
                {
                    let mut pk = peak.borrow_mut();
                    pk.0 += 1;
                    pk.1 = pk.1.max(pk.0);
                }
                hh.sleep(Duration::from_micros(d)).await;
                peak.borrow_mut().0 -= 1;
            }));
        }
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        let max_held = peak.borrow().1;
        prop_assert!(max_held <= permits, "held {max_held} > permits {permits}");
        prop_assert_eq!(sem.available(), permits, "permits leaked");
    }

    /// Zipf sampling always stays in range and is deterministic per seed.
    #[test]
    fn zipf_in_range_and_deterministic(
        n in 1usize..10_000,
        alpha in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let z = simkit::rng::Zipf::new(n, alpha);
        let draw = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..32).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(seed);
        for &r in &a {
            prop_assert!(r < n);
        }
        prop_assert_eq!(a, draw(seed));
    }
}
