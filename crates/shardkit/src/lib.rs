//! shardkit — elastic resharding for the MILANA reproduction.
//!
//! A [`RebalanceEngine`] executes one [`RebalancePlan`] (split a hot shard
//! by one hash bit, or move a whole shard to a fresh replica group) as a
//! deterministic state machine:
//!
//! 1. **Prepare** — the destination group is already provisioned by the
//!    harness; the engine installs the `Migrating` marker (epoch bump) in
//!    the master's authoritative map *and* the servers' shared view, then
//!    tells the source primary to start dual-applying moving commits.
//! 2. **Copy** — the engine streams every version-stamped record of the
//!    moving key set to all destination replicas through [`batchkit`]
//!    envelopes. Stamps carry the order, so envelopes are idempotent and
//!    freely retransmitted; pacing (`rebalance.copy_interval`) keeps the
//!    bulk plane from starving foreground traffic.
//! 3. **CatchUp** — incremental sweeps re-copy versions written since the
//!    previous sweep until a sweep moves at most
//!    `rebalance.catchup_threshold` records (or the round cap hits).
//! 4. **Cutover** — the source is fenced (new prepares on moving keys vote
//!    `StaleEpoch`), the engine polls until no prepared-but-undecided
//!    moving transaction remains *and* every decided one is applied, runs
//!    one final **full** sweep (correctness does not depend on catch-up
//!    cursors), flips the map (second epoch bump), and notifies source
//!    then destination. The source answers `Moved{epoch}` for one
//!    forwarding term.
//! 5. **Done** — after the forwarding term the source garbage-collects the
//!    moved keys.
//!
//! Every phase transition is traced as [`obskit::TraceEvent::MigrationStep`]
//! and exposed to fault-injection campaigns through a phase hook, so
//! crashes and partitions can be aimed at any point of the protocol. The
//! ownership claims the servers emit (`ShardOwned` / `ShardReleased`) let
//! faultkit's checker prove no two primaries ever served the same shard
//! at overlapping times.

use perfkit::FastMap;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use batchkit::{BatchConfig, Batcher};
use flashsim::{Backend, Key, Value};
use milana::{TxnRequest, TxnResponse};
use obskit::{MigrationPhase, Obs, TraceEvent};
use semel::master::Master;
use semel::shard::{ReplicaGroup, ShardId, ShardMap};
pub use semel::spec::RebalanceSpec;
use simkit::net::{Addr, NodeId};
use simkit::rpc::RpcClient;
use simkit::SimHandle;
use timesync::{Timestamp, Version};

/// One resharding action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalancePlan {
    /// Split `from` by the next hash bit; keys whose hash has that bit set
    /// reroute to a brand-new shard id served by the destination group.
    Split {
        /// The (hot) shard being split.
        from: ShardId,
    },
    /// Move every key of `shard` to the destination group; the shard id is
    /// unchanged, only its serving group is.
    Move {
        /// The shard being moved.
        shard: ShardId,
    },
}

/// What one executed plan did, for benches and assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct RebalanceReport {
    /// Plan id (engine-local, monotonically increasing).
    pub plan: u64,
    /// Destination shard id (the new shard for a split, the moved shard
    /// for a move).
    pub to: u64,
    /// Records shipped over the copy plane (all sweeps, all replicas
    /// counted once per record, not per replica).
    pub records_copied: u64,
    /// Payload bytes shipped (values only, counted like `records_copied`).
    pub bytes_copied: u64,
    /// Catch-up sweeps run (excludes the initial copy and the final
    /// cutover sweep).
    pub catchup_rounds: u32,
    /// Map epoch after cutover.
    pub final_epoch: u64,
}

/// Called at the start of every phase — fault campaigns hook this to aim
/// crashes and partitions at specific protocol steps.
pub type PhaseHook = Rc<dyn Fn(MigrationPhase)>;

/// A source replica the engine may bulk-read from: its service address and
/// its storage handle (persistent memory survives the node, exactly like
/// the recovery paths read it).
pub type SourceReplica = (Addr, Backend);

/// The master-side migration driver. One engine serves a deployment and
/// can run plans back to back (never concurrently).
pub struct RebalanceEngine {
    handle: SimHandle,
    rpc: RpcClient,
    /// The servers' shared map view. With a master this is *not* the
    /// authoritative copy — [`RebalanceEngine::install`] mutates both in
    /// the same step so their epochs stay in lock step.
    map: Rc<RefCell<ShardMap>>,
    master: Option<Master>,
    spec: RebalanceSpec,
    obs: Obs,
    hook: RefCell<Option<PhaseHook>>,
    planes: RefCell<FastMap<Addr, Batcher<TxnRequest, TxnResponse>>>,
    node: NodeId,
    next_plan: Cell<u64>,
}

impl std::fmt::Debug for RebalanceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebalanceEngine")
            .field("node", &self.node)
            .field("next_plan", &self.next_plan.get())
            .finish()
    }
}

/// Engine service port on its node (distinct from the master's port 4).
pub const ENGINE_PORT: u16 = 48;

impl RebalanceEngine {
    /// Creates an engine issuing RPCs from `node` (typically the master's
    /// node). `master` is `None` for harness-driven deployments where the
    /// shared map *is* the authoritative map.
    pub fn new(
        handle: &SimHandle,
        node: NodeId,
        map: Rc<RefCell<ShardMap>>,
        master: Option<Master>,
        spec: RebalanceSpec,
        obs: Obs,
    ) -> RebalanceEngine {
        RebalanceEngine {
            handle: handle.clone(),
            rpc: RpcClient::new(handle, node, ENGINE_PORT),
            map,
            master,
            spec,
            obs,
            hook: RefCell::new(None),
            planes: RefCell::new(FastMap::default()),
            node,
            next_plan: Cell::new(0),
        }
    }

    /// Installs a phase hook; fault campaigns use it to inject crashes and
    /// partitions at exact protocol steps.
    pub fn set_phase_hook(&self, hook: PhaseHook) {
        *self.hook.borrow_mut() = Some(hook);
    }

    /// Executes `plan`: the destination group must already be provisioned
    /// (its servers running, its storage empty) — e.g. by
    /// `MilanaCluster::provision_group`. `sources` are the source shard's
    /// replicas; the engine bulk-reads from whichever one the map says is
    /// primary. Returns when the source has garbage-collected the moved
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if another migration is already pending in the map.
    pub async fn run(
        &self,
        plan: RebalancePlan,
        dest: ReplicaGroup,
        sources: Vec<SourceReplica>,
    ) -> RebalanceReport {
        let plan_id = self.next_plan.get();
        self.next_plan.set(plan_id + 1);
        let from = match plan {
            RebalancePlan::Split { from } => from,
            RebalancePlan::Move { shard } => shard,
        };

        // Phase 1: Prepare — mark the map Migrating (epoch bump) in both
        // views, then arm dual-apply at the source primary.
        self.phase(MigrationPhase::Prepare);
        let (to, epoch) = match plan {
            RebalancePlan::Split { from } => {
                let d = dest.clone();
                self.install(move |m| m.begin_split(from, d.clone()))
            }
            RebalancePlan::Move { shard } => {
                let d = dest.clone();
                self.install(move |m| {
                    m.begin_move(shard, d.clone());
                    shard
                })
            }
        };
        self.step(plan_id, MigrationPhase::Prepare, from, to, epoch);
        self.acked_source(
            from,
            TxnRequest::MigrationStart {
                from,
                to,
                epoch,
                dest: dest.all(),
            },
        )
        .await;

        let mut report = RebalanceReport {
            plan: plan_id,
            to: to.0 as u64,
            ..RebalanceReport::default()
        };

        // Phase 2: Copy — full sweep of every moving version.
        self.phase(MigrationPhase::Copy);
        self.step(plan_id, MigrationPhase::Copy, from, to, epoch);
        // Sweep cursors are client-domain timestamps; pad by a skew bound
        // so a sweep never misses a version stamped by a fast clock.
        // Correctness never depends on this — the cutover sweep is full.
        let margin = Duration::from_millis(10);
        let mut cursor = Timestamp::ZERO;
        let mut next_cursor = Timestamp::from_sim(self.handle.now()).before(margin);
        self.sweep(from, &dest, &sources, cursor, plan_id, &mut report)
            .await;

        // Phase 3: CatchUp — incremental sweeps until the delta is small.
        self.phase(MigrationPhase::CatchUp);
        self.step(plan_id, MigrationPhase::CatchUp, from, to, epoch);
        for _ in 0..self.spec.max_catchup_rounds {
            cursor = next_cursor;
            next_cursor = Timestamp::from_sim(self.handle.now()).before(margin);
            let moved = self
                .sweep(from, &dest, &sources, cursor, plan_id, &mut report)
                .await;
            report.catchup_rounds += 1;
            if moved as usize <= self.spec.catchup_threshold {
                break;
            }
        }

        // Phase 4: Cutover — fence, drain, final full sweep, flip, notify.
        self.phase(MigrationPhase::Cutover);
        self.acked_source(from, TxnRequest::MigrationFence).await;
        loop {
            match self.call_source(from, TxnRequest::MigrationDrain).await {
                Some(TxnResponse::Drained { pending: 0 }) => break,
                _ => self.handle.sleep(self.spec.drain_poll).await,
            }
        }
        // Full sweep: after fence+drain the moving set is final, so one
        // complete pass guarantees the destination holds every version
        // regardless of what the cursored sweeps saw.
        self.sweep(from, &dest, &sources, Timestamp::ZERO, plan_id, &mut report)
            .await;
        // Capture the source primary *before* the flip: a whole-shard move
        // replaces `group(from)` with the destination group, so resolving
        // through the flipped map would deliver the source's cutover to
        // the destination and never clear the source's migration state.
        let src_primary = self.map.borrow().group(from).primary;
        let ((), epoch) = self.install(|m| m.cutover());
        self.step(plan_id, MigrationPhase::Cutover, from, to, epoch);
        report.final_epoch = epoch;
        // Source first: it must start answering Moved before the
        // destination claims ownership, so the fault checker's
        // released-before-owned ordering holds even under retries.
        self.acked(src_primary, TxnRequest::MigrationCutover { to, epoch })
            .await;
        self.acked(dest.primary, TxnRequest::MigrationCutover { to, epoch })
            .await;

        // Phase 5: Done — forwarding term, then GC at the source replicas.
        self.phase(MigrationPhase::Done);
        self.handle.sleep(self.spec.forward_term).await;
        for &(addr, _) in &sources {
            self.acked(addr, TxnRequest::MigrationGc).await;
        }
        self.step(plan_id, MigrationPhase::Done, from, to, epoch);
        report
    }

    /// Applies one map mutation to the servers' shared view and (when a
    /// master runs) to the authoritative map, returning the mutation's
    /// result and the new epoch. Without a master the install is traced
    /// here so artifacts look the same either way.
    fn install<R>(&self, f: impl Fn(&mut ShardMap) -> R) -> (R, u64) {
        let out = f(&mut self.map.borrow_mut());
        match &self.master {
            Some(master) => {
                let (_, epoch) = master.install_map(|m| {
                    f(m);
                });
                (out, epoch)
            }
            None => {
                let (epoch, shards) = {
                    let m = self.map.borrow();
                    (m.epoch(), m.len() as u64)
                };
                self.obs.registry.counter("map_installs").inc();
                self.obs.tracer.record(
                    self.handle.now().as_nanos(),
                    TraceEvent::MapInstall { epoch, shards },
                );
                (out, epoch)
            }
        }
    }

    /// One copy sweep: reads every moving `(key, value, version)` triple
    /// with `version.ts >= cursor` from the source primary's storage and
    /// ships it to every destination replica, `copy_batch` records per
    /// envelope, pacing envelopes by `copy_interval`. Returns the number
    /// of records shipped.
    async fn sweep(
        &self,
        from: ShardId,
        dest: &ReplicaGroup,
        sources: &[SourceReplica],
        cursor: Timestamp,
        plan_id: u64,
        report: &mut RebalanceReport,
    ) -> u64 {
        let backend = self.source_backend(from, sources);
        let mut moved = 0u64;
        let mut chunk: Vec<(Key, Value, Version)> = Vec::new();
        for key in backend.keys() {
            if !self.map.borrow().key_is_moving(&key) {
                continue;
            }
            for v in backend.versions(&key) {
                if v.ts < cursor {
                    continue;
                }
                let Ok(vv) = backend.get_at(&key, v.ts).await else {
                    continue;
                };
                // A same-timestamp tie shadows the loser forever (reads at
                // any timestamp resolve to the winner), so skipping it
                // loses nothing observable.
                if vv.version != v {
                    continue;
                }
                chunk.push((key.clone(), vv.value, v));
                moved += 1;
                if chunk.len() >= self.spec.copy_batch.max(1) {
                    self.ship(dest, std::mem::take(&mut chunk), plan_id, report)
                        .await;
                    self.handle.sleep(self.spec.copy_interval).await;
                }
            }
        }
        if !chunk.is_empty() {
            self.ship(dest, chunk, plan_id, report).await;
        }
        moved
    }

    /// Ships one record chunk to every destination replica over the
    /// batchkit copy plane, retrying each replica until it acks. All
    /// replicas must hold the records — `MigrateRecords` bypasses the
    /// transaction table, so a destination backup that missed them could
    /// be promoted into a primary with holes.
    async fn ship(
        &self,
        dest: &ReplicaGroup,
        records: Vec<(Key, Value, Version)>,
        plan_id: u64,
        report: &mut RebalanceReport,
    ) {
        let n = records.len() as u64;
        let bytes: u64 = records.iter().map(|(_, v, _)| v.len() as u64).sum();
        for addr in dest.all() {
            loop {
                let req = TxnRequest::MigrateRecords {
                    records: records.clone(),
                };
                match self.plane(addr).submit(req).await {
                    Some(TxnResponse::Ack) => break,
                    _ => self.handle.sleep(self.spec.drain_poll).await,
                }
            }
        }
        report.records_copied += n;
        report.bytes_copied += bytes;
        self.obs.registry.counter("migration_records_moved").add(n);
        self.obs
            .registry
            .counter("migration_bytes_moved")
            .add(bytes);
        self.obs.tracer.record(
            self.handle.now().as_nanos(),
            TraceEvent::MigrationCopy {
                plan: plan_id,
                records: n,
                bytes,
            },
        );
    }

    /// The batchkit envelope plane to one destination replica, created on
    /// first use. Each envelope is one coalesced `Batch` RPC.
    fn plane(&self, addr: Addr) -> Batcher<TxnRequest, TxnResponse> {
        if let Some(b) = self.planes.borrow().get(&addr) {
            return b.clone();
        }
        let rpc = self.rpc.clone();
        let timeout = self.spec.rpc_timeout;
        let cfg = BatchConfig {
            batch_max: 4,
            batch_deadline: self.spec.copy_interval,
        };
        let batcher = Batcher::new(
            &self.handle,
            self.node,
            "migrate",
            cfg,
            self.obs.clone(),
            move |items: Vec<TxnRequest>| {
                let rpc = rpc.clone();
                async move {
                    rpc.call_batch::<TxnRequest, TxnResponse>(addr, items, timeout)
                        .await
                        .unwrap_or_default()
                }
            },
        );
        self.planes.borrow_mut().insert(addr, batcher.clone());
        batcher
    }

    /// The storage handle of `from`'s *current* primary (failover-aware):
    /// persistent memory outlives the node, so bulk reads work even while
    /// the node itself is down.
    fn source_backend(&self, from: ShardId, sources: &[SourceReplica]) -> Backend {
        let primary = self.map.borrow().group(from).primary;
        sources
            .iter()
            .find(|(a, _)| *a == primary)
            .or_else(|| sources.first())
            .map(|(_, b)| b.clone())
            .expect("at least one source replica")
    }

    /// Sends `req` to `from`'s current primary (re-resolved per attempt)
    /// until it answers `Ack`. Control messages are idempotent, so blind
    /// retries across crashes, partitions and failovers are safe.
    async fn acked_source(&self, from: ShardId, req: TxnRequest) {
        loop {
            let primary = self.map.borrow().group(from).primary;
            match self
                .rpc
                .call::<TxnRequest, TxnResponse>(primary, req.clone(), self.spec.rpc_timeout)
                .await
            {
                Ok(TxnResponse::Ack) => return,
                _ => self.handle.sleep(self.spec.drain_poll).await,
            }
        }
    }

    /// Sends `req` to a fixed address until it answers `Ack`.
    async fn acked(&self, addr: Addr, req: TxnRequest) {
        loop {
            match self
                .rpc
                .call::<TxnRequest, TxnResponse>(addr, req.clone(), self.spec.rpc_timeout)
                .await
            {
                Ok(TxnResponse::Ack) => return,
                _ => self.handle.sleep(self.spec.drain_poll).await,
            }
        }
    }

    /// One call to `from`'s current primary; `None` on timeout.
    async fn call_source(&self, from: ShardId, req: TxnRequest) -> Option<TxnResponse> {
        let primary = self.map.borrow().group(from).primary;
        self.rpc
            .call::<TxnRequest, TxnResponse>(primary, req, self.spec.rpc_timeout)
            .await
            .ok()
    }

    fn phase(&self, phase: MigrationPhase) {
        if let Some(hook) = self.hook.borrow().clone() {
            hook(phase);
        }
    }

    fn step(&self, plan: u64, phase: MigrationPhase, from: ShardId, to: ShardId, epoch: u64) {
        self.obs.tracer.record(
            self.handle.now().as_nanos(),
            TraceEvent::MigrationStep {
                plan,
                phase,
                from: from.0 as u64,
                to: to.0 as u64,
                epoch,
            },
        );
    }
}

#[cfg(test)]
mod tests;
