//! End-to-end resharding tests on a simulated MILANA cluster.

use flashsim::{value, Key, NandConfig};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig, MASTER_NODE};
use semel::shard::ShardId;
use simkit::Sim;
use timesync::ClockSpec;

use crate::{RebalanceEngine, RebalancePlan, RebalanceSpec, SourceReplica};

fn nand() -> NandConfig {
    NandConfig {
        blocks: 128,
        pages_per_block: 8,
        ..NandConfig::default()
    }
}

fn base_cfg() -> MilanaClusterConfig {
    MilanaClusterConfig {
        shards: 2,
        replicas: 3,
        clients: 2,
        nand: nand(),
        preload_keys: 200,
        clock: ClockSpec::perfect(),
        ..MilanaClusterConfig::default()
    }
}

fn k(i: u64) -> Key {
    Key::from(i)
}

fn engine_for(cluster: &MilanaCluster, h: &simkit::SimHandle) -> RebalanceEngine {
    RebalanceEngine::new(
        h,
        MASTER_NODE,
        cluster.map.clone(),
        cluster.master.clone(),
        RebalanceSpec::default(),
        cluster.config.tuning.obs.clone(),
    )
}

fn sources_for(cluster: &MilanaCluster, shard: ShardId) -> Vec<SourceReplica> {
    cluster.replicas[shard.0 as usize]
        .iter()
        .map(|s| (s.addr, s.server.backend().clone()))
        .collect()
}

#[test]
fn split_preserves_data_and_reroutes() {
    let mut sim = Sim::new(901);
    let h = sim.handle();
    let mut cluster = MilanaCluster::build(&h, base_cfg());
    let eng = engine_for(&cluster, &h);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Commit fresh versions over a spread of preloaded keys.
        for i in 0..40u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(i)).await.unwrap();
            t.put(k(i), value(vec![i as u8; 16]));
            t.commit().await.unwrap();
        }

        let from = ShardId(0);
        let epoch0 = cluster.map.borrow().epoch();
        let new_shard = ShardId(cluster.map.borrow().len() as u32);
        let dest = cluster.provision_group(new_shard);
        let sources = sources_for(&cluster, from);
        let report = eng
            .run(RebalancePlan::Split { from }, dest.clone(), sources)
            .await;

        // The split created shard 2, bumped the epoch twice, and moved data.
        let map = cluster.map.borrow().clone();
        assert_eq!(map.len(), 3);
        assert_eq!(report.final_epoch, epoch0 + 2);
        assert!(report.records_copied > 0, "no records copied");
        let moved: Vec<Key> = (0..200u64)
            .map(k)
            .filter(|key| map.shard_for(key) == ShardId(2))
            .collect();
        assert!(!moved.is_empty(), "split moved no keys");

        // Every committed value reads back correctly through the new map.
        for i in 0..40u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let got = t.get(&k(i)).await.unwrap();
            assert_eq!(got, value(vec![i as u8; 16]), "key {i} lost its value");
        }

        // Moved keys live on the new group and are GC'd from the source.
        let dest_backend = cluster.primary(ShardId(2)).backend().clone();
        let src_backend = cluster.primary(from).backend().clone();
        for key in &moved {
            assert!(
                !dest_backend.versions(key).is_empty(),
                "moved key missing at destination"
            );
            assert!(
                src_backend.versions(key).is_empty(),
                "moved key not GC'd at source"
            );
        }
    });
}

#[test]
fn concurrent_writes_survive_split() {
    let mut sim = Sim::new(902);
    let h = sim.handle();
    let hh = h.clone();
    let mut cluster = MilanaCluster::build(&h, base_cfg());
    let eng = engine_for(&cluster, &h);
    sim.block_on(async move {
        let from = ShardId(0);
        let new_shard = ShardId(cluster.map.borrow().len() as u32);
        let dest = cluster.provision_group(new_shard);
        let sources = sources_for(&cluster, from);

        // A writer hammers a small hot set while the migration runs,
        // recording the last value it *committed* per key. StaleEpoch
        // aborts at the fence are expected; the writer just retries.
        let c = cluster.clients[0].clone();
        let writer = hh.spawn(async move {
            let mut committed = vec![None::<u64>; 8];
            for round in 0..60u64 {
                let i = round % 8;
                let mut t = c.begin_with(TxnOpts::default());
                let _ = t.get(&k(i)).await;
                t.put(k(i), value(round.to_le_bytes().to_vec()));
                if t.commit().await.is_ok() {
                    committed[i as usize] = Some(round);
                }
            }
            committed
        });

        let report = eng.run(RebalancePlan::Split { from }, dest, sources).await;
        let committed = writer.await;

        assert!(report.records_copied > 0);
        let c = cluster.clients[1].clone();
        for (i, want) in committed.iter().enumerate() {
            let Some(round) = want else { continue };
            let mut t = c.begin_with(TxnOpts::default());
            let got = t.get(&k(i as u64)).await.unwrap();
            assert_eq!(
                got,
                value(round.to_le_bytes().to_vec()),
                "key {i}: committed write lost across the split"
            );
        }
    });
}

#[test]
fn move_shard_evicts_source_group() {
    let mut sim = Sim::new(903);
    let h = sim.handle();
    let mut cluster = MilanaCluster::build(&h, base_cfg());
    let eng = engine_for(&cluster, &h);
    sim.block_on(async move {
        let shard = ShardId(1);
        let old_group = cluster.map.borrow().group(shard).clone();
        let dest = cluster.provision_group(shard);
        let sources = sources_for(&cluster, shard);
        let report = eng
            .run(RebalancePlan::Move { shard }, dest.clone(), sources)
            .await;

        // Routing flipped to the provisioned group; the shard id is the
        // same, only its serving replicas changed.
        let map = cluster.map.borrow().clone();
        assert_eq!(map.len(), 2);
        assert_eq!(map.group(shard).primary, dest.primary);
        assert!(report.records_copied > 0);

        // Reads flow through the new group.
        let c = cluster.clients[0].clone();
        let mut found = 0;
        for i in 0..200u64 {
            if map.shard_for(&k(i)) != shard {
                continue;
            }
            let mut t = c.begin_with(TxnOpts::default());
            t.get(&k(i)).await.unwrap();
            found += 1;
        }
        assert!(found > 0, "no keys routed to the moved shard");

        // The evicted group dropped everything at GC.
        let old_primary = cluster
            .replicas
            .iter()
            .flatten()
            .find(|s| s.addr == old_group.primary)
            .unwrap();
        assert!(
            old_primary.server.backend().keys().is_empty(),
            "old group kept data after eviction"
        );
    });
}

#[test]
fn auto_failover_clients_refetch_across_split() {
    let mut sim = Sim::new(904);
    let h = sim.handle();
    let mut cluster = MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            auto_failover: true,
            ..base_cfg()
        },
    );
    let eng = engine_for(&cluster, &h);
    let hh = h.clone();
    sim.block_on(async move {
        let from = ShardId(0);
        let new_shard = ShardId(cluster.map.borrow().len() as u32);
        let dest = cluster.provision_group(new_shard);
        let sources = sources_for(&cluster, from);
        eng.run(RebalancePlan::Split { from }, dest, sources).await;

        // Clients still hold pre-split private maps; their first writes to
        // moved keys draw StaleEpoch / Moved, refetch from the master, and
        // succeed on retry.
        let map = cluster.map.borrow().clone();
        let moved: Vec<u64> = (0..200u64)
            .filter(|i| map.shard_for(&k(*i)) == ShardId(2))
            .take(5)
            .collect();
        assert!(!moved.is_empty());
        let c = cluster.clients[0].clone();
        for (n, i) in moved.iter().enumerate() {
            let mut ok = false;
            for _ in 0..4 {
                let mut t = c.begin_with(TxnOpts::default());
                if t.get(&k(*i)).await.is_err() {
                    continue;
                }
                t.put(k(*i), value(vec![n as u8 + 1; 8]));
                if t.commit().await.is_ok() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "write to moved key {i} never committed");
            // The commit outcome is cast fire-and-forget; give the backend
            // apply a moment before asserting read-your-writes.
            hh.sleep(std::time::Duration::from_millis(5)).await;
            let mut t = c.begin_with(TxnOpts::default());
            let got = t.get(&k(*i)).await.unwrap();
            assert_eq!(got, value(vec![n as u8 + 1; 8]));
        }
    });
}
