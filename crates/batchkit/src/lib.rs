//! # batchkit — deterministic size-or-deadline batching
//!
//! The paper's precision-time design removes ordering work from the hot
//! path (version stamps make delivery order irrelevant, SEMEL §3.2), but
//! the reproduction still paid a full RPC per replicated write and one
//! Prepare envelope per shard per transaction. `batchkit` is the shared
//! coalescing plane: a [`Batcher`] accumulates homogeneous items and
//! flushes them as one unit when either `batch_max` items are pending or
//! `batch_deadline` has elapsed since the first pending item — whichever
//! comes first.
//!
//! Everything is driven by `simkit` virtual timers, so batching is fully
//! deterministic: the same seed produces the same flush boundaries, batch
//! sizes, and registry snapshots, byte for byte.
//!
//! ## Design notes
//!
//! - The flush callback receives the drained items and returns one result
//!   per item, **in item order**. [`Batcher::submit`] resolves to that
//!   item's result; arity mismatches resolve waiters to `None` (the same
//!   contract as an RPC timeout, so callers already handle it).
//! - The deadline timer is spawned with `spawn_on(node, ..)` so it dies
//!   with the owning node: a killed primary cannot leak a flush into its
//!   next incarnation.
//! - Per-batch observability: a `batchkit.<name>.batch_size` histogram
//!   plus `flush_size` / `flush_deadline` / `flush_manual` counters, and a
//!   [`TraceEvent::BatchFlush`] event when tracing is on.
//!
//! # Examples
//!
//! ```
//! use batchkit::{BatchConfig, Batcher};
//! use simkit::{net::NodeId, Sim};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(7);
//! let h = sim.handle();
//! let batcher: Batcher<u32, u32> = Batcher::new(
//!     &h,
//!     NodeId(0),
//!     "doubler",
//!     BatchConfig { batch_max: 2, batch_deadline: Duration::from_micros(100) },
//!     obskit::Obs::new(),
//!     |items| async move { items.into_iter().map(|x| x * 2).collect() },
//! );
//! let b = batcher.clone();
//! let got = sim.block_on(async move {
//!     let a = b.submit(1);
//!     let c = b.submit(2); // second item hits batch_max: size flush
//!     (a.await, c.await)
//! });
//! assert_eq!(got, (Some(2), Some(4)));
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use obskit::registry::{Counter, HistogramHandle};
use obskit::trace::FlushReason;
use obskit::{Obs, TraceEvent};
use simkit::net::NodeId;
use simkit::sync::oneshot;
use simkit::SimHandle;

/// Knobs for one [`Batcher`]: flush at `batch_max` pending items or
/// `batch_deadline` after the first pending item, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many items are pending. `1` disables
    /// coalescing: every submit flushes immediately (the unbatched
    /// baseline, used by the regression tests).
    pub batch_max: usize,
    /// Flush this long after the first item of a batch arrived, even if
    /// the batch is not full. Bounds the latency a batched item can pay
    /// for waiting on peers.
    pub batch_deadline: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            batch_max: 8,
            batch_deadline: Duration::from_micros(100),
        }
    }
}

impl BatchConfig {
    /// A config that never coalesces: each item flushes on submit.
    pub fn unbatched() -> BatchConfig {
        BatchConfig {
            batch_max: 1,
            batch_deadline: Duration::ZERO,
        }
    }
}

type FlushFn<T, R> = Rc<dyn Fn(Vec<T>) -> Pin<Box<dyn Future<Output = Vec<R>>>>>;

struct Pending<T, R> {
    items: Vec<(T, Option<oneshot::Sender<R>>)>,
    /// Bumped on every flush; the deadline timer only fires the epoch it
    /// was armed for, so a size flush cancels the pending timer logically.
    epoch: u64,
}

struct Shared<T, R> {
    handle: SimHandle,
    node: NodeId,
    cfg: BatchConfig,
    flush: FlushFn<T, R>,
    pending: RefCell<Pending<T, R>>,
    obs: Obs,
    batch_size: HistogramHandle,
    flush_size: Counter,
    flush_deadline: Counter,
    flush_manual: Counter,
}

/// A deterministic size-or-deadline accumulator.
///
/// Cloning is cheap and shares the pending queue; a batcher is typically
/// cloned into every task that submits to it.
pub struct Batcher<T, R> {
    shared: Rc<Shared<T, R>>,
}

impl<T, R> Clone for Batcher<T, R> {
    fn clone(&self) -> Batcher<T, R> {
        Batcher {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T, R> std::fmt::Debug for Batcher<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("node", &self.shared.node)
            .field("cfg", &self.shared.cfg)
            .field("pending", &self.shared.pending.borrow().items.len())
            .finish()
    }
}

impl<T: 'static, R: 'static> Batcher<T, R> {
    /// Creates a batcher owned by `node`. `name` scopes the metrics
    /// (`batchkit.<name>.*`); `flush` maps a drained batch to one result
    /// per item, in order (e.g. one coalesced RPC).
    pub fn new<F, Fut>(
        handle: &SimHandle,
        node: NodeId,
        name: &str,
        cfg: BatchConfig,
        obs: Obs,
        flush: F,
    ) -> Batcher<T, R>
    where
        F: Fn(Vec<T>) -> Fut + 'static,
        Fut: Future<Output = Vec<R>> + 'static,
    {
        let cfg = BatchConfig {
            batch_max: cfg.batch_max.max(1),
            ..cfg
        };
        let reg = &obs.registry;
        Batcher {
            shared: Rc::new(Shared {
                handle: handle.clone(),
                node,
                cfg,
                flush: Rc::new(move |items| Box::pin(flush(items))),
                pending: RefCell::new(Pending {
                    items: Vec::new(),
                    epoch: 0,
                }),
                batch_size: reg.histogram(&format!("batchkit.{name}.batch_size")),
                flush_size: reg.counter(&format!("batchkit.{name}.flush_size")),
                flush_deadline: reg.counter(&format!("batchkit.{name}.flush_deadline")),
                flush_manual: reg.counter(&format!("batchkit.{name}.flush_manual")),
                obs,
            }),
        }
    }

    /// The configured knobs (after clamping `batch_max >= 1`).
    pub fn config(&self) -> BatchConfig {
        self.shared.cfg
    }

    /// Number of items currently waiting for a flush.
    pub fn pending(&self) -> usize {
        self.shared.pending.borrow().items.len()
    }

    /// Enqueues `item` and resolves to its per-item result once the batch
    /// it lands in has flushed. `None` means the flush produced no result
    /// for this item (callback arity mismatch, or the batcher's node died)
    /// — the same "unknown outcome" contract as an RPC timeout.
    pub fn submit(&self, item: T) -> impl Future<Output = Option<R>> {
        let (tx, rx) = oneshot::channel();
        self.push(item, Some(tx));
        async move { rx.await.ok() }
    }

    /// Enqueues `item` without waiting for a result (fire-and-forget
    /// control traffic: outcomes, watermarks).
    pub fn submit_nowait(&self, item: T) {
        self.push(item, None);
    }

    /// Flushes whatever is pending right now, without waiting for size or
    /// deadline. A no-op when nothing is pending.
    pub fn flush_now(&self) {
        self.flush(FlushReason::Manual);
    }

    fn push(&self, item: T, tx: Option<oneshot::Sender<R>>) {
        let (arm_timer, epoch) = {
            let mut p = self.shared.pending.borrow_mut();
            let was_empty = p.items.is_empty();
            p.items.push((item, tx));
            (was_empty, p.epoch)
        };
        if self.shared.pending.borrow().items.len() >= self.shared.cfg.batch_max {
            self.flush(FlushReason::Size);
        } else if arm_timer {
            let me = self.clone();
            self.shared.handle.spawn_on(self.shared.node, async move {
                me.shared.handle.sleep(me.shared.cfg.batch_deadline).await;
                let live = me.shared.pending.borrow().epoch == epoch;
                if live {
                    me.flush(FlushReason::Deadline);
                }
            });
        }
    }

    fn flush(&self, reason: FlushReason) {
        let batch = {
            let mut p = self.shared.pending.borrow_mut();
            if p.items.is_empty() {
                return;
            }
            p.epoch += 1;
            std::mem::take(&mut p.items)
        };
        let s = &self.shared;
        s.batch_size.record(batch.len() as u64);
        match reason {
            FlushReason::Size => s.flush_size.inc(),
            FlushReason::Deadline => s.flush_deadline.inc(),
            FlushReason::Manual => s.flush_manual.inc(),
        }
        s.obs.tracer.record(
            s.handle.now().as_nanos(),
            TraceEvent::BatchFlush {
                node: u64::from(s.node.0),
                size: batch.len() as u64,
                reason,
            },
        );
        let flush = Rc::clone(&s.flush);
        s.handle.spawn_on(s.node, async move {
            let (items, waiters): (Vec<T>, Vec<Option<oneshot::Sender<R>>>) =
                batch.into_iter().unzip();
            let results = flush(items).await;
            // Zip results back to waiters; a short result vector leaves the
            // tail's senders dropped, which resolves those waiters to None.
            for (r, tx) in results.into_iter().zip(waiters) {
                if let Some(tx) = tx {
                    let _ = tx.send(r);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;

    fn doubler(sim: &Sim, cfg: BatchConfig, obs: Obs) -> Batcher<u32, u32> {
        let h = sim.handle();
        Batcher::new(
            &h,
            NodeId(0),
            "test",
            cfg,
            obs,
            |items: Vec<u32>| async move { items.into_iter().map(|x| x * 2).collect() },
        )
    }

    #[test]
    fn size_flush_resolves_all_waiters_in_order() {
        let mut sim = Sim::new(1);
        let obs = Obs::new();
        let b = doubler(&sim, BatchConfig::default(), obs.clone());
        let got = sim.block_on(async move {
            let futs: Vec<_> = (0..8).map(|i| b.submit(i)).collect();
            let mut out = Vec::new();
            for f in futs {
                out.push(f.await.unwrap());
            }
            out
        });
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains("\"batchkit.test.flush_size\":1"), "{snap}");
    }

    #[test]
    fn deadline_flush_fires_for_partial_batch() {
        let mut sim = Sim::new(2);
        let obs = Obs::new();
        let b = doubler(&sim, BatchConfig::default(), obs.clone());
        let h = sim.handle();
        let got = sim.block_on(async move {
            let start = h.now();
            let r = b.submit(21).await;
            (r, h.now() - start)
        });
        assert_eq!(got.0, Some(42));
        assert!(
            got.1 >= Duration::from_micros(100),
            "flushed before deadline: {:?}",
            got.1
        );
        let snap = obs.registry.snapshot().to_string();
        assert!(
            snap.contains("\"batchkit.test.flush_deadline\":1"),
            "{snap}"
        );
    }

    #[test]
    fn batch_max_one_flushes_every_item_immediately() {
        let mut sim = Sim::new(3);
        let obs = Obs::new();
        let b = doubler(&sim, BatchConfig::unbatched(), obs.clone());
        let h = sim.handle();
        let elapsed = sim.block_on(async move {
            let start = h.now();
            assert_eq!(b.submit(1).await, Some(2));
            assert_eq!(b.submit(2).await, Some(4));
            h.now() - start
        });
        assert_eq!(elapsed, Duration::ZERO, "unbatched submits must not wait");
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains("\"batchkit.test.flush_size\":2"), "{snap}");
    }

    #[test]
    fn size_flush_cancels_pending_deadline_timer() {
        let mut sim = Sim::new(4);
        let obs = Obs::new();
        let cfg = BatchConfig {
            batch_max: 2,
            batch_deadline: Duration::from_micros(100),
        };
        let b = doubler(&sim, cfg, obs.clone());
        let h = sim.handle();
        sim.block_on(async move {
            let a = b.submit(1);
            let c = b.submit(2);
            assert_eq!(a.await, Some(2));
            assert_eq!(c.await, Some(4));
            // Let the armed deadline timer (if any survived) fire.
            h.sleep(Duration::from_millis(1)).await;
        });
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains("\"batchkit.test.flush_size\":1"), "{snap}");
        assert!(
            !snap.contains("flush_deadline\":1"),
            "stale timer flushed an empty epoch: {snap}"
        );
    }

    #[test]
    fn short_result_vector_resolves_tail_to_none() {
        let mut sim = Sim::new(5);
        let h = sim.handle();
        let cfg = BatchConfig {
            batch_max: 2,
            batch_deadline: Duration::from_micros(100),
        };
        let b: Batcher<u32, u32> = Batcher::new(
            &h,
            NodeId(0),
            "short",
            cfg,
            Obs::new(),
            |items: Vec<u32>| async move { items.into_iter().take(1).collect() },
        );
        let got = sim.block_on(async move {
            let a = b.submit(7);
            let c = b.submit(8);
            (a.await, c.await)
        });
        assert_eq!(got, (Some(7), None));
    }

    #[test]
    fn submit_nowait_rides_the_same_flush() {
        let mut sim = Sim::new(6);
        let obs = Obs::new();
        let cfg = BatchConfig {
            batch_max: 2,
            batch_deadline: Duration::from_micros(100),
        };
        let b = doubler(&sim, cfg, obs.clone());
        let got = sim.block_on(async move {
            b.submit_nowait(1);
            b.submit(2).await
        });
        assert_eq!(got, Some(4));
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains("\"batchkit.test.flush_size\":1"), "{snap}");
    }

    #[test]
    fn manual_flush_drains_pending() {
        let mut sim = Sim::new(7);
        let obs = Obs::new();
        let b = doubler(&sim, BatchConfig::default(), obs.clone());
        let got = sim.block_on(async move {
            let f = b.submit(5);
            b.flush_now();
            f.await
        });
        assert_eq!(got, Some(10));
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains("\"batchkit.test.flush_manual\":1"), "{snap}");
    }
}
