//! Closed-loop benchmark driver.
//!
//! Each *instance* executes transactions sequentially with one outstanding
//! transaction at a time, retrying an aborted transaction **with the same
//! key set and without any wait** — exactly the client behavior of §5.2.
//! Instances run until a virtual-time deadline and accumulate into a
//! shared [`TxnStats`] bundle (from `obskit`; clones share the counters).

use std::rc::Rc;

use flashsim::{value, Key, Value};
use milana::centiman::{CentTxn, CentimanClient};
use milana::client::{CommitInfo, Txn, TxnClient, TxnOpts};
use milana::msg::TxnError;
use obskit::TxnStats;
use rand::rngs::StdRng;
use rand::Rng;
use simkit::rng::Zipf;
use simkit::time::SimTime;
use simkit::SimHandle;

use crate::mix::Mix;

/// Abstraction over a transactional client so one driver exercises both
/// MILANA and the Centiman baseline.
pub trait TxnSystem: Clone + 'static {
    /// The in-flight transaction type.
    type Handle: TxnHandle;

    /// Starts a transaction.
    fn begin(&self) -> Self::Handle;

    /// Starts a transaction the workload knows to be read-only, letting
    /// systems with bounded-staleness snapshot support open it slightly
    /// in the past (backup-served reads). Defaults to [`TxnSystem::begin`].
    fn begin_read_only(&self) -> Self::Handle {
        self.begin()
    }
}

/// Operations of an in-flight transaction.
pub trait TxnHandle {
    /// Snapshot read.
    fn get(&mut self, key: &Key) -> impl std::future::Future<Output = Result<Value, TxnError>>;

    /// Buffered write.
    fn put(&mut self, key: Key, value: Value);

    /// Commit (consumes the transaction).
    fn commit(self) -> impl std::future::Future<Output = Result<CommitInfo, TxnError>>;
}

impl TxnSystem for TxnClient {
    type Handle = Txn;

    fn begin(&self) -> Txn {
        self.begin_with(TxnOpts::default())
    }

    fn begin_read_only(&self) -> Txn {
        self.begin_with(TxnOpts::snapshot())
    }
}

impl TxnHandle for Txn {
    async fn get(&mut self, key: &Key) -> Result<Value, TxnError> {
        Txn::get(self, key).await
    }

    fn put(&mut self, key: Key, value: Value) {
        Txn::put(self, key, value)
    }

    async fn commit(self) -> Result<CommitInfo, TxnError> {
        Txn::commit(self).await
    }
}

impl TxnSystem for CentimanClient {
    type Handle = CentTxn;

    fn begin(&self) -> CentTxn {
        CentimanClient::begin(self)
    }
}

impl TxnHandle for CentTxn {
    async fn get(&mut self, key: &Key) -> Result<Value, TxnError> {
        CentTxn::get(self, key).await
    }

    fn put(&mut self, key: Key, value: Value) {
        CentTxn::put(self, key, value)
    }

    async fn commit(self) -> Result<CommitInfo, TxnError> {
        CentTxn::commit(self).await
    }
}

/// Workload parameters for one experiment run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Transaction mix.
    pub mix: Mix,
    /// Number of distinct keys (must be preloaded as ids `0..keyspace`).
    pub keyspace: u64,
    /// Zipf contention parameter α (0 = uniform).
    pub zipf_alpha: f64,
    /// Value size for writes.
    pub value_size: usize,
    /// Give up on a transaction after this many aborted attempts (still
    /// counted individually as aborts).
    pub max_retries: u32,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            mix: Mix::retwis(),
            keyspace: 10_000,
            zipf_alpha: 0.6,
            value_size: 64,
            max_retries: 64,
        }
    }
}

/// The key script of one logical transaction: fixed on first attempt and
/// reused verbatim on retries (§5.2).
#[derive(Debug, Clone)]
struct KeyScript {
    reads: Vec<Key>,
    writes: Vec<Key>,
}

fn plan(mix: &Mix, zipf: &Zipf, rng: &mut StdRng, cfg: &WorkloadConfig) -> KeyScript {
    let t = mix.sample(rng);
    let n_gets = t.gets.sample(rng);
    let mut reads = Vec::with_capacity(n_gets as usize);
    let mut writes = Vec::with_capacity(t.puts as usize);
    let mut used = perfkit::FastSet::default();
    let draw = |rng: &mut StdRng, used: &mut perfkit::FastSet<u64>| {
        // Reject duplicates so each key appears once per transaction.
        for _ in 0..16 {
            let id = zipf.sample(rng) as u64;
            if used.insert(id) {
                return id;
            }
        }
        let id = rng.gen_range(0..cfg.keyspace);
        used.insert(id);
        id
    };
    for _ in 0..n_gets {
        reads.push(Key::from(draw(rng, &mut used)));
    }
    for _ in 0..t.puts {
        writes.push(Key::from(draw(rng, &mut used)));
    }
    KeyScript { reads, writes }
}

/// Runs one closed-loop instance against `sys` until `until` (virtual
/// time), accumulating into `stats`.
pub async fn run_instance<S: TxnSystem>(
    handle: SimHandle,
    sys: S,
    cfg: Rc<WorkloadConfig>,
    zipf: Rc<Zipf>,
    stats: TxnStats,
    until: SimTime,
) {
    let mut rng = handle.fork_rng();
    let payload = value(vec![0x5au8; cfg.value_size]);
    while handle.now() < until {
        let script = plan(&cfg.mix, &zipf, &mut rng, &cfg);
        stats.record_arrival();
        let started = handle.now();
        let mut attempts = 0u32;
        loop {
            if handle.now() >= until {
                return;
            }
            attempts += 1;
            let mut txn = if script.writes.is_empty() {
                sys.begin_read_only()
            } else {
                sys.begin()
            };
            let mut failed: Option<TxnError> = None;
            for key in &script.reads {
                match txn.get(key).await {
                    Ok(_) => {}
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            let outcome = match failed {
                Some(e) => Err(e),
                None => {
                    for key in &script.writes {
                        txn.put(key.clone(), payload.clone());
                    }
                    txn.commit().await
                }
            };
            match outcome {
                Ok(_) => {
                    let now = handle.now();
                    stats.record_commit(now.as_nanos(), (now - started).as_nanos() as u64);
                    break;
                }
                Err(TxnError::Aborted(reason)) => {
                    stats.record_abort(reason.class());
                    if attempts > cfg.max_retries {
                        stats.record_abandoned();
                        break;
                    }
                    // Retry immediately with the same key script (§5.2).
                }
                Err(_) => {
                    stats.record_timeout();
                    if attempts > cfg.max_retries {
                        stats.record_abandoned();
                        break;
                    }
                }
            }
        }
    }
}

/// Runs an **open-loop** load generator against `sys` until `until`:
/// transactions arrive as a Poisson process at `rate_per_sec`, independent
/// of completion times, so latency can be measured as a function of offered
/// load (closed-loop drivers under-report queueing at saturation).
///
/// Arrivals beyond `max_outstanding` are dropped and counted (modelling
/// admission control rather than unbounded queue growth).
///
/// Every arrival is accounted: once the driver returns,
/// `arrivals == commits + abandoned + sheds` — admitted transactions retry
/// (each failed attempt individually counted as an abort or timeout) until
/// they commit or exhaust `max_retries` and are abandoned.
#[allow(clippy::too_many_arguments)] // a load generator is all knobs
pub async fn run_open_loop<S: TxnSystem>(
    handle: SimHandle,
    sys: S,
    cfg: Rc<WorkloadConfig>,
    zipf: Rc<Zipf>,
    stats: TxnStats,
    rate_per_sec: f64,
    max_outstanding: usize,
    until: SimTime,
) {
    assert!(rate_per_sec > 0.0, "open loop needs a positive rate");
    let mut rng = handle.fork_rng();
    let outstanding = Rc::new(std::cell::Cell::new(0usize));
    let mut joins = Vec::new();
    loop {
        let gap = simkit::rng::exponential(&mut rng, 1.0 / rate_per_sec);
        handle
            .sleep(std::time::Duration::from_nanos((gap * 1e9) as u64))
            .await;
        if handle.now() >= until {
            break;
        }
        stats.record_arrival();
        if outstanding.get() >= max_outstanding {
            // Driver-side admission control: the arrival is refused before
            // any attempt is made, so it is a shed, not a timeout.
            stats.record_shed();
            continue;
        }
        outstanding.set(outstanding.get() + 1);
        let script = plan(&cfg.mix, &zipf, &mut rng, &cfg);
        let sys = sys.clone();
        let cfg = cfg.clone();
        let stats = stats.clone();
        let outstanding = outstanding.clone();
        let h2 = handle.clone();
        joins.push(handle.spawn(async move {
            let payload = value(vec![0x5au8; cfg.value_size]);
            let started = h2.now();
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                let mut txn = if script.writes.is_empty() {
                    sys.begin_read_only()
                } else {
                    sys.begin()
                };
                let mut failed: Option<TxnError> = None;
                for key in &script.reads {
                    if let Err(e) = txn.get(key).await {
                        failed = Some(e);
                        break;
                    }
                }
                let outcome = match failed {
                    Some(e) => Err(e),
                    None => {
                        for key in &script.writes {
                            txn.put(key.clone(), payload.clone());
                        }
                        txn.commit().await
                    }
                };
                match outcome {
                    Ok(_) => {
                        let now = h2.now();
                        stats.record_commit(now.as_nanos(), (now - started).as_nanos() as u64);
                        break;
                    }
                    Err(TxnError::Aborted(reason)) => {
                        stats.record_abort(reason.class());
                        if attempts > cfg.max_retries {
                            stats.record_abandoned();
                            break;
                        }
                    }
                    Err(_) => {
                        stats.record_timeout();
                        if attempts > cfg.max_retries {
                            stats.record_abandoned();
                            break;
                        }
                    }
                }
            }
            outstanding.set(outstanding.get() - 1);
        }));
    }
    for j in joins {
        j.await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::NandConfig;
    use milana::cluster::{MilanaCluster, MilanaClusterConfig};
    use simkit::Sim;
    use timesync::ClockSpec;

    #[test]
    fn plans_respect_mix_shape() {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(7);
        let cfg = WorkloadConfig::default();
        let zipf = Zipf::new(cfg.keyspace as usize, cfg.zipf_alpha);
        let mut saw_read_only = false;
        let mut saw_writes = false;
        for _ in 0..200 {
            let s = plan(&cfg.mix, &zipf, &mut rng, &cfg);
            assert!(!s.reads.is_empty() || !s.writes.is_empty());
            // No duplicate keys inside one transaction.
            let mut all: Vec<&Key> = s.reads.iter().chain(s.writes.iter()).collect();
            let n = all.len();
            all.sort();
            all.dedup();
            assert_eq!(all.len(), n, "duplicate key in plan");
            saw_read_only |= s.writes.is_empty();
            saw_writes |= !s.writes.is_empty();
        }
        assert!(saw_read_only && saw_writes);
    }

    #[test]
    fn driver_runs_retwis_against_milana() {
        let mut sim = Sim::new(77);
        let h = sim.handle();
        let cluster = MilanaCluster::build(
            &h,
            MilanaClusterConfig {
                shards: 1,
                replicas: 3,
                clients: 2,
                preload_keys: 500,
                nand: NandConfig {
                    blocks: 256,
                    pages_per_block: 8,
                    ..NandConfig::default()
                },
                clock: ClockSpec::ptp_software(),
                ..MilanaClusterConfig::default()
            },
        );
        let cfg = Rc::new(WorkloadConfig {
            keyspace: 500,
            zipf_alpha: 0.5,
            ..WorkloadConfig::default()
        });
        let zipf = Rc::new(Zipf::new(cfg.keyspace as usize, cfg.zipf_alpha));
        let stats = TxnStats::new();
        let until = simkit::SimTime::from_millis(300);
        let mut joins = Vec::new();
        for c in &cluster.clients {
            joins.push(h.spawn(run_instance(
                h.clone(),
                c.clone(),
                cfg.clone(),
                zipf.clone(),
                stats.clone(),
                until,
            )));
        }
        sim.block_on(async move {
            for j in joins {
                j.await;
            }
        });
        assert!(stats.commits.get() > 50, "commits {}", stats.commits.get());
        assert_eq!(stats.abandoned.get(), 0);
        assert!(stats.latency.snapshot().mean() > 0.0);
        assert!(
            stats.abort_rate() < 0.5,
            "abort rate {}",
            stats.abort_rate()
        );
        // Every abort is classified in the shared taxonomy.
        assert_eq!(
            stats.abort_reasons.total(),
            stats.aborts.get() + stats.timeouts.get() + stats.abandoned.get()
        );
    }
}
#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use flashsim::NandConfig;
    use milana::cluster::{MilanaCluster, MilanaClusterConfig};
    use simkit::Sim;
    use timesync::ClockSpec;

    #[test]
    fn open_loop_throughput_tracks_offered_rate_below_saturation() {
        let mut sim = Sim::new(88);
        let h = sim.handle();
        let cluster = MilanaCluster::build(
            &h,
            MilanaClusterConfig {
                shards: 1,
                replicas: 3,
                clients: 1,
                preload_keys: 500,
                nand: NandConfig {
                    blocks: 256,
                    pages_per_block: 8,
                    ..NandConfig::default()
                },
                clock: ClockSpec::ptp_software(),
                ..MilanaClusterConfig::default()
            },
        );
        let cfg = Rc::new(WorkloadConfig {
            keyspace: 500,
            zipf_alpha: 0.3,
            ..WorkloadConfig::default()
        });
        let zipf = Rc::new(Zipf::new(cfg.keyspace as usize, cfg.zipf_alpha));
        let stats = TxnStats::new();
        let rate = 500.0; // txn/s, far below capacity
        let window = std::time::Duration::from_millis(800);
        let until = h.now() + window;
        let driver = run_open_loop(
            h.clone(),
            cluster.clients[0].clone(),
            cfg,
            zipf,
            stats.clone(),
            rate,
            64,
            until,
        );
        sim.block_on(driver);
        let achieved = stats.commits.get() as f64 / window.as_secs_f64();
        assert!(
            (achieved - rate).abs() / rate < 0.25,
            "offered {rate}/s, achieved {achieved}/s"
        );
        assert_eq!(stats.abandoned.get(), 0);
    }
}
