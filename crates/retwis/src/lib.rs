//! # retwis — the paper's benchmark workload
//!
//! The Retwis (Twitter-clone) benchmark drives all of MILANA's evaluation
//! (§5.2–5.3): a four-type transaction mix (Table 2) over a shared key
//! space, with a Zipf "contention parameter" α concentrating traffic on hot
//! keys. This crate provides the mix ([`mix`]), a closed-loop driver that
//! retries aborted transactions with the same keys and no wait ([`driver`]),
//! and the metrics the figures report (abort rate, throughput, latency).

#![warn(missing_docs)]

pub mod driver;
pub mod mix;

pub use driver::{run_instance, run_open_loop, TxnHandle, TxnSystem, WorkloadConfig};
pub use mix::{GetCount, Mix, TxnType};
