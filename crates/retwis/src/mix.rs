//! The Retwis transaction mix (Table 2 of the paper).
//!
//! Retwis is a Twitter-clone benchmark; the paper drives MILANA with four
//! transaction types. Each type performs a number of gets and puts over a
//! shared key space; the *contention parameter* α skews key choice toward a
//! hot head via a Zipf distribution.

use rand::Rng;

/// How many gets a transaction type performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetCount {
    /// Always exactly this many.
    Fixed(u32),
    /// Uniform in `[lo, hi]` (Get Timeline's `rand(1,10)`).
    Uniform(u32, u32),
}

impl GetCount {
    /// Draws a concrete count.
    pub fn sample(self, rng: &mut impl Rng) -> u32 {
        match self {
            GetCount::Fixed(n) => n,
            GetCount::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// One transaction type in the mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnType {
    /// Human-readable name.
    pub name: &'static str,
    /// Gets per transaction.
    pub gets: GetCount,
    /// Puts per transaction.
    pub puts: u32,
    /// Relative weight (percent).
    pub weight: u32,
}

/// A weighted set of transaction types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    types: Vec<TxnType>,
    total_weight: u32,
}

impl Mix {
    /// Builds a mix from weighted types.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty or all weights are zero.
    pub fn new(types: Vec<TxnType>) -> Mix {
        assert!(!types.is_empty());
        let total_weight = types.iter().map(|t| t.weight).sum();
        assert!(total_weight > 0, "mix needs positive total weight");
        Mix {
            types,
            total_weight,
        }
    }

    /// The paper's Table 2 mix: Add User 5 %, Follow User 10 %, Post Tweet
    /// 35 %, Get Timeline 50 %.
    pub fn retwis() -> Mix {
        Mix::new(vec![
            TxnType {
                name: "add_user",
                gets: GetCount::Fixed(1),
                puts: 2,
                weight: 5,
            },
            TxnType {
                name: "follow_user",
                gets: GetCount::Fixed(2),
                puts: 2,
                weight: 10,
            },
            TxnType {
                name: "post_tweet",
                gets: GetCount::Fixed(3),
                puts: 5,
                weight: 35,
            },
            TxnType {
                name: "get_timeline",
                gets: GetCount::Uniform(1, 10),
                puts: 0,
                weight: 50,
            },
        ])
    }

    /// The read-heavy variant used for the throughput/latency study (§5.2,
    /// Figure 8): 5 % / 10 % / 10 % / **75 % read-only**.
    pub fn retwis_read_heavy() -> Mix {
        Mix::new(vec![
            TxnType {
                name: "add_user",
                gets: GetCount::Fixed(1),
                puts: 2,
                weight: 5,
            },
            TxnType {
                name: "follow_user",
                gets: GetCount::Fixed(2),
                puts: 2,
                weight: 10,
            },
            TxnType {
                name: "post_tweet",
                gets: GetCount::Fixed(3),
                puts: 5,
                weight: 10,
            },
            TxnType {
                name: "get_timeline",
                gets: GetCount::Uniform(1, 10),
                puts: 0,
                weight: 75,
            },
        ])
    }

    /// Draws a transaction type by weight.
    pub fn sample(&self, rng: &mut impl Rng) -> &TxnType {
        let mut pick = rng.gen_range(0..self.total_weight);
        for t in &self.types {
            if pick < t.weight {
                return t;
            }
            pick -= t.weight;
        }
        unreachable!("weights sum correctly")
    }

    /// The configured types.
    pub fn types(&self) -> &[TxnType] {
        &self.types
    }

    /// The fraction of transactions that carry no writes.
    pub fn read_only_fraction(&self) -> f64 {
        let ro: u32 = self
            .types
            .iter()
            .filter(|t| t.puts == 0)
            .map(|t| t.weight)
            .sum();
        ro as f64 / self.total_weight as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table2_mix_matches_paper() {
        let m = Mix::retwis();
        let t: Vec<_> = m
            .types()
            .iter()
            .map(|t| (t.name, t.puts, t.weight))
            .collect();
        assert_eq!(
            t,
            vec![
                ("add_user", 2, 5),
                ("follow_user", 2, 10),
                ("post_tweet", 5, 35),
                ("get_timeline", 0, 50),
            ]
        );
        assert_eq!(m.read_only_fraction(), 0.5);
        assert_eq!(Mix::retwis_read_heavy().read_only_fraction(), 0.75);
    }

    #[test]
    fn sampling_respects_weights() {
        let m = Mix::retwis();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut timeline = 0;
        for _ in 0..n {
            if m.sample(&mut rng).name == "get_timeline" {
                timeline += 1;
            }
        }
        let frac = timeline as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "timeline fraction {frac}");
    }

    #[test]
    fn get_counts_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let n = GetCount::Uniform(1, 10).sample(&mut rng);
            assert!((1..=10).contains(&n));
        }
        assert_eq!(GetCount::Fixed(3).sample(&mut rng), 3);
    }
}
