//! Key-space sharding: consistent hashing from keys to shards, and the
//! shard → replica-group map clients coordinate through (§3).
//!
//! The paper delegates this to "a global master ... using standard
//! techniques (e.g., consistent hashing)"; we implement a classic hash ring
//! with virtual nodes so shard assignment is stable under membership change.

use std::collections::BTreeMap;

use flashsim::Key;
use simkit::net::Addr;

/// Identifies a data shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// FNV-1a — a small, dependency-free 64-bit hash for ring placement.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One shard's replica set: a designated primary plus `2f` backups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaGroup {
    /// The primary replica's service address.
    pub primary: Addr,
    /// Backup replicas' service addresses.
    pub backups: Vec<Addr>,
}

impl ReplicaGroup {
    /// `f` — the number of simultaneous replica failures tolerated
    /// (`2f + 1` replicas total). The primary acks a write after `f` backup
    /// acknowledgements (majority including itself).
    pub fn f(&self) -> usize {
        self.backups.len() / 2
    }

    /// All replica addresses, primary first.
    pub fn all(&self) -> Vec<Addr> {
        let mut v = Vec::with_capacity(1 + self.backups.len());
        v.push(self.primary);
        v.extend(self.backups.iter().copied());
        v
    }
}

/// A key-range split applied after ring lookup: keys the ring assigns to
/// `from` whose hash has bit `bit` set belong to `to` instead. Splitting
/// by a hash bit (rather than moving virtual ring points) divides the
/// source shard's *key mass* roughly in half — FNV ring points for one
/// shard cluster tightly, so vnode reassignment would move almost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitRule {
    from: ShardId,
    to: ShardId,
    bit: u8,
}

impl SplitRule {
    fn applies(&self, point: u64) -> bool {
        (point >> self.bit) & 1 == 1
    }
}

/// A pending shard migration carried by the map between `Prepare` and
/// `Cutover`: routing still targets the source shard, but the map already
/// records where the keys are headed so servers and the rebalance engine
/// can compute the moving-key predicate without a second map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migrating {
    /// Source shard (current owner of the moving keys).
    pub from: ShardId,
    /// Destination shard (owner after cutover). Equal to `from` for a
    /// whole-shard move to a new replica group.
    pub to: ShardId,
    /// The split rule installed at cutover (`None` for a whole-shard move).
    rule: Option<SplitRule>,
    /// The destination's replica group (appended for a split, substituted
    /// for a move). Kept separate from the live groups so failover
    /// promotions that land mid-migration are not clobbered at cutover.
    dest_group: ReplicaGroup,
}

/// The cluster map: a consistent-hash ring over shards, plus each shard's
/// replica group. Carries an `epoch` so clients can detect staleness after
/// failover.
///
/// # Examples
///
/// ```
/// use semel::shard::{ReplicaGroup, ShardMap};
/// use simkit::net::{Addr, NodeId};
/// use flashsim::Key;
///
/// let map = ShardMap::new(vec![ReplicaGroup {
///     primary: Addr::new(NodeId(0), 0),
///     backups: vec![],
/// }]);
/// let shard = map.shard_for(&Key::from(42u64));
/// assert_eq!(map.group(shard).primary.node, NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    ring: BTreeMap<u64, ShardId>,
    groups: Vec<ReplicaGroup>,
    epoch: u64,
    /// Post-ring split rules from completed splits, applied in order.
    splits: Vec<SplitRule>,
    migrating: Option<Migrating>,
}

/// Virtual ring points per shard; more points = smoother key spread.
const VNODES: u32 = 64;

impl ShardMap {
    /// Builds a map over the given replica groups (index = shard id).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn new(groups: Vec<ReplicaGroup>) -> ShardMap {
        assert!(!groups.is_empty(), "ShardMap needs at least one shard");
        let mut ring = BTreeMap::new();
        for (i, _) in groups.iter().enumerate() {
            for v in 0..VNODES {
                let point = fnv1a(format!("shard-{i}-vnode-{v}").as_bytes());
                ring.insert(point, ShardId(i as u32));
            }
        }
        ShardMap {
            ring,
            groups,
            epoch: 0,
            splits: Vec::new(),
            migrating: None,
        }
    }

    /// The shard owning `key`: clockwise successor on the ring, then any
    /// split rules from completed shard splits, in install order.
    pub fn shard_for(&self, key: &Key) -> ShardId {
        let point = fnv1a(key.as_bytes());
        let mut shard = *self
            .ring
            .range(point..)
            .next()
            .map(|(_, s)| s)
            .unwrap_or_else(|| self.ring.iter().next().map(|(_, s)| s).expect("ring"));
        for rule in &self.splits {
            if shard == rule.from && rule.applies(point) {
                shard = rule.to;
            }
        }
        shard
    }

    /// The replica group of `shard`.
    ///
    /// # Panics
    ///
    /// Panics if the shard id is out of range.
    pub fn group(&self, shard: ShardId) -> &ReplicaGroup {
        &self.groups[shard.0 as usize]
    }

    /// The replica group of `shard`, or `None` for an id this map does not
    /// (yet) know — e.g. a heartbeat from a migration destination whose
    /// shard is installed only at cutover.
    pub fn group_opt(&self, shard: ShardId) -> Option<&ReplicaGroup> {
        self.groups.get(shard.0 as usize)
    }

    /// Iterator over `(ShardId, &ReplicaGroup)`.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &ReplicaGroup)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (ShardId(i as u32), g))
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Always false — maps hold at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The map's configuration epoch (bumped on failover).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Promotes `new_primary` (one of the shard's backups) to primary and
    /// demotes the old primary into the backup list (it may be dead right
    /// now, but rejoins as a backup when restarted), bumping the epoch.
    /// Used by the master during failover (§4.5).
    ///
    /// Returns `true` on success (including the no-op case where
    /// `new_primary` already leads the shard) and `false` if `new_primary`
    /// is not a current replica — a request that raced a concurrent
    /// promotion; the map is left unchanged so the caller can re-read it
    /// and retry.
    #[must_use = "a false return means the shard map was not changed"]
    pub fn promote(&mut self, shard: ShardId, new_primary: Addr) -> bool {
        let g = &mut self.groups[shard.0 as usize];
        if g.primary == new_primary {
            return true;
        }
        let Some(pos) = g.backups.iter().position(|&a| a == new_primary) else {
            return false;
        };
        g.backups.remove(pos);
        g.backups.push(g.primary);
        g.primary = new_primary;
        self.epoch += 1;
        true
    }

    /// The pending migration, if one is in flight.
    pub fn migrating(&self) -> Option<(ShardId, ShardId)> {
        self.migrating.as_ref().map(|m| (m.from, m.to))
    }

    /// The destination replica group of the pending migration.
    pub fn migration_dest_group(&self) -> Option<&ReplicaGroup> {
        self.migrating.as_ref().map(|m| &m.dest_group)
    }

    /// Begins splitting `from`: keys of `from` whose hash has a fresh bit
    /// set (roughly half the shard's key mass) are earmarked for a
    /// brand-new shard served by `dest`, and the epoch is bumped so
    /// clients refetch. Routing is unchanged until [`ShardMap::cutover`] —
    /// the marker only records where the keys are headed. Returns the new
    /// shard's id.
    ///
    /// # Panics
    ///
    /// Panics if a migration is already pending or `from` is out of range.
    pub fn begin_split(&mut self, from: ShardId, dest: ReplicaGroup) -> ShardId {
        assert!(self.migrating.is_none(), "migration already pending");
        assert!((from.0 as usize) < self.groups.len(), "unknown shard");
        let to = ShardId(self.groups.len() as u32);
        // A bit no earlier split used keeps successive splits independent.
        let bit = self.splits.len() as u8;
        assert!(bit < 64, "too many splits");
        self.migrating = Some(Migrating {
            from,
            to,
            rule: Some(SplitRule { from, to, bit }),
            dest_group: dest,
        });
        self.epoch += 1;
        to
    }

    /// Begins moving all of `shard`'s keys to a new replica group `dest`.
    /// Routing (and the shard id) are unchanged until cutover; only the
    /// owning group flips.
    ///
    /// # Panics
    ///
    /// Panics if a migration is already pending or `shard` is out of range.
    pub fn begin_move(&mut self, shard: ShardId, dest: ReplicaGroup) {
        assert!(self.migrating.is_none(), "migration already pending");
        assert!((shard.0 as usize) < self.groups.len(), "unknown shard");
        self.migrating = Some(Migrating {
            from: shard,
            to: shard,
            rule: None,
            dest_group: dest,
        });
        self.epoch += 1;
    }

    /// True if `key` belongs to the moving set of the pending migration:
    /// after cutover it will be served by the destination. False when no
    /// migration is pending.
    pub fn key_is_moving(&self, key: &Key) -> bool {
        let Some(m) = &self.migrating else {
            return false;
        };
        if self.shard_for(key) != m.from {
            return false;
        }
        match &m.rule {
            // Whole-shard move: every key of the shard moves.
            None => true,
            Some(rule) => rule.applies(fnv1a(key.as_bytes())),
        }
    }

    /// Completes the pending migration: the split rule (if any) becomes
    /// part of routing, the destination group is installed (appended for a
    /// split, substituted for a move), and the epoch is bumped. Promotions
    /// that landed on other shards mid-migration are preserved.
    ///
    /// # Panics
    ///
    /// Panics if no migration is pending.
    pub fn cutover(&mut self) {
        let m = self.migrating.take().expect("no migration pending");
        if m.from == m.to {
            self.groups[m.from.0 as usize] = m.dest_group;
        } else {
            debug_assert_eq!(m.to.0 as usize, self.groups.len());
            self.groups.push(m.dest_group);
        }
        if let Some(rule) = m.rule {
            self.splits.push(rule);
        }
        self.epoch += 1;
    }

    /// Abandons the pending migration (fault recovery before cutover),
    /// bumping the epoch so clients that saw the marker refetch.
    pub fn abort_migration(&mut self) {
        if self.migrating.take().is_some() {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::net::NodeId;

    fn group(n: u32) -> ReplicaGroup {
        ReplicaGroup {
            primary: Addr::new(NodeId(n * 10), 0),
            backups: vec![
                Addr::new(NodeId(n * 10 + 1), 0),
                Addr::new(NodeId(n * 10 + 2), 0),
            ],
        }
    }

    fn map(n: u32) -> ShardMap {
        ShardMap::new((0..n).map(group).collect())
    }

    #[test]
    fn deterministic_assignment() {
        let m = map(3);
        for i in 0..100u64 {
            let k = Key::from(i);
            assert_eq!(m.shard_for(&k), m.shard_for(&k));
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let m = map(3);
        let mut counts = [0u32; 3];
        for i in 0..3000u64 {
            counts[m.shard_for(&Key::from(i)).0 as usize] += 1;
        }
        for c in counts {
            assert!(c > 400, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let m = map(1);
        for i in 0..50u64 {
            assert_eq!(m.shard_for(&Key::from(i)), ShardId(0));
        }
    }

    #[test]
    fn f_is_minority_of_backups() {
        assert_eq!(group(0).f(), 1); // 2 backups -> f=1 (3 replicas)
        let g = ReplicaGroup {
            primary: Addr::new(NodeId(0), 0),
            backups: vec![],
        };
        assert_eq!(g.f(), 0);
    }

    #[test]
    fn promote_swaps_primary_and_bumps_epoch() {
        let mut m = map(2);
        let old_primary = m.group(ShardId(1)).primary;
        let backup = m.group(ShardId(1)).backups[0];
        let e0 = m.epoch();
        assert!(m.promote(ShardId(1), backup));
        assert_eq!(m.group(ShardId(1)).primary, backup);
        // The old primary is demoted, keeping the group at full strength.
        assert_eq!(m.group(ShardId(1)).backups.len(), 2);
        assert!(m.group(ShardId(1)).backups.contains(&old_primary));
        assert_eq!(m.epoch(), e0 + 1);
    }

    #[test]
    fn repeated_promotions_never_exhaust_the_group() {
        let mut m = map(1);
        for _ in 0..6 {
            let next = m.group(ShardId(0)).backups[0];
            assert!(m.promote(ShardId(0), next));
            assert_eq!(m.group(ShardId(0)).backups.len(), 2);
        }
        // Promoting the sitting primary is a no-op success; a stranger is
        // rejected without touching the map.
        let sitting = m.group(ShardId(0)).primary;
        let e = m.epoch();
        assert!(m.promote(ShardId(0), sitting));
        assert_eq!(m.epoch(), e);
        assert!(!m.promote(ShardId(0), Addr::new(NodeId(999), 0)));
        assert_eq!(m.group(ShardId(0)).primary, sitting);
    }

    #[test]
    fn split_moves_roughly_half_and_only_moving_keys_change_owner() {
        let mut m = map(2);
        let e0 = m.epoch();
        let pre: Vec<ShardId> = (0..2000u64).map(|i| m.shard_for(&Key::from(i))).collect();
        let to = m.begin_split(ShardId(0), group(9));
        assert_eq!(to, ShardId(2));
        assert_eq!(m.epoch(), e0 + 1, "prepare bumps the epoch");
        assert_eq!(m.migrating(), Some((ShardId(0), ShardId(2))));
        // Routing unchanged until cutover.
        for (i, &s) in pre.iter().enumerate() {
            assert_eq!(m.shard_for(&Key::from(i as u64)), s);
        }
        let moving: Vec<bool> = (0..2000u64)
            .map(|i| m.key_is_moving(&Key::from(i)))
            .collect();
        // Only keys of the split shard can move, and a decent fraction do.
        let mut moved = 0;
        for i in 0..2000usize {
            if moving[i] {
                assert_eq!(pre[i], ShardId(0), "only source keys move");
                moved += 1;
            }
        }
        let src_total = pre.iter().filter(|&&s| s == ShardId(0)).count();
        assert!(
            moved * 4 > src_total && moved < src_total,
            "split is a real partition: {moved}/{src_total}"
        );
        m.cutover();
        assert_eq!(m.epoch(), e0 + 2, "cutover bumps the epoch again");
        assert_eq!(m.migrating(), None);
        assert_eq!(m.len(), 3);
        for i in 0..2000usize {
            let now = m.shard_for(&Key::from(i as u64));
            if moving[i] {
                assert_eq!(now, ShardId(2));
            } else {
                assert_eq!(now, pre[i], "non-moving keys keep their owner");
            }
        }
    }

    #[test]
    fn move_marks_every_source_key_and_swaps_the_group() {
        let mut m = map(2);
        let dest = group(7);
        m.begin_move(ShardId(1), dest.clone());
        for i in 0..500u64 {
            let k = Key::from(i);
            assert_eq!(m.key_is_moving(&k), m.shard_for(&k) == ShardId(1));
        }
        let pre: Vec<ShardId> = (0..500u64).map(|i| m.shard_for(&Key::from(i))).collect();
        m.cutover();
        assert_eq!(m.len(), 2);
        assert_eq!(m.group(ShardId(1)), &dest);
        for (i, &s) in pre.iter().enumerate() {
            assert_eq!(m.shard_for(&Key::from(i as u64)), s, "routing unchanged");
        }
    }

    #[test]
    fn promotion_during_migration_survives_cutover() {
        let mut m = map(2);
        m.begin_split(ShardId(0), group(9));
        let backup = m.group(ShardId(1)).backups[0];
        assert!(m.promote(ShardId(1), backup));
        m.cutover();
        assert_eq!(m.group(ShardId(1)).primary, backup);
    }

    #[test]
    fn abort_migration_restores_a_clean_map() {
        let mut m = map(2);
        let e0 = m.epoch();
        m.begin_split(ShardId(0), group(9));
        m.abort_migration();
        assert_eq!(m.migrating(), None);
        assert_eq!(m.len(), 2);
        assert!(m.epoch() > e0);
        assert!(!m.key_is_moving(&Key::from(1u64)));
    }

    #[test]
    fn consistent_hashing_is_stable_under_shard_addition() {
        // Adding a shard must only move a fraction of keys.
        let m3 = map(3);
        let m4 = map(4);
        let total = 5000u64;
        let moved = (0..total)
            .filter(|&i| {
                let k = Key::from(i);
                m3.shard_for(&k) != m4.shard_for(&k)
            })
            .count();
        // With consistent hashing, expected movement ≈ 1/4 of keys;
        // naive modulo hashing would move ~3/4.
        assert!(
            (moved as f64) < total as f64 * 0.45,
            "moved {moved}/{total}"
        );
    }
}
