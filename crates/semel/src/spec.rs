//! A cluster *specification* shared by every harness in the workspace.
//!
//! [`ClusterSpec`] captures the shape and substrate knobs that SEMEL and
//! MILANA bring-up have in common — shard/replica/client counts, the
//! clock profile, the storage geometry, and the fault/overload hooks
//! (admission gate, group-commit window, observability sinks). Tests and
//! the `repro_*` bins describe a cluster once and convert it into the
//! protocol-specific config with `From`/`Into`:
//!
//! ```ignore
//! let spec = ClusterSpec::new(2, 3, 4).preloaded(1_000);
//! let semel = SemelCluster::build(&h, spec.clone().into());
//! let milana = MilanaCluster::build(&h, spec.into());
//! ```

use std::time::Duration;

use flashsim::{BackendKind, NandConfig};
use timesync::ClockSpec;

use crate::cluster::ClusterConfig;

/// Live-migration (`rebalance.*`) knobs, consumed by the shardkit engine.
/// Kept on the shared spec so every harness that can trigger a rebalance
/// agrees on pacing and cutover behavior.
#[derive(Debug, Clone)]
pub struct RebalanceSpec {
    /// `rebalance.copy_batch` — records per bulk-copy envelope streamed to
    /// the destination replicas.
    pub copy_batch: usize,
    /// `rebalance.copy_interval` — pause between copy envelopes, pacing
    /// the bulk plane so it does not starve foreground traffic.
    pub copy_interval: Duration,
    /// `rebalance.catchup_threshold` — catch-up sweeps repeat until one
    /// moves at most this many records (then cutover begins).
    pub catchup_threshold: usize,
    /// `rebalance.max_catchup_rounds` — hard cap on catch-up sweeps before
    /// cutover is forced regardless of the threshold.
    pub max_catchup_rounds: u32,
    /// `rebalance.rpc_timeout` — per-envelope timeout on the copy plane.
    pub rpc_timeout: Duration,
    /// `rebalance.forward_term` — how long the source keeps answering
    /// moved-key requests with forwarding stubs after cutover (one lease
    /// term by default, so every client lease observes the flip).
    pub forward_term: Duration,
    /// `rebalance.drain_poll` — poll period while waiting for in-flight
    /// prepares on moving keys to drain at cutover.
    pub drain_poll: Duration,
}

impl Default for RebalanceSpec {
    fn default() -> RebalanceSpec {
        RebalanceSpec {
            copy_batch: 64,
            copy_interval: Duration::from_micros(500),
            catchup_threshold: 16,
            max_catchup_rounds: 8,
            rpc_timeout: Duration::from_millis(50),
            forward_term: Duration::from_millis(100),
            drain_poll: Duration::from_millis(5),
        }
    }
}

/// Protocol-agnostic cluster description: one struct that converts into
/// [`ClusterConfig`] (SEMEL) or `MilanaClusterConfig` (MILANA), keeping
/// every harness in the workspace agreeing on what a "3-replica cluster
/// with PTP clocks and a 16-unit admission gate" means.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of data shards.
    pub shards: u32,
    /// Replicas per shard (odd: 1 primary + 2f backups).
    pub replicas: u32,
    /// Number of clients (application servers).
    pub clients: u32,
    /// Storage backend per replica.
    pub backend: BackendKind,
    /// Device geometry for flash backends.
    pub nand: NandConfig,
    /// Clock profile for client clocks (discipline plus fault model).
    pub clock: ClockSpec,
    /// Keys preloaded before the run (ids `0..preload_keys`).
    pub preload_keys: u64,
    /// Value size for preloaded keys.
    pub value_size: usize,
    /// Network latency model installed at build time.
    pub net: simkit::net::LatencyConfig,
    /// Overload hook: per-server admission gate.
    pub admission: loadkit::AdmissionConfig,
    /// Group-commit hook: flush window for replication and (in MILANA)
    /// the client coordinator plane.
    pub batch: batchkit::BatchConfig,
    /// Observability bundle shared by every node in the cluster.
    pub obs: obskit::Obs,
    /// Live-migration knobs (used when a harness triggers a rebalance).
    pub rebalance: RebalanceSpec,
    /// Read-scaling hook (`read_route`): which replica serves snapshot
    /// reads. Non-primary routes are honored by MILANA clients only.
    pub read_route: readkit::ReadRoute,
    /// Read-scaling hook (`cache_entries`): capacity of each client's
    /// version cache; 0 disables it.
    pub cache_entries: usize,
    /// Read-scaling hook (`watermark_gossip_interval`): how often an idle
    /// primary pushes its applied-watermark floor to backups. `None`
    /// leaves floors riding organic replication traffic only.
    pub watermark_gossip: Option<Duration>,
}

impl Default for ClusterSpec {
    fn default() -> ClusterSpec {
        ClusterSpec::new(1, 3, 2)
    }
}

impl ClusterSpec {
    /// A spec with the given shape and defaulted substrate knobs.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is even or zero — replication needs a strict
    /// majority (2f+1).
    pub fn new(shards: u32, replicas: u32, clients: u32) -> ClusterSpec {
        assert!(
            replicas % 2 == 1 && replicas >= 1,
            "replicas must be odd (2f+1)"
        );
        ClusterSpec {
            shards,
            replicas,
            clients,
            backend: BackendKind::Mftl,
            nand: NandConfig::default(),
            clock: ClockSpec::ptp_software(),
            preload_keys: 0,
            value_size: 472,
            net: simkit::net::LatencyConfig::default(),
            admission: loadkit::AdmissionConfig::default(),
            batch: batchkit::BatchConfig::default(),
            obs: obskit::Obs::new(),
            rebalance: RebalanceSpec::default(),
            read_route: readkit::ReadRoute::PrimaryOnly,
            cache_entries: 4096,
            watermark_gossip: None,
        }
    }

    /// The number of backup failures each shard tolerates (`f` of the
    /// paper's 2f+1 replicas).
    pub fn f(&self) -> u32 {
        self.replicas / 2
    }

    /// Sets the clock profile (a bare [`timesync::Discipline`] converts).
    pub fn clocks(mut self, clock: impl Into<ClockSpec>) -> Self {
        self.clock = clock.into();
        self
    }

    /// Preloads `keys` values before traffic starts.
    pub fn preloaded(mut self, keys: u64) -> Self {
        self.preload_keys = keys;
        self
    }

    /// Sets the flash geometry.
    pub fn nand(mut self, nand: NandConfig) -> Self {
        self.nand = nand;
        self
    }

    /// Sets the group-commit flush window.
    pub fn batching(mut self, batch: batchkit::BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the per-server admission gate.
    pub fn admission(mut self, admission: loadkit::AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Shares the given observability bundle with every node.
    pub fn observed(mut self, obs: obskit::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the live-migration knobs.
    pub fn rebalance(mut self, rebalance: RebalanceSpec) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Routes snapshot reads per the given policy (MILANA clients).
    pub fn read_routed(mut self, route: readkit::ReadRoute) -> Self {
        self.read_route = route;
        self
    }

    /// Sets each client's version-cache capacity (0 disables).
    pub fn cached_reads(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// Enables idle watermark-floor gossip from primaries to backups.
    pub fn gossiped_watermarks(mut self, every: Duration) -> Self {
        self.watermark_gossip = Some(every);
        self
    }
}

impl From<ClusterSpec> for ClusterConfig {
    fn from(spec: ClusterSpec) -> ClusterConfig {
        let mut cfg = ClusterConfig {
            shards: spec.shards,
            replicas: spec.replicas,
            clients: spec.clients,
            backend: spec.backend,
            nand: spec.nand,
            clock: spec.clock,
            preload_keys: spec.preload_keys,
            value_size: spec.value_size,
            net: spec.net,
            admission: spec.admission,
            batch: spec.batch,
            obs: spec.obs,
            ..ClusterConfig::default()
        };
        cfg.client_cfg.obs = cfg.obs.clone();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_converts_to_semel_config() {
        let spec = ClusterSpec::new(2, 5, 4).preloaded(100);
        assert_eq!(spec.f(), 2);
        let cfg: ClusterConfig = spec.into();
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.replicas, 5);
        assert_eq!(cfg.clients, 4);
        assert_eq!(cfg.preload_keys, 100);
    }

    #[test]
    #[should_panic(expected = "replicas must be odd")]
    fn even_replica_count_is_rejected() {
        let _ = ClusterSpec::new(1, 2, 1);
    }
}
