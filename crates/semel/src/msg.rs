//! SEMEL wire protocol and client-visible errors.

use flashsim::{Key, Value};
use timesync::{ClientId, Timestamp, Version};

/// Requests understood by a SEMEL shard server.
#[derive(Debug, Clone)]
pub enum SemelRequest {
    /// Snapshot read: youngest version with timestamp `<= at`.
    Get {
        /// The key to read.
        key: Key,
        /// Snapshot timestamp (the client's `t_current`, or a transaction's
        /// begin timestamp).
        at: Timestamp,
    },
    /// Timestamped write (client-assigned version).
    Put {
        /// The key to write.
        key: Key,
        /// The payload.
        value: Value,
        /// Client-assigned version stamp.
        version: Version,
    },
    /// Delete all versions of a key.
    Delete {
        /// The key to delete.
        key: Key,
    },
    /// Periodic client watermark broadcast (§3.1): the timestamp of the
    /// client's last acknowledged operation.
    Watermark {
        /// Reporting client.
        client: ClientId,
        /// Its progress timestamp.
        ts: Timestamp,
    },
    /// Primary → backup replication record (inconsistent replication, §3.2).
    /// `seq` is `None` in SEMEL's relaxed mode; the ordered-replication
    /// ablation tags records with a per-primary sequence number that
    /// backups must apply (and acknowledge) in order.
    Record {
        /// Sequence number for the ordered-replication ablation.
        seq: Option<u64>,
        /// The record to apply.
        rec: ReplicaRecord,
    },
}

/// Replicated operations; applied by backups in arrival order — version
/// stamps carry the real order.
#[derive(Debug, Clone)]
pub enum ReplicaRecord {
    /// A timestamped write.
    Write {
        /// The key.
        key: Key,
        /// The payload.
        value: Value,
        /// Version stamp from the original client write.
        version: Version,
    },
    /// A key deletion.
    Delete {
        /// The key.
        key: Key,
    },
}

/// Replies from a SEMEL shard server.
#[derive(Debug, Clone)]
pub enum SemelResponse {
    /// A successful read.
    Value {
        /// Version stamp of the returned value.
        version: Version,
        /// The payload.
        value: Value,
        /// True if a *prepared* (uncommitted) version existed with timestamp
        /// `<=` the read timestamp — the flag MILANA's local validation
        /// consumes (§4.3). Always false on a plain SEMEL server.
        prepared: bool,
    },
    /// No visible version at the requested timestamp.
    NotFound,
    /// Single-version backend lost the requested snapshot (overwritten by
    /// the carried version).
    SnapshotUnavailable(Version),
    /// Write accepted, durable, and replicated to a majority.
    PutOk,
    /// Write rejected: older than the key's current version (carried).
    Rejected(Version),
    /// Delete completed.
    Deleted,
    /// Replication record applied (backup ack).
    RecordOk,
    /// The primary could not reach a replication majority.
    NoMajority,
    /// Storage out of space.
    Capacity,
    /// The server refused the request instead of doing the work (admission
    /// queue full or request deadline already expired). Nothing was read
    /// or written; the client may retry within its budget.
    Shed(loadkit::Shed),
    /// The key is no longer served here: a rebalance cut it over to
    /// another shard at the carried map epoch. The client re-reads the
    /// map and re-routes.
    Moved {
        /// Map epoch at which the key left this shard.
        epoch: u64,
    },
}

/// Errors surfaced by the SEMEL client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemelError {
    /// No reply from the shard primary within the timeout budget.
    Timeout,
    /// Write lost a timestamp race and exhausted its retries; carries the
    /// winning version.
    Rejected(Version),
    /// No visible version of the key.
    NotFound,
    /// Snapshot read on a single-version store lost to the carried version.
    SnapshotUnavailable(Version),
    /// Storage out of space.
    Capacity,
    /// The primary could not replicate to a majority.
    NoMajority,
    /// The server shed the request (overload or expired deadline) and the
    /// client's retry budget or circuit breaker refused further attempts.
    Overloaded,
}

impl SemelError {
    /// The system-neutral observability class for this error — the same
    /// taxonomy MILANA's [`obskit::AbortClass`] breakdown uses, so mixed
    /// SEMEL/MILANA harnesses can bucket failures uniformly (including
    /// typed per-item rejections out of batched envelopes).
    pub fn class(&self) -> obskit::AbortClass {
        match self {
            SemelError::Timeout => obskit::AbortClass::UnknownOutcome,
            SemelError::Rejected(_) => obskit::AbortClass::Validation,
            SemelError::NotFound => obskit::AbortClass::UserRequested,
            SemelError::SnapshotUnavailable(_) => obskit::AbortClass::SnapshotUnavailable,
            SemelError::Capacity => obskit::AbortClass::Abandoned,
            SemelError::NoMajority => obskit::AbortClass::ParticipantUnreachable,
            SemelError::Overloaded => obskit::AbortClass::Shed,
        }
    }
}

impl std::fmt::Display for SemelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemelError::Timeout => write!(f, "request timed out"),
            SemelError::Rejected(v) => write!(f, "write rejected; current version {v}"),
            SemelError::NotFound => write!(f, "key not found"),
            SemelError::SnapshotUnavailable(v) => {
                write!(f, "snapshot unavailable; overwritten by {v}")
            }
            SemelError::Capacity => write!(f, "storage capacity exhausted"),
            SemelError::NoMajority => write!(f, "replication majority unavailable"),
            SemelError::Overloaded => write!(f, "request shed under overload"),
        }
    }
}

impl std::error::Error for SemelError {}
