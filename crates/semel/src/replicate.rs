//! Quorum replication helper: fire a request at every backup, succeed once
//! `need` of them acknowledge.
//!
//! This is the heart of SEMEL's *lightweight inconsistent replication*
//! (§3.2): records carry their own version stamps, so backups may receive
//! and apply them in any order, and the primary needs only `f` backup acks
//! (a majority of `2f + 1` counting itself) before acknowledging the client.
//! Figure 5's "relaxed backup updates" is exactly this call completing with
//! different backups acknowledging different records.

use std::time::Duration;

use simkit::net::Addr;
use simkit::rpc::RpcClient;
use simkit::sync::mpsc;
use simkit::SimHandle;

/// Sends `req` to every address in `targets` and waits until `need` replies
/// satisfy `accept`. Returns true on quorum, false if too many targets fail
/// (timeout or rejected reply) for a quorum to remain possible.
///
/// `need == 0` returns true immediately (an unreplicated shard).
pub async fn replicate<Req, Resp>(
    handle: &SimHandle,
    rpc: &RpcClient,
    targets: &[Addr],
    req: Req,
    need: usize,
    timeout: Duration,
    accept: impl Fn(&Resp) -> bool + Clone + 'static,
) -> bool
where
    Req: Clone + 'static,
    Resp: Clone + 'static,
{
    replicate_traced(
        handle,
        rpc,
        targets,
        req,
        need,
        timeout,
        accept,
        &obskit::Tracer::disabled(),
        0,
    )
    .await
}

/// [`replicate`] with observability: each accepting backup is recorded as a
/// [`obskit::TraceEvent::ReplicaAck`] carrying the caller-supplied
/// replication sequence number.
#[allow(clippy::too_many_arguments)] // the traced superset of replicate()
pub async fn replicate_traced<Req, Resp>(
    handle: &SimHandle,
    rpc: &RpcClient,
    targets: &[Addr],
    req: Req,
    need: usize,
    timeout: Duration,
    accept: impl Fn(&Resp) -> bool + Clone + 'static,
    tracer: &obskit::Tracer,
    seq: u64,
) -> bool
where
    Req: Clone + 'static,
    Resp: Clone + 'static,
{
    if need == 0 {
        return true;
    }
    if targets.len() < need {
        return false;
    }
    let (tx, rx) = mpsc::channel();
    for &t in targets {
        let rpc = rpc.clone();
        let req = req.clone();
        let tx = tx.clone();
        let accept = accept.clone();
        let tracer = tracer.clone();
        let h = handle.clone();
        handle.spawn(async move {
            let ok = match rpc.call::<Req, Resp>(t, req, timeout).await {
                Ok(resp) => accept(&resp),
                Err(_) => false,
            };
            if ok {
                tracer.record(
                    h.now().as_nanos(),
                    obskit::TraceEvent::ReplicaAck {
                        node: t.node.0 as u64,
                        seq,
                    },
                );
            }
            let _ = tx.send(ok);
        });
    }
    drop(tx);
    let mut acks = 0;
    let mut fails = 0;
    while let Some(ok) = rx.recv().await {
        if ok {
            acks += 1;
            if acks >= need {
                return true;
            }
        } else {
            fails += 1;
            if targets.len() - fails < need {
                return false;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::net::NodeId;
    use simkit::rpc::recv_request;
    use simkit::Sim;

    #[derive(Debug, Clone)]
    struct Rec(#[allow(dead_code)] u32);
    #[derive(Debug, Clone)]
    struct Ack;

    fn spawn_backup(h: &SimHandle, node: NodeId) -> Addr {
        let mb = h.bind(Addr::new(node, 0));
        let h2 = h.clone();
        let addr = mb.addr();
        h.spawn_on(node, async move {
            while let Some((Rec(_), _f, resp)) = recv_request::<Rec>(&h2, &mb).await {
                resp.reply(Ack);
            }
        });
        addr
    }

    const T: Duration = Duration::from_millis(5);

    #[test]
    fn quorum_of_f_acks_suffices() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let ok = sim.block_on(async move {
            let backups: Vec<Addr> = (1..=4).map(|n| spawn_backup(&hh, NodeId(n))).collect();
            let rpc = RpcClient::new(&hh, NodeId(0), 1);
            replicate::<Rec, Ack>(&hh, &rpc, &backups, Rec(7), 2, T, |_| true).await
        });
        assert!(ok);
    }

    #[test]
    fn survives_minority_failures() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let ok = sim.block_on(async move {
            let backups: Vec<Addr> = (1..=4).map(|n| spawn_backup(&hh, NodeId(n))).collect();
            hh.kill_node(NodeId(1));
            hh.kill_node(NodeId(2));
            let rpc = RpcClient::new(&hh, NodeId(0), 1);
            replicate::<Rec, Ack>(&hh, &rpc, &backups, Rec(7), 2, T, |_| true).await
        });
        assert!(ok);
    }

    #[test]
    fn fails_without_quorum() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let ok = sim.block_on(async move {
            let backups: Vec<Addr> = (1..=4).map(|n| spawn_backup(&hh, NodeId(n))).collect();
            for n in 1..=3 {
                hh.kill_node(NodeId(n));
            }
            let rpc = RpcClient::new(&hh, NodeId(0), 1);
            replicate::<Rec, Ack>(&hh, &rpc, &backups, Rec(7), 2, T, |_| true).await
        });
        assert!(!ok);
    }

    #[test]
    fn zero_need_is_immediate() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let ok = sim.block_on(async move {
            let rpc = RpcClient::new(&hh, NodeId(0), 1);
            replicate::<Rec, Ack>(&hh, &rpc, &[], Rec(0), 0, T, |_| true).await
        });
        assert!(ok);
    }

    #[test]
    fn rejecting_replies_do_not_count() {
        let mut sim = Sim::new(1);
        let h = sim.handle();
        let hh = h.clone();
        let ok = sim.block_on(async move {
            let backups: Vec<Addr> = (1..=2).map(|n| spawn_backup(&hh, NodeId(n))).collect();
            let rpc = RpcClient::new(&hh, NodeId(0), 1);
            replicate::<Rec, Ack>(&hh, &rpc, &backups, Rec(7), 1, T, |_| false).await
        });
        assert!(!ok);
    }
}
