//! The SEMEL shard server: linearizable single-key RPCs over a storage
//! backend, with primary/backup inconsistent replication (§3.2, §3.3).
//!
//! - A **primary** serializes all reads/writes for its shard. Writes carry
//!   client-assigned version stamps; stale stamps are rejected (at-most-once)
//!   and exact duplicates are re-acknowledged idempotently. A write is acked
//!   after it is locally durable *and* `f` of the `2f` backups acknowledged
//!   its record — in any order relative to other records.
//! - A **backup** just applies records; ordering is reconstructed from
//!   version stamps, never from arrival order.

use std::rc::Rc;
use std::time::Duration;

use flashsim::{Backend, StoreError};
use loadkit::{Admission, AdmissionConfig};
use simkit::net::Addr;
use simkit::rpc::{recv_request, Responder, RpcClient};
use simkit::SimHandle;
use timesync::{ClientId, Timestamp, WatermarkTracker};

use crate::msg::{ReplicaRecord, SemelRequest, SemelResponse};
use crate::replicate::replicate_traced;
use crate::shard::ShardId;

/// How a primary streams records to its backups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// SEMEL's relaxed mode (§3.2): backups apply and acknowledge records
    /// in arrival order; version stamps carry the real order.
    #[default]
    Inconsistent,
    /// The conventional alternative: records carry sequence numbers and a
    /// backup holds record *n+1* (neither applying nor acknowledging it)
    /// until it has applied record *n* — so one delayed message stalls the
    /// acknowledgement of everything behind it.
    Ordered,
}

/// Static configuration of one shard replica.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which shard this replica serves.
    pub shard: ShardId,
    /// This replica's service address (its mailbox).
    pub addr: Addr,
    /// The shard's backup addresses (empty on backups themselves).
    pub backups: Vec<Addr>,
    /// True for the designated primary.
    pub is_primary: bool,
    /// Budget for each backup replication RPC.
    pub repl_timeout: Duration,
    /// Clients whose watermark reports gate garbage collection.
    pub clients: Vec<ClientId>,
    /// Replication ordering discipline (ablation knob; SEMEL uses
    /// [`ReplicationMode::Inconsistent`]).
    pub replication: ReplicationMode,
    /// Keep at least this much version history regardless of watermark
    /// progress (§3.1's tunable GC window). `None` prunes purely by
    /// watermark.
    pub history_window: Option<std::time::Duration>,
    /// Overload control: bounded cost-aware admission for client-facing
    /// operations (replication and watermark traffic is exempt — refusing
    /// it would only amplify recovery work).
    pub admission: AdmissionConfig,
    /// Observability: metric registry plus (optionally enabled) structured
    /// trace sink.
    pub obs: obskit::Obs,
}

/// Admission cost of a point read.
pub const COST_GET: u64 = 1;
/// Admission cost of a replicated write or delete (backend write + backup
/// fan-out holds capacity longer than a read).
pub const COST_PUT: u64 = 2;

impl ServerConfig {
    /// Majority parameter: acks needed from backups (`f` of `2f`).
    pub fn need_acks(&self) -> usize {
        self.backups.len() / 2
    }
}

/// One running shard replica. Cloning shares the server state.
#[derive(Clone)]
pub struct ShardServer {
    handle: SimHandle,
    backend: Backend,
    cfg: Rc<ServerConfig>,
    admission: Admission,
    rpc: RpcClient,
    watermarks: Rc<std::cell::RefCell<WatermarkTracker>>,
    /// Primary: next sequence number to assign (ordered mode).
    next_seq: Rc<std::cell::Cell<u64>>,
    /// Primary: sequence stamp for [`obskit::TraceEvent::ReplicaAck`]
    /// events (counts replication rounds in both modes).
    trace_seq: Rc<std::cell::Cell<u64>>,
    /// Backup: in-order application state (ordered mode).
    ordered: Rc<std::cell::RefCell<OrderedBackup>>,
}

#[derive(Debug, Default)]
struct OrderedBackup {
    next_apply: u64,
    /// Records that arrived ahead of their turn, with their responders.
    held: std::collections::BTreeMap<u64, (ReplicaRecord, Responder)>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard", &self.cfg.shard)
            .field("addr", &self.cfg.addr)
            .field("primary", &self.cfg.is_primary)
            .finish()
    }
}

impl ShardServer {
    /// Spawns the server loop on `cfg.addr.node` and returns a handle to it.
    /// The `backend` outlives node failures, modeling durable storage.
    pub fn spawn(handle: &SimHandle, backend: Backend, cfg: ServerConfig) -> ShardServer {
        let admission =
            Admission::observed(cfg.admission.clone(), &cfg.obs, cfg.addr.node.0 as u64);
        let server = ShardServer {
            handle: handle.clone(),
            backend,
            admission,
            rpc: RpcClient::new(&handle.clone(), cfg.addr.node, cfg.addr.port + 1),
            watermarks: Rc::new(std::cell::RefCell::new(WatermarkTracker::new(
                cfg.clients.iter().copied(),
            ))),
            cfg: Rc::new(cfg),
            next_seq: Rc::new(std::cell::Cell::new(0)),
            trace_seq: Rc::new(std::cell::Cell::new(0)),
            ordered: Rc::new(std::cell::RefCell::new(OrderedBackup::default())),
        };
        server.spawn_loop();
        server
    }

    fn spawn_loop(&self) {
        let mailbox = self.handle.bind(self.cfg.addr);
        let me = self.clone();
        let h = self.handle.clone();
        self.handle.spawn_on(self.cfg.addr.node, async move {
            while let Some((req, _from, resp)) = recv_request::<SemelRequest>(&h, &mailbox).await {
                let me2 = me.clone();
                // Handle each request in its own task so slow device ops
                // do not serialize the shard.
                h.spawn_on(me.cfg.addr.node, async move {
                    me2.handle_request(req, resp).await;
                });
            }
        });
    }

    /// The storage backend (exposed for preloading and test inspection).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// This replica's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Overload gate for client-facing work: refuse already-expired
    /// requests, then claim admission capacity for `cost`. On refusal the
    /// responder is consumed replying with the [`SemelResponse::Shed`].
    fn admit(&self, cost: u64, resp: Responder) -> Result<(loadkit::Permit, Responder), ()> {
        let now = self.handle.now();
        if resp.deadline().expired(now) {
            let shed = self.admission.shed_deadline(now.as_nanos());
            resp.reply(SemelResponse::Shed(shed));
            return Err(());
        }
        match self.admission.try_admit(now.as_nanos(), cost) {
            Ok(permit) => Ok((permit, resp)),
            Err(shed) => {
                resp.reply(SemelResponse::Shed(shed));
                Err(())
            }
        }
    }

    async fn handle_request(&self, req: SemelRequest, resp: Responder) {
        let (_permit, resp) = match &req {
            SemelRequest::Get { .. } => match self.admit(COST_GET, resp) {
                Ok((p, r)) => (Some(p), r),
                Err(()) => return,
            },
            SemelRequest::Put { .. } | SemelRequest::Delete { .. } => {
                match self.admit(COST_PUT, resp) {
                    Ok((p, r)) => (Some(p), r),
                    Err(()) => return,
                }
            }
            // Replication and watermark control traffic must always land:
            // shedding it amplifies recovery work instead of reducing load.
            SemelRequest::Record { .. } | SemelRequest::Watermark { .. } => (None, resp),
        };
        match req {
            SemelRequest::Get { key, at } => {
                let r = match self.backend.get_at(&key, at).await {
                    Ok(vv) => SemelResponse::Value {
                        version: vv.version,
                        value: vv.value,
                        prepared: false,
                    },
                    Err(StoreError::NotFound) => SemelResponse::NotFound,
                    Err(StoreError::SnapshotUnavailable(v)) => {
                        SemelResponse::SnapshotUnavailable(v)
                    }
                    Err(_) => SemelResponse::Capacity,
                };
                resp.reply(r);
            }
            SemelRequest::Put {
                key,
                value,
                version,
            } => {
                let r = self.handle_put(key, value, version).await;
                resp.reply(r);
            }
            SemelRequest::Delete { key } => {
                self.backend.delete(&key);
                let rec = ReplicaRecord::Delete { key };
                let ok = replicate_traced::<SemelRequest, SemelResponse>(
                    &self.handle,
                    &self.rpc,
                    &self.cfg.backups,
                    SemelRequest::Record {
                        seq: self.assign_seq(),
                        rec,
                    },
                    self.cfg.need_acks(),
                    self.cfg.repl_timeout,
                    |r| matches!(r, SemelResponse::RecordOk),
                    &self.cfg.obs.tracer,
                    self.trace_seq.replace(self.trace_seq.get() + 1),
                )
                .await;
                resp.reply(if ok {
                    SemelResponse::Deleted
                } else {
                    SemelResponse::NoMajority
                });
            }
            SemelRequest::Watermark { client, ts } => {
                let mut wm = {
                    let mut w = self.watermarks.borrow_mut();
                    w.update(client, ts);
                    w.watermark()
                };
                if let Some(window) = self.cfg.history_window {
                    let floor = Timestamp::from_sim(self.handle.now()).before(window);
                    wm = wm.min(floor);
                }
                if wm > Timestamp::ZERO && wm < Timestamp::MAX {
                    self.backend.set_watermark(wm);
                }
                resp.reply(SemelResponse::RecordOk);
            }
            SemelRequest::Record { seq, rec } => match seq {
                None => {
                    let r = self.apply_record(rec).await;
                    resp.reply(r);
                }
                Some(seq) => self.handle_ordered_record(seq, rec, resp).await,
            },
        }
    }

    fn assign_seq(&self) -> Option<u64> {
        match self.cfg.replication {
            ReplicationMode::Inconsistent => None,
            ReplicationMode::Ordered => {
                let s = self.next_seq.get();
                self.next_seq.set(s + 1);
                Some(s)
            }
        }
    }

    async fn apply_record(&self, rec: ReplicaRecord) -> SemelResponse {
        match rec {
            ReplicaRecord::Write {
                key,
                value,
                version,
            } => match self.backend.apply_unordered(key, value, version).await {
                Ok(()) => SemelResponse::RecordOk,
                Err(_) => SemelResponse::Capacity,
            },
            ReplicaRecord::Delete { key } => {
                self.backend.delete(&key);
                SemelResponse::RecordOk
            }
        }
    }

    /// Ordered-mode backup path: apply strictly by sequence number, holding
    /// early arrivals (and their acknowledgements) until the gap fills.
    async fn handle_ordered_record(&self, seq: u64, rec: ReplicaRecord, resp: Responder) {
        {
            let mut ob = self.ordered.borrow_mut();
            if seq > ob.next_apply {
                ob.held.insert(seq, (rec, resp));
                return;
            }
            if seq < ob.next_apply {
                // Duplicate of something already applied.
                resp.reply(SemelResponse::RecordOk);
                return;
            }
        }
        // seq == next_apply: apply, then drain any ready successors.
        let r = self.apply_record(rec).await;
        resp.reply(r);
        loop {
            let next = {
                let mut ob = self.ordered.borrow_mut();
                ob.next_apply += 1;
                let n = ob.next_apply;
                ob.held.remove(&n)
            };
            match next {
                Some((rec, resp)) => {
                    let r = self.apply_record(rec).await;
                    resp.reply(r);
                }
                None => break,
            }
        }
    }

    async fn handle_put(
        &self,
        key: flashsim::Key,
        value: flashsim::Value,
        version: timesync::Version,
    ) -> SemelResponse {
        match self.backend.put(key.clone(), value.clone(), version).await {
            Ok(()) => {}
            Err(StoreError::StaleWrite(current)) if current == version => {
                // Retransmission of a completed write: re-replicate (the
                // original majority may have been partial) and re-ack.
            }
            Err(StoreError::StaleWrite(current)) => {
                return SemelResponse::Rejected(current);
            }
            Err(_) => return SemelResponse::Capacity,
        }
        let rec = ReplicaRecord::Write {
            key,
            value,
            version,
        };
        let ok = replicate_traced::<SemelRequest, SemelResponse>(
            &self.handle,
            &self.rpc,
            &self.cfg.backups,
            SemelRequest::Record {
                seq: self.assign_seq(),
                rec,
            },
            self.cfg.need_acks(),
            self.cfg.repl_timeout,
            |r| matches!(r, SemelResponse::RecordOk),
            &self.cfg.obs.tracer,
            self.trace_seq.replace(self.trace_seq.get() + 1),
        )
        .await;
        if ok {
            SemelResponse::PutOk
        } else {
            SemelResponse::NoMajority
        }
    }
}
