//! The SEMEL shard server: linearizable single-key RPCs over a storage
//! backend, with primary/backup inconsistent replication (§3.2, §3.3).
//!
//! - A **primary** serializes all reads/writes for its shard. Writes carry
//!   client-assigned version stamps; stale stamps are rejected (at-most-once)
//!   and exact duplicates are re-acknowledged idempotently. A write is acked
//!   after it is locally durable *and* `f` of the `2f` backups acknowledged
//!   its record — in any order relative to other records.
//! - A **backup** just applies records; ordering is reconstructed from
//!   version stamps, never from arrival order.

use std::rc::Rc;
use std::time::Duration;

use batchkit::{BatchConfig, Batcher};
use flashsim::{Backend, StoreError};
use loadkit::{Admission, AdmissionConfig};
use simkit::net::Addr;
use simkit::rpc::{recv_incoming, Batch, BatchReply, Incoming, Responder, RpcClient};
use simkit::SimHandle;
use timesync::{ClientId, Timestamp, WatermarkTracker};

use crate::msg::{ReplicaRecord, SemelRequest, SemelResponse};
use crate::replicate::replicate_traced;
use crate::shard::ShardId;

/// How a primary streams records to its backups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// SEMEL's relaxed mode (§3.2): backups apply and acknowledge records
    /// in arrival order; version stamps carry the real order.
    #[default]
    Inconsistent,
    /// The conventional alternative: records carry sequence numbers and a
    /// backup holds record *n+1* (neither applying nor acknowledging it)
    /// until it has applied record *n* — so one delayed message stalls the
    /// acknowledgement of everything behind it.
    Ordered,
}

/// Static configuration of one shard replica.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which shard this replica serves.
    pub shard: ShardId,
    /// This replica's service address (its mailbox).
    pub addr: Addr,
    /// The shard's backup addresses (empty on backups themselves).
    pub backups: Vec<Addr>,
    /// True for the designated primary.
    pub is_primary: bool,
    /// Budget for each backup replication RPC.
    pub repl_timeout: Duration,
    /// Clients whose watermark reports gate garbage collection.
    pub clients: Vec<ClientId>,
    /// Replication ordering discipline (ablation knob; SEMEL uses
    /// [`ReplicationMode::Inconsistent`]).
    pub replication: ReplicationMode,
    /// Keep at least this much version history regardless of watermark
    /// progress (§3.1's tunable GC window). `None` prunes purely by
    /// watermark.
    pub history_window: Option<std::time::Duration>,
    /// Overload control: bounded cost-aware admission for client-facing
    /// operations (replication and watermark traffic is exempt — refusing
    /// it would only amplify recovery work).
    pub admission: AdmissionConfig,
    /// Group-commit replication: the primary coalesces up to `batch_max`
    /// records (or `batch_deadline` worth) into one backup envelope. Only
    /// effective in [`ReplicationMode::Inconsistent`] — ordered mode's
    /// gap-filling holds per-record responders and bypasses the batcher.
    /// `batch_max = 1` reproduces the unbatched per-record fan-out.
    pub batch: BatchConfig,
    /// Observability: metric registry plus (optionally enabled) structured
    /// trace sink.
    pub obs: obskit::Obs,
    /// The cluster map, when shared with the server: client-facing
    /// requests for keys the map no longer assigns to this shard are
    /// fenced with [`SemelResponse::Moved`] instead of being served —
    /// the source side of a rebalance cutover. `None` disables the check
    /// (single-shard deployments and unit harnesses).
    pub map: Option<Rc<std::cell::RefCell<crate::shard::ShardMap>>>,
}

/// Admission cost of a point read.
pub const COST_GET: u64 = 1;
/// Admission cost of a replicated write or delete (backend write + backup
/// fan-out holds capacity longer than a read).
pub const COST_PUT: u64 = 2;

impl ServerConfig {
    /// Majority parameter: acks needed from backups (`f` of `2f`).
    pub fn need_acks(&self) -> usize {
        self.backups.len() / 2
    }
}

/// One running shard replica. Cloning shares the server state.
#[derive(Clone)]
pub struct ShardServer {
    handle: SimHandle,
    backend: Backend,
    cfg: Rc<ServerConfig>,
    admission: Admission,
    rpc: RpcClient,
    watermarks: Rc<std::cell::RefCell<WatermarkTracker>>,
    /// High-water mark of GC floors this replica has acted on. Explicitly
    /// monotone: late or regressing reports (clock steps, respawns reusing
    /// the backend) can never pull it back.
    applied_wm: Rc<std::cell::Cell<Timestamp>>,
    /// Primary: next sequence number to assign (ordered mode).
    next_seq: Rc<std::cell::Cell<u64>>,
    /// Primary: sequence stamp for [`obskit::TraceEvent::ReplicaAck`]
    /// events (counts replication rounds in both modes).
    trace_seq: Rc<std::cell::Cell<u64>>,
    /// Backup: in-order application state (ordered mode).
    ordered: Rc<std::cell::RefCell<OrderedBackup>>,
    /// Primary, inconsistent mode: the group-commit batcher. Each flushed
    /// batch goes to every backup as one envelope; an item's submit future
    /// resolves true once `f` backups acknowledged its whole batch.
    repl_batch: Option<Batcher<ReplicaRecord, bool>>,
}

#[derive(Debug, Default)]
struct OrderedBackup {
    next_apply: u64,
    /// Records that arrived ahead of their turn, with their responders.
    held: std::collections::BTreeMap<u64, (ReplicaRecord, Responder)>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("shard", &self.cfg.shard)
            .field("addr", &self.cfg.addr)
            .field("primary", &self.cfg.is_primary)
            .finish()
    }
}

impl ShardServer {
    /// Spawns the server loop on `cfg.addr.node` and returns a handle to it.
    /// The `backend` outlives node failures, modeling durable storage.
    pub fn spawn(handle: &SimHandle, backend: Backend, cfg: ServerConfig) -> ShardServer {
        let admission =
            Admission::observed(cfg.admission.clone(), &cfg.obs, cfg.addr.node.0 as u64);
        let rpc = RpcClient::new(&handle.clone(), cfg.addr.node, cfg.addr.port + 1);
        let cfg = Rc::new(cfg);
        let trace_seq = Rc::new(std::cell::Cell::new(0));
        let repl_batch = (cfg.is_primary
            && cfg.replication == ReplicationMode::Inconsistent
            && !cfg.backups.is_empty())
        .then(|| Self::spawn_repl_batcher(handle, &rpc, &cfg, &trace_seq));
        let server = ShardServer {
            handle: handle.clone(),
            backend,
            admission,
            rpc,
            watermarks: Rc::new(std::cell::RefCell::new(WatermarkTracker::new(
                cfg.clients.iter().copied(),
            ))),
            applied_wm: Rc::new(std::cell::Cell::new(Timestamp::ZERO)),
            cfg,
            next_seq: Rc::new(std::cell::Cell::new(0)),
            trace_seq,
            ordered: Rc::new(std::cell::RefCell::new(OrderedBackup::default())),
            repl_batch,
        };
        server.spawn_loop();
        server
    }

    /// Builds the primary's group-commit batcher: a flush turns the drained
    /// records into one `Batch<Record>` envelope per backup and succeeds
    /// (for every item at once) when `f` backups acknowledge the whole
    /// batch — so no record is ever acked with less than `f` coverage.
    fn spawn_repl_batcher(
        handle: &SimHandle,
        rpc: &RpcClient,
        cfg: &Rc<ServerConfig>,
        trace_seq: &Rc<std::cell::Cell<u64>>,
    ) -> Batcher<ReplicaRecord, bool> {
        let envelopes = cfg
            .obs
            .registry
            .counter(&format!("semel.node{}.repl_envelopes", cfg.addr.node.0));
        let records = cfg
            .obs
            .registry
            .counter(&format!("semel.node{}.repl_records", cfg.addr.node.0));
        let h = handle.clone();
        let rpc = rpc.clone();
        let cfg2 = Rc::clone(cfg);
        let trace_seq = Rc::clone(trace_seq);
        Batcher::new(
            handle,
            cfg.addr.node,
            &format!("semel.repl.node{}", cfg.addr.node.0),
            cfg.batch,
            cfg.obs.clone(),
            move |recs: Vec<ReplicaRecord>| {
                let h = h.clone();
                let rpc = rpc.clone();
                let cfg = Rc::clone(&cfg2);
                let n = recs.len();
                envelopes.add(cfg.backups.len() as u64);
                records.add(n as u64);
                let seq = trace_seq.replace(trace_seq.get() + 1);
                async move {
                    let items: Vec<SemelRequest> = recs
                        .into_iter()
                        .map(|rec| SemelRequest::Record { seq: None, rec })
                        .collect();
                    let ok = replicate_traced::<Batch<SemelRequest>, BatchReply<SemelResponse>>(
                        &h,
                        &rpc,
                        &cfg.backups,
                        Batch { items },
                        cfg.need_acks(),
                        cfg.repl_timeout,
                        |r| r.items.iter().all(|i| matches!(i, SemelResponse::RecordOk)),
                        &cfg.obs.tracer,
                        seq,
                    )
                    .await;
                    vec![ok; n]
                }
            },
        )
    }

    fn spawn_loop(&self) {
        let mailbox = self.handle.bind(self.cfg.addr);
        let me = self.clone();
        let h = self.handle.clone();
        self.handle.spawn_on(self.cfg.addr.node, async move {
            while let Some((incoming, _from, resp)) =
                recv_incoming::<SemelRequest>(&h, &mailbox).await
            {
                let me2 = me.clone();
                // Handle each envelope in its own task so slow device ops
                // do not serialize the shard.
                h.spawn_on(me.cfg.addr.node, async move {
                    match incoming {
                        Incoming::One(req) => me2.handle_request(req, resp).await,
                        Incoming::Batch(items) => me2.handle_batch(items, resp).await,
                    }
                });
            }
        });
    }

    /// The storage backend (exposed for preloading and test inspection).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// This replica's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Overload gate for client-facing work: refuse already-expired
    /// requests, then claim admission capacity for `cost`. On refusal the
    /// responder is consumed replying with the [`SemelResponse::Shed`].
    fn admit(&self, cost: u64, resp: Responder) -> Result<(loadkit::Permit, Responder), ()> {
        let now = self.handle.now();
        if resp.deadline().expired(now) {
            let shed = self.admission.shed_deadline(now.as_nanos());
            resp.reply(SemelResponse::Shed(shed));
            return Err(());
        }
        match self.admission.try_admit(now.as_nanos(), cost) {
            Ok(permit) => Ok((permit, resp)),
            Err(shed) => {
                resp.reply(SemelResponse::Shed(shed));
                Err(())
            }
        }
    }

    async fn handle_request(&self, req: SemelRequest, resp: Responder) {
        let (_permit, resp) = match &req {
            SemelRequest::Get { .. } => match self.admit(COST_GET, resp) {
                Ok((p, r)) => (Some(p), r),
                Err(()) => return,
            },
            SemelRequest::Put { .. } | SemelRequest::Delete { .. } => {
                match self.admit(COST_PUT, resp) {
                    Ok((p, r)) => (Some(p), r),
                    Err(()) => return,
                }
            }
            // Replication and watermark control traffic must always land:
            // shedding it amplifies recovery work instead of reducing load.
            SemelRequest::Record { .. } | SemelRequest::Watermark { .. } => (None, resp),
        };
        // Cutover fence: keys the shared map no longer assigns here are
        // answered with a forwarding stub, never served from local state.
        if let Some(map) = &self.cfg.map {
            let moved_key = match &req {
                SemelRequest::Get { key, .. }
                | SemelRequest::Put { key, .. }
                | SemelRequest::Delete { key } => Some(key),
                _ => None,
            };
            if let Some(key) = moved_key {
                let (owner, epoch) = {
                    let m = map.borrow();
                    (m.shard_for(key), m.epoch())
                };
                if owner != self.cfg.shard {
                    resp.reply(SemelResponse::Moved { epoch });
                    return;
                }
            }
        }
        match req {
            SemelRequest::Get { key, at } => {
                let r = match self.backend.get_at(&key, at).await {
                    Ok(vv) => SemelResponse::Value {
                        version: vv.version,
                        value: vv.value,
                        prepared: false,
                    },
                    Err(StoreError::NotFound) => SemelResponse::NotFound,
                    Err(StoreError::SnapshotUnavailable(v)) => {
                        SemelResponse::SnapshotUnavailable(v)
                    }
                    Err(_) => SemelResponse::Capacity,
                };
                resp.reply(r);
            }
            SemelRequest::Put {
                key,
                value,
                version,
            } => {
                let r = self.handle_put(key, value, version).await;
                resp.reply(r);
            }
            SemelRequest::Delete { key } => {
                self.backend.delete(&key);
                let rec = ReplicaRecord::Delete { key };
                let ok = self.replicate_record(rec).await;
                resp.reply(if ok {
                    SemelResponse::Deleted
                } else {
                    SemelResponse::NoMajority
                });
            }
            SemelRequest::Watermark { client, ts } => {
                self.merge_watermark(client, ts);
                resp.reply(SemelResponse::RecordOk);
            }
            SemelRequest::Record { seq, rec } => match seq {
                None => {
                    let r = self.apply_record(rec).await;
                    resp.reply(r);
                }
                Some(seq) => self.handle_ordered_record(seq, rec, resp).await,
            },
        }
    }

    /// Backup path for a coalesced replication envelope: apply every item
    /// in order and answer them all in one [`BatchReply`]. Only replication
    /// records and watermark reports travel in batches; client-facing
    /// operations arriving batched is a wiring bug.
    async fn handle_batch(&self, items: Vec<SemelRequest>, resp: Responder) {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let r = match item {
                SemelRequest::Record { seq: None, rec } => self.apply_record(rec).await,
                SemelRequest::Watermark { client, ts } => {
                    self.merge_watermark(client, ts);
                    SemelResponse::RecordOk
                }
                other => panic!("unbatchable semel request in batch envelope: {other:?}"),
            };
            out.push(r);
        }
        resp.reply_batch(out);
    }

    /// Merges one client's watermark report and advances the backend's GC
    /// floor (bounded below by the configured history window).
    fn merge_watermark(&self, client: ClientId, ts: Timestamp) {
        let mut wm = {
            let mut w = self.watermarks.borrow_mut();
            w.update(client, ts);
            w.watermark()
        };
        if let Some(window) = self.cfg.history_window {
            let floor = Timestamp::from_sim(self.handle.now()).before(window);
            wm = wm.min(floor);
        }
        if wm > Timestamp::ZERO && wm < Timestamp::MAX {
            if wm > self.applied_wm.get() {
                self.applied_wm.set(wm);
            }
            self.backend.set_watermark(wm);
        }
    }

    /// The highest GC floor this replica has applied. Monotone for the
    /// lifetime of the server handle — snapshot readers may rely on it
    /// never regressing.
    pub fn applied_watermark(&self) -> Timestamp {
        self.applied_wm.get()
    }

    /// Replicates one record to the backups, through the group-commit
    /// batcher when one is running (primary, inconsistent mode) and as a
    /// standalone fan-out otherwise. Returns true once `f` backups cover
    /// the record.
    async fn replicate_record(&self, rec: ReplicaRecord) -> bool {
        if let Some(batcher) = &self.repl_batch {
            return batcher.submit(rec).await.unwrap_or(false);
        }
        replicate_traced::<SemelRequest, SemelResponse>(
            &self.handle,
            &self.rpc,
            &self.cfg.backups,
            SemelRequest::Record {
                seq: self.assign_seq(),
                rec,
            },
            self.cfg.need_acks(),
            self.cfg.repl_timeout,
            |r| matches!(r, SemelResponse::RecordOk),
            &self.cfg.obs.tracer,
            self.trace_seq.replace(self.trace_seq.get() + 1),
        )
        .await
    }

    fn assign_seq(&self) -> Option<u64> {
        match self.cfg.replication {
            ReplicationMode::Inconsistent => None,
            ReplicationMode::Ordered => {
                let s = self.next_seq.get();
                self.next_seq.set(s + 1);
                Some(s)
            }
        }
    }

    async fn apply_record(&self, rec: ReplicaRecord) -> SemelResponse {
        match rec {
            ReplicaRecord::Write {
                key,
                value,
                version,
            } => match self.backend.apply_unordered(key, value, version).await {
                Ok(()) => SemelResponse::RecordOk,
                Err(_) => SemelResponse::Capacity,
            },
            ReplicaRecord::Delete { key } => {
                self.backend.delete(&key);
                SemelResponse::RecordOk
            }
        }
    }

    /// Ordered-mode backup path: apply strictly by sequence number, holding
    /// early arrivals (and their acknowledgements) until the gap fills.
    async fn handle_ordered_record(&self, seq: u64, rec: ReplicaRecord, resp: Responder) {
        {
            let mut ob = self.ordered.borrow_mut();
            if seq > ob.next_apply {
                ob.held.insert(seq, (rec, resp));
                return;
            }
            if seq < ob.next_apply {
                // Duplicate of something already applied.
                resp.reply(SemelResponse::RecordOk);
                return;
            }
        }
        // seq == next_apply: apply, then drain any ready successors.
        let r = self.apply_record(rec).await;
        resp.reply(r);
        loop {
            let next = {
                let mut ob = self.ordered.borrow_mut();
                ob.next_apply += 1;
                let n = ob.next_apply;
                ob.held.remove(&n)
            };
            match next {
                Some((rec, resp)) => {
                    let r = self.apply_record(rec).await;
                    resp.reply(r);
                }
                None => break,
            }
        }
    }

    async fn handle_put(
        &self,
        key: flashsim::Key,
        value: flashsim::Value,
        version: timesync::Version,
    ) -> SemelResponse {
        match self.backend.put(key.clone(), value.clone(), version).await {
            Ok(()) => {}
            Err(StoreError::StaleWrite(current)) if current == version => {
                // Retransmission of a completed write: re-replicate (the
                // original majority may have been partial) and re-ack.
            }
            Err(StoreError::StaleWrite(current)) => {
                return SemelResponse::Rejected(current);
            }
            Err(_) => return SemelResponse::Capacity,
        }
        let rec = ReplicaRecord::Write {
            key,
            value,
            version,
        };
        let ok = self.replicate_record(rec).await;
        if ok {
            SemelResponse::PutOk
        } else {
            SemelResponse::NoMajority
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::BackendKind;
    use simkit::Sim;

    fn test_server(handle: &SimHandle, clients: Vec<ClientId>) -> ShardServer {
        let backend = Backend::new(BackendKind::Mftl, handle, flashsim::NandConfig::default());
        ShardServer::spawn(
            handle,
            backend,
            ServerConfig {
                shard: ShardId(0),
                addr: Addr::new(simkit::net::NodeId(0), 0),
                backups: Vec::new(),
                is_primary: true,
                repl_timeout: Duration::from_millis(10),
                clients,
                replication: ReplicationMode::Inconsistent,
                history_window: None,
                admission: AdmissionConfig::default(),
                batch: BatchConfig::default(),
                obs: obskit::Obs::new(),
                map: None,
            },
        )
    }

    #[test]
    fn applied_watermark_never_regresses() {
        let mut sim = Sim::new(7);
        let h = sim.handle();
        let server = test_server(&h, vec![ClientId(0), ClientId(1)]);
        sim.block_on(async move {
            assert_eq!(server.applied_watermark(), Timestamp::ZERO);
            server.merge_watermark(ClientId(0), Timestamp(30));
            server.merge_watermark(ClientId(1), Timestamp(10));
            assert_eq!(server.applied_watermark(), Timestamp(10));
            // Reports only ever raise the floor, even arriving out of order
            // (a stepped clock re-sending an old report, say).
            server.merge_watermark(ClientId(1), Timestamp(5));
            assert_eq!(server.applied_watermark(), Timestamp(10));
            server.merge_watermark(ClientId(1), Timestamp(40));
            assert_eq!(server.applied_watermark(), Timestamp(30));
            server.merge_watermark(ClientId(0), Timestamp(25));
            assert_eq!(server.applied_watermark(), Timestamp(30));
        });
    }
}
