//! The SEMEL client library (§3): assigns precision timestamps to every
//! operation, routes by shard map, retries timestamp races with fresh
//! stamps, and broadcasts watermarks for garbage collection.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use flashsim::{Key, Value, VersionedValue};
use loadkit::{RetryConfig, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simkit::net::NodeId;
use simkit::rpc::{RpcClient, RpcError};
use simkit::SimHandle;
use timesync::{ClientId, ClockSpec, SyncedClock, Timestamp, Version};

use crate::msg::{SemelError, SemelRequest, SemelResponse};
use crate::shard::{ShardId, ShardMap};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-RPC timeout.
    pub rpc_timeout: Duration,
    /// How many fresh-timestamp retries a racing put gets before giving up.
    pub put_retries: u32,
    /// How often the client broadcasts its watermark (§3.1).
    pub watermark_interval: Duration,
    /// Retry discipline: jittered backoff, retry budget, per-shard
    /// circuit breaker.
    pub retry: RetryConfig,
    /// Observability sinks (clock-sync trace events).
    pub obs: obskit::Obs,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            rpc_timeout: Duration::from_millis(50),
            put_retries: 8,
            watermark_interval: Duration::from_millis(100),
            retry: RetryConfig::default(),
            obs: obskit::Obs::new(),
        }
    }
}

/// A SEMEL client (an application server). Cloning shares the client.
#[derive(Clone)]
pub struct SemelClient {
    handle: SimHandle,
    id: ClientId,
    clock: Rc<SyncedClock>,
    map: Rc<RefCell<ShardMap>>,
    rpc: RpcClient,
    cfg: Rc<ClientConfig>,
    policy: Rc<RetryPolicy>,
    last_acked: Rc<Cell<Timestamp>>,
}

impl std::fmt::Debug for SemelClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemelClient").field("id", &self.id).finish()
    }
}

/// Reply port used by SEMEL clients on their node.
pub const CLIENT_RPC_PORT: u16 = 32;

/// Builder for [`SemelClient`]: the four identity parameters are
/// mandatory, every knob defaults (perfect clock, [`ClientConfig`]
/// defaults) and can be overridden individually. Terminal call is
/// [`SemelClientBuilder::build`].
#[derive(Clone)]
pub struct SemelClientBuilder {
    handle: SimHandle,
    node: NodeId,
    id: ClientId,
    map: Rc<RefCell<ShardMap>>,
    clock: ClockSpec,
    cfg: ClientConfig,
}

impl SemelClientBuilder {
    /// Clock profile (default: [`ClockSpec::perfect`]). A bare
    /// [`Discipline`] converts via `Into`.
    pub fn clock(mut self, clock: impl Into<ClockSpec>) -> Self {
        self.clock = clock.into();
        self
    }

    /// Replaces the whole config in one call (escape hatch for callers
    /// that already hold a [`ClientConfig`]).
    pub fn config(mut self, cfg: ClientConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Per-RPC timeout.
    pub fn rpc_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.rpc_timeout = timeout;
        self
    }

    /// Fresh-timestamp retries for a racing put.
    pub fn put_retries(mut self, retries: u32) -> Self {
        self.cfg.put_retries = retries;
        self
    }

    /// Watermark broadcast period (§3.1).
    pub fn watermark_interval(mut self, interval: Duration) -> Self {
        self.cfg.watermark_interval = interval;
        self
    }

    /// Retry discipline: jittered backoff, budget, circuit breaker.
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Observability sinks.
    pub fn obs(mut self, obs: obskit::Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Creates the client and starts its watermark broadcast task.
    pub fn build(self) -> SemelClient {
        SemelClient::build_inner(
            &self.handle,
            self.node,
            self.id,
            self.clock,
            self.map,
            self.cfg,
        )
    }
}

impl SemelClient {
    /// Starts a [`SemelClientBuilder`] from the mandatory identity
    /// parameters; every knob is defaulted and individually overridable.
    pub fn builder(
        handle: &SimHandle,
        node: NodeId,
        id: ClientId,
        map: Rc<RefCell<ShardMap>>,
    ) -> SemelClientBuilder {
        SemelClientBuilder {
            handle: handle.clone(),
            node,
            id,
            map,
            clock: ClockSpec::perfect(),
            cfg: ClientConfig::default(),
        }
    }

    fn build_inner(
        handle: &SimHandle,
        node: NodeId,
        id: ClientId,
        clock: ClockSpec,
        map: Rc<RefCell<ShardMap>>,
        cfg: ClientConfig,
    ) -> SemelClient {
        let clock_seed = handle.rand_u64();
        let policy = Rc::new(RetryPolicy::observed(
            cfg.retry.clone(),
            StdRng::seed_from_u64(handle.rand_u64()),
            &cfg.obs,
            id.0 as u64,
        ));
        let client = SemelClient {
            handle: handle.clone(),
            id,
            clock: Rc::new(SyncedClock::from_spec(&clock, clock_seed)),
            map,
            rpc: RpcClient::new(handle, node, CLIENT_RPC_PORT),
            cfg: Rc::new(cfg),
            policy,
            last_acked: Rc::new(Cell::new(Timestamp::ZERO)),
        };
        client
            .clock
            .attach_tracer(&client.cfg.obs.tracer, id.0 as u64);
        client.spawn_watermark_task(node);
        client
    }

    fn spawn_watermark_task(&self, node: NodeId) {
        let me = self.clone();
        self.handle.spawn_on(node, async move {
            loop {
                me.handle.sleep(me.cfg.watermark_interval).await;
                me.broadcast_watermark();
            }
        });
    }

    /// Sends the current watermark report to every replica of every shard.
    /// Normally driven by the background task; exposed for tests.
    pub fn broadcast_watermark(&self) {
        let ts = self.last_acked.get();
        let map = self.map.borrow();
        for (_, group) in map.iter() {
            for addr in group.all() {
                self.rpc.cast(
                    addr,
                    SemelRequest::Watermark {
                        client: self.id,
                        ts,
                    },
                );
            }
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Reads the client's (skewed, monotonic) clock: `t_current`.
    pub fn now(&self) -> Timestamp {
        self.clock.now(self.handle.now())
    }

    /// The client's clock (for instrumentation).
    pub fn clock(&self) -> &SyncedClock {
        &self.clock
    }

    /// Timestamp of the client's last acknowledged operation (what the
    /// watermark broadcast reports).
    pub fn last_acked(&self) -> Timestamp {
        self.last_acked.get()
    }

    fn record_ack(&self, ts: Timestamp) {
        if ts > self.last_acked.get() {
            self.last_acked.set(ts);
        }
    }

    /// The client's retry policy (budget / breaker instrumentation).
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn sim_ns(&self) -> u64 {
        self.handle.now().as_nanos()
    }

    /// Breaker check for `shard`: when the circuit is open, burn a retry
    /// token waiting out the cooldown instead of touching the network.
    /// Returns `false` when the caller must give up ([`SemelError::Overloaded`]).
    async fn wait_for_breaker(&self, shard: ShardId) -> bool {
        loop {
            if self.policy.shard_allows(shard.0 as u64, self.sim_ns()) {
                return true;
            }
            let cooldown = self.policy.config().breaker_cooldown;
            match self.policy.try_retry(self.sim_ns(), Some(cooldown)) {
                Some(delay) => self.handle.sleep(delay).await,
                None => return false,
            }
        }
    }

    /// Creates a new version of `key` stamped with the client's current
    /// time; retries with a *fresh* timestamp if a concurrent writer with a
    /// later stamp wins the race (§3.3's "lagging clock" retry).
    ///
    /// # Errors
    ///
    /// [`SemelError::Rejected`] after exhausting retries, or transport /
    /// capacity errors.
    pub async fn put(&self, key: Key, value: Value) -> Result<Version, SemelError> {
        let mut last_rejection = None;
        for _ in 0..=self.cfg.put_retries {
            let version = Version::new(self.now(), self.id);
            match self
                .put_versioned(key.clone(), value.clone(), version)
                .await
            {
                Ok(()) => return Ok(version),
                Err(SemelError::Rejected(v)) => last_rejection = Some(v),
                Err(e) => return Err(e),
            }
        }
        // `0..=put_retries` runs at least once, so a rejection was recorded;
        // fall back to the attempted version rather than panicking on a
        // protocol path.
        let v = last_rejection.unwrap_or_else(|| Version::new(self.now(), self.id));
        Err(SemelError::Rejected(v))
    }

    /// Writes with an explicit version stamp, retransmitting on timeouts
    /// (idempotent thanks to at-most-once version checks).
    ///
    /// # Errors
    ///
    /// [`SemelError::Rejected`] if a newer version exists, plus transport /
    /// capacity errors.
    pub async fn put_versioned(
        &self,
        key: Key,
        value: Value,
        version: Version,
    ) -> Result<(), SemelError> {
        self.policy.on_attempt();
        // Retransmission on timeout is idempotent (the server deduplicates
        // by version); every retry is paid for from the retry budget. The
        // route is re-resolved each attempt so a rebalance cutover (the
        // server answers `Moved`) lands on the new owner after the shared
        // map flips.
        loop {
            let (shard, primary) = {
                let map = self.map.borrow();
                let shard = map.shard_for(&key);
                (shard, map.group(shard).primary)
            };
            if !self.wait_for_breaker(shard).await {
                return Err(SemelError::Overloaded);
            }
            let req = SemelRequest::Put {
                key: key.clone(),
                value: value.clone(),
                version,
            };
            match self
                .rpc
                .call::<SemelRequest, SemelResponse>(primary, req, self.cfg.rpc_timeout)
                .await
            {
                Ok(SemelResponse::PutOk) => {
                    self.policy.record_ok(shard.0 as u64);
                    self.record_ack(version.ts);
                    return Ok(());
                }
                Ok(SemelResponse::Rejected(v)) => {
                    self.policy.record_ok(shard.0 as u64);
                    return Err(SemelError::Rejected(v));
                }
                Ok(SemelResponse::NoMajority) => return Err(SemelError::NoMajority),
                Ok(SemelResponse::Capacity) => return Err(SemelError::Capacity),
                Ok(SemelResponse::Shed(shed)) => {
                    self.policy.record_shed(shard.0 as u64, self.sim_ns());
                    match self.policy.try_retry(self.sim_ns(), shed.retry_after()) {
                        Some(delay) => self.handle.sleep(delay).await,
                        None => return Err(SemelError::Overloaded),
                    }
                }
                Ok(SemelResponse::Moved { .. }) => {
                    // The key cut over to another shard; re-route from the
                    // (shared, already flipped) map on the next attempt.
                    match self.policy.try_retry(self.sim_ns(), None) {
                        Some(delay) => self.handle.sleep(delay).await,
                        None => return Err(SemelError::Timeout),
                    }
                }
                Ok(_) => return Err(SemelError::Timeout),
                Err(RpcError::Timeout) => match self.policy.try_retry(self.sim_ns(), None) {
                    Some(delay) => self.handle.sleep(delay).await,
                    None => return Err(SemelError::Timeout),
                },
                Err(RpcError::Closed) => return Err(SemelError::Timeout),
            }
        }
    }

    /// Reads the youngest version visible at the client's current time.
    ///
    /// # Errors
    ///
    /// [`SemelError::NotFound`] and transport errors.
    pub async fn get(&self, key: Key) -> Result<VersionedValue, SemelError> {
        let at = self.now();
        self.get_at(key, at).await
    }

    /// Snapshot read at an explicit timestamp (used by MILANA transactions
    /// and read-only analytics).
    ///
    /// # Errors
    ///
    /// [`SemelError::NotFound`], [`SemelError::SnapshotUnavailable`] on
    /// single-version backends, and transport errors.
    pub async fn get_at(&self, key: Key, at: Timestamp) -> Result<VersionedValue, SemelError> {
        self.policy.on_attempt();
        loop {
            let (shard, primary) = {
                let map = self.map.borrow();
                let shard = map.shard_for(&key);
                (shard, map.group(shard).primary)
            };
            if !self.wait_for_breaker(shard).await {
                return Err(SemelError::Overloaded);
            }
            match self
                .rpc
                .call::<SemelRequest, SemelResponse>(
                    primary,
                    SemelRequest::Get {
                        key: key.clone(),
                        at,
                    },
                    self.cfg.rpc_timeout,
                )
                .await
            {
                Ok(SemelResponse::Value { version, value, .. }) => {
                    self.policy.record_ok(shard.0 as u64);
                    self.record_ack(at);
                    return Ok(VersionedValue { version, value });
                }
                Ok(SemelResponse::NotFound) => {
                    self.policy.record_ok(shard.0 as u64);
                    return Err(SemelError::NotFound);
                }
                Ok(SemelResponse::SnapshotUnavailable(v)) => {
                    self.policy.record_ok(shard.0 as u64);
                    return Err(SemelError::SnapshotUnavailable(v));
                }
                Ok(SemelResponse::Shed(shed)) => {
                    self.policy.record_shed(shard.0 as u64, self.sim_ns());
                    match self.policy.try_retry(self.sim_ns(), shed.retry_after()) {
                        Some(delay) => self.handle.sleep(delay).await,
                        None => return Err(SemelError::Overloaded),
                    }
                }
                Ok(SemelResponse::Moved { .. }) => {
                    // Rebalance cutover: re-route from the shared map.
                    match self.policy.try_retry(self.sim_ns(), None) {
                        Some(delay) => self.handle.sleep(delay).await,
                        None => return Err(SemelError::Timeout),
                    }
                }
                Ok(_) => return Err(SemelError::Timeout),
                Err(RpcError::Timeout) => match self.policy.try_retry(self.sim_ns(), None) {
                    Some(delay) => self.handle.sleep(delay).await,
                    None => return Err(SemelError::Timeout),
                },
                Err(RpcError::Closed) => return Err(SemelError::Timeout),
            }
        }
    }

    /// Deletes all versions of `key`.
    ///
    /// # Errors
    ///
    /// Transport and replication errors.
    pub async fn delete(&self, key: Key) -> Result<(), SemelError> {
        let primary = {
            let map = self.map.borrow();
            map.group(map.shard_for(&key)).primary
        };
        match self
            .rpc
            .call::<SemelRequest, SemelResponse>(
                primary,
                SemelRequest::Delete { key },
                self.cfg.rpc_timeout,
            )
            .await
        {
            Ok(SemelResponse::Deleted) => Ok(()),
            Ok(SemelResponse::NoMajority) => Err(SemelError::NoMajority),
            Ok(SemelResponse::Shed(_)) => Err(SemelError::Overloaded),
            _ => Err(SemelError::Timeout),
        }
    }
}
