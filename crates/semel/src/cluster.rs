//! A one-call harness that boots a SEMEL cluster inside a simulation:
//! sharded, replicated storage servers plus clients with skewed clocks.
//! Used by tests, examples, and the experiment reproductions.

use std::cell::RefCell;
use std::rc::Rc;

use flashsim::{value, Backend, BackendKind, Key, NandConfig};
use simkit::net::{Addr, NodeId};
use simkit::SimHandle;
use timesync::{ClientId, ClockSpec, Timestamp, Version};

use crate::client::{ClientConfig, SemelClient};
use crate::server::{ServerConfig, ShardServer};
use crate::shard::{ReplicaGroup, ShardId, ShardMap};

/// Cluster shape and substrate parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data shards.
    pub shards: u32,
    /// Replicas per shard (1 primary + 2f backups); must be odd.
    pub replicas: u32,
    /// Number of clients (application servers).
    pub clients: u32,
    /// Storage backend per replica.
    pub backend: BackendKind,
    /// Device geometry for flash backends.
    pub nand: NandConfig,
    /// Clock profile for client clocks (discipline plus fault model).
    pub clock: ClockSpec,
    /// Keys preloaded before the run (ids `0..preload_keys`).
    pub preload_keys: u64,
    /// Value size for preloaded keys (and a sensible default for writes).
    pub value_size: usize,
    /// Client library tuning.
    pub client_cfg: ClientConfig,
    /// Network latency model installed at build time.
    pub net: simkit::net::LatencyConfig,
    /// Replication ordering discipline (ablation knob).
    pub replication: crate::server::ReplicationMode,
    /// Per-server admission control (overload protection).
    pub admission: loadkit::AdmissionConfig,
    /// Group-commit replication knobs applied to every primary (see
    /// [`crate::server::ServerConfig::batch`]).
    pub batch: batchkit::BatchConfig,
    /// Observability bundle shared by every server in the cluster.
    pub obs: obskit::Obs,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 2,
            backend: BackendKind::Mftl,
            nand: NandConfig::default(),
            clock: ClockSpec::ptp_software(),
            preload_keys: 0,
            value_size: 472,
            client_cfg: ClientConfig::default(),
            net: simkit::net::LatencyConfig::default(),
            replication: crate::server::ReplicationMode::default(),
            admission: loadkit::AdmissionConfig::default(),
            batch: batchkit::BatchConfig::default(),
            obs: obskit::Obs::new(),
        }
    }
}

/// A running SEMEL cluster.
#[derive(Debug)]
pub struct SemelCluster {
    /// The shard map shared by all clients.
    pub map: Rc<RefCell<ShardMap>>,
    /// One client handle per configured client.
    pub clients: Vec<SemelClient>,
    /// All shard servers (for backend inspection / fault injection), indexed
    /// `[shard][replica]`, replica 0 = primary.
    pub servers: Vec<Vec<ShardServer>>,
    /// The configuration the cluster was built with.
    pub config: ClusterConfig,
}

/// Service port for shard servers (one shard per node in this harness).
pub const SERVER_PORT: u16 = 0;

/// Node id of shard `s`, replica `r`.
pub fn server_node(cfg: &ClusterConfig, s: u32, r: u32) -> NodeId {
    NodeId(s * cfg.replicas + r)
}

/// Node id of client `i`.
pub fn client_node(i: u32) -> NodeId {
    NodeId(10_000 + i)
}

impl SemelCluster {
    /// Boots servers and clients and preloads data. Zero virtual time
    /// elapses; the cluster is ready for traffic immediately.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is even (no majority) or zero.
    pub fn build(handle: &SimHandle, config: ClusterConfig) -> SemelCluster {
        assert!(
            config.replicas % 2 == 1 && config.replicas >= 1,
            "replicas must be odd (2f+1)"
        );
        handle.set_latency(config.net.clone());
        let client_ids: Vec<ClientId> = (0..config.clients).map(ClientId).collect();
        let groups: Vec<ReplicaGroup> = (0..config.shards)
            .map(|s| ReplicaGroup {
                primary: Addr::new(server_node(&config, s, 0), SERVER_PORT),
                backups: (1..config.replicas)
                    .map(|r| Addr::new(server_node(&config, s, r), SERVER_PORT))
                    .collect(),
            })
            .collect();
        let map = Rc::new(RefCell::new(ShardMap::new(groups.clone())));

        let mut servers = Vec::new();
        for (s, group) in groups.iter().enumerate() {
            let mut replicas = Vec::new();
            for (r, &addr) in group.all().iter().enumerate() {
                let backend = Backend::new(config.backend, handle, config.nand.clone());
                backend.attach_tracer(&config.obs.tracer, addr.node.0 as u64);
                let server = ShardServer::spawn(
                    handle,
                    backend,
                    ServerConfig {
                        shard: ShardId(s as u32),
                        addr,
                        backups: if r == 0 {
                            group.backups.clone()
                        } else {
                            Vec::new()
                        },
                        is_primary: r == 0,
                        // Shorter than the client's RPC budget so a primary
                        // can still report NoMajority before the client
                        // gives up on it.
                        repl_timeout: config.client_cfg.rpc_timeout / 2,
                        clients: client_ids.clone(),
                        replication: config.replication,
                        history_window: None,
                        admission: config.admission.clone(),
                        batch: config.batch,
                        obs: config.obs.clone(),
                        map: Some(map.clone()),
                    },
                );
                replicas.push(server);
            }
            servers.push(replicas);
        }

        // Preload: identical data on every replica of the owning shard.
        if config.preload_keys > 0 {
            let v0 = Version::new(Timestamp(1), ClientId(u32::MAX));
            let payload = value(vec![0u8; config.value_size]);
            let m = map.borrow();
            for i in 0..config.preload_keys {
                let key = Key::from(i);
                let shard = m.shard_for(&key);
                for replica in &servers[shard.0 as usize] {
                    replica
                        .backend()
                        .bulk_load(key.clone(), payload.clone(), v0);
                }
            }
            for shard in &servers {
                for replica in shard {
                    replica.backend().finish_load();
                }
            }
        }

        let clients = (0..config.clients)
            .map(|i| {
                let mut client_cfg = config.client_cfg.clone();
                client_cfg.obs = config.obs.clone();
                SemelClient::builder(handle, client_node(i), ClientId(i), map.clone())
                    .clock(config.clock.clone())
                    .config(client_cfg)
                    .build()
            })
            .collect();

        SemelCluster {
            map,
            clients,
            servers,
            config,
        }
    }

    /// The primary server of `shard`.
    pub fn primary(&self, shard: ShardId) -> &ShardServer {
        &self.servers[shard.0 as usize][0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::SemelError;
    use simkit::Sim;
    use std::time::Duration;

    fn small_nand() -> NandConfig {
        NandConfig {
            blocks: 64,
            pages_per_block: 8,
            ..NandConfig::default()
        }
    }

    fn cluster_cfg() -> ClusterConfig {
        ClusterConfig {
            shards: 2,
            replicas: 3,
            clients: 2,
            nand: small_nand(),
            preload_keys: 100,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn end_to_end_put_get() {
        let mut sim = Sim::new(11);
        let h = sim.handle();
        let cluster = SemelCluster::build(&h, cluster_cfg());
        sim.block_on(async move {
            let c = &cluster.clients[0];
            let k = Key::from(5u64);
            let ver = c.put(k.clone(), value(&b"hello"[..])).await.unwrap();
            let got = c.get(k).await.unwrap();
            assert_eq!(got.version, ver);
            assert_eq!(&got.value[..], b"hello");
        });
    }

    #[test]
    fn preloaded_keys_visible_to_all_clients() {
        let mut sim = Sim::new(12);
        let h = sim.handle();
        let cluster = SemelCluster::build(&h, cluster_cfg());
        sim.block_on(async move {
            for c in &cluster.clients {
                let got = c.get(Key::from(42u64)).await.unwrap();
                assert_eq!(got.value.len(), 472);
            }
        });
    }

    #[test]
    fn writes_replicate_to_backups() {
        let mut sim = Sim::new(13);
        let h = sim.handle();
        let hh = h.clone();
        let cluster = SemelCluster::build(&h, cluster_cfg());
        sim.block_on(async move {
            let c = &cluster.clients[0];
            let k = Key::from(7u64);
            let ver = c.put(k.clone(), value(&b"replicated"[..])).await.unwrap();
            // Give the backups a moment to apply (ack needs only f of 2f).
            hh.sleep(Duration::from_millis(5)).await;
            let shard = cluster.map.borrow().shard_for(&k);
            let mut holders = 0;
            for replica in &cluster.servers[shard.0 as usize] {
                if replica.backend().versions(&k).contains(&ver) {
                    holders += 1;
                }
            }
            assert!(holders >= 2, "write on {holders} replicas");
        });
    }

    #[test]
    fn survives_one_backup_failure() {
        let mut sim = Sim::new(14);
        let h = sim.handle();
        let hh = h.clone();
        let cluster = SemelCluster::build(&h, cluster_cfg());
        sim.block_on(async move {
            let k = Key::from(3u64);
            let shard = cluster.map.borrow().shard_for(&k);
            let backup_addr = cluster.map.borrow().group(shard).backups[0];
            hh.kill_node(backup_addr.node);
            let c = &cluster.clients[0];
            c.put(k.clone(), value(&b"still works"[..])).await.unwrap();
            let got = c.get(k).await.unwrap();
            assert_eq!(&got.value[..], b"still works");
        });
    }

    #[test]
    fn put_fails_without_backup_majority() {
        let mut sim = Sim::new(15);
        let h = sim.handle();
        let hh = h.clone();
        let mut cfg = cluster_cfg();
        cfg.client_cfg.rpc_timeout = Duration::from_millis(5);
        let cluster = SemelCluster::build(&h, cfg);
        sim.block_on(async move {
            let k = Key::from(3u64);
            let shard = cluster.map.borrow().shard_for(&k);
            for &b in &cluster.map.borrow().group(shard).backups {
                hh.kill_node(b.node);
            }
            let c = &cluster.clients[0];
            let err = c.put(k, value(&b"x"[..])).await.unwrap_err();
            assert_eq!(err, SemelError::NoMajority);
        });
    }

    #[test]
    fn concurrent_writers_agree_on_winner() {
        let mut sim = Sim::new(16);
        let h = sim.handle();
        let hh = h.clone();
        let cluster = SemelCluster::build(&h, cluster_cfg());
        sim.block_on(async move {
            let k = Key::from(9u64);
            let c0 = cluster.clients[0].clone();
            let c1 = cluster.clients[1].clone();
            let k0 = k.clone();
            let k1 = k.clone();
            let j0 = hh.spawn(async move { c0.put(k0, value(&b"from-0"[..])).await });
            let j1 = hh.spawn(async move { c1.put(k1, value(&b"from-1"[..])).await });
            let v0 = j0.await.unwrap();
            let v1 = j1.await.unwrap();
            assert_ne!(v0, v1);
            // The winner is whoever holds the larger version stamp.
            let got = cluster.clients[0].get(k).await.unwrap();
            assert_eq!(got.version, v0.max(v1));
        });
    }

    #[test]
    fn watermark_flows_to_servers_and_prunes() {
        let mut sim = Sim::new(17);
        let h = sim.handle();
        let hh = h.clone();
        let mut cfg = cluster_cfg();
        cfg.clients = 1;
        cfg.shards = 1;
        let cluster = SemelCluster::build(&h, cfg);
        sim.block_on(async move {
            let c = &cluster.clients[0];
            let k = Key::from(1u64);
            for i in 0..5 {
                c.put(k.clone(), value(vec![i as u8; 16])).await.unwrap();
            }
            // Let several watermark broadcast rounds land.
            hh.sleep(Duration::from_millis(350)).await;
            // One more put triggers chain pruning on the primary.
            c.put(k.clone(), value(&b"last"[..])).await.unwrap();
            let shard = cluster.map.borrow().shard_for(&k);
            let versions = cluster.primary(shard).backend().versions(&k);
            assert!(versions.len() <= 3, "old versions not pruned: {versions:?}");
        });
    }
}

#[cfg(test)]
mod ordered_mode_tests {
    use super::*;
    use crate::server::ReplicationMode;
    use flashsim::value;
    use simkit::Sim;
    use std::time::Duration;

    /// Ordered replication is the slow path, but it must still be correct:
    /// all data converges on all replicas despite jittery delivery.
    #[test]
    fn ordered_replication_converges() {
        let mut sim = Sim::new(91);
        let h = sim.handle();
        let hh = h.clone();
        let cluster = SemelCluster::build(
            &h,
            ClusterConfig {
                shards: 1,
                replicas: 3,
                clients: 2,
                preload_keys: 0,
                replication: ReplicationMode::Ordered,
                nand: NandConfig {
                    blocks: 64,
                    pages_per_block: 8,
                    ..NandConfig::default()
                },
                net: simkit::net::LatencyConfig {
                    one_way: Duration::from_micros(50),
                    jitter_std: Duration::from_micros(40), // heavy reordering
                    ..simkit::net::LatencyConfig::default()
                },
                ..ClusterConfig::default()
            },
        );
        sim.block_on(async move {
            // Two clients interleave writes over a small key set.
            let mut joins = Vec::new();
            for (ci, c) in cluster.clients.iter().enumerate() {
                let c = c.clone();
                joins.push(hh.spawn(async move {
                    for i in 0..30u64 {
                        let key = Key::from(i % 6);
                        let payload = value(vec![(ci as u8) * 100 + i as u8; 16]);
                        let _ = c.put(key, payload).await;
                    }
                }));
            }
            for j in joins {
                j.await;
            }
            hh.sleep(Duration::from_millis(20)).await;
            // Every backup holds the same latest version as the primary.
            for key_id in 0..6u64 {
                let key = Key::from(key_id);
                let primary_latest = cluster.servers[0][0].backend().versions(&key);
                let Some(&latest) = primary_latest.first() else {
                    continue;
                };
                for (r, replica) in cluster.servers[0].iter().enumerate().skip(1) {
                    assert!(
                        replica.backend().versions(&key).contains(&latest),
                        "replica {r} missing latest version of {key}"
                    );
                }
            }
        });
    }
}
