//! The global master (§3): the authoritative shard map, primary liveness
//! tracking, and automatic failover.
//!
//! The paper delegates this role to "a global master ... implemented using
//! standard techniques (e.g., Apache Zookeeper)". This module provides that
//! component for the simulated cluster:
//!
//! - serves the current [`ShardMap`] (with an epoch) to anyone who asks;
//! - tracks primary heartbeats; a primary that misses its deadline is
//!   declared dead;
//! - on failure, picks the shard's first *responsive* backup, updates the
//!   map, and drives the promotion through a pluggable [`Promoter`] (the
//!   transaction layer supplies the actual recovery RPC).
//!
//! The master is deliberately simple (a single process, as a ZooKeeper
//! ensemble would appear to its users) and is not itself replicated.

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use simkit::net::Addr;
use simkit::rpc::{recv_request, Responder};
use simkit::time::SimTime;
use simkit::SimHandle;
use timesync::ClientId;

use crate::shard::{ShardId, ShardMap};

/// Requests understood by the master.
#[derive(Debug, Clone)]
pub enum MasterRequest {
    /// Fetch the current shard map (clients call this at startup and after
    /// repeated failures against a primary).
    FetchMap,
    /// A primary's periodic liveness report.
    Heartbeat {
        /// The shard it leads.
        shard: ShardId,
        /// Its service address.
        addr: Addr,
    },
}

/// Replies from the master.
#[derive(Debug, Clone)]
pub enum MasterResponse {
    /// The current map (the epoch inside it orders configurations).
    MapIs(ShardMap),
    /// Heartbeat acknowledged; carries the current epoch so a deposed
    /// primary notices immediately.
    Ack {
        /// Current configuration epoch.
        epoch: u64,
    },
}

/// Drives the system-specific part of a failover: tell `new_primary` to take
/// over `shard`, replicating to `peers`. Returns true when recovery
/// completed. Supplied by the transaction layer (MILANA sends its `Promote`
/// RPC and waits for `PromoteOk`).
pub type Promoter = Rc<dyn Fn(ShardId, Addr, Vec<Addr>) -> Pin<Box<dyn Future<Output = bool>>>>;

/// Master tuning.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// The master's service address.
    pub addr: Addr,
    /// A primary missing heartbeats for this long is declared dead.
    pub heartbeat_timeout: Duration,
    /// Liveness scan period.
    pub check_every: Duration,
    /// Observability sinks: `map_fetches` / `master_failovers` /
    /// `map_installs` counters and failover/install trace events.
    pub obs: obskit::Obs,
}

impl Default for MasterConfig {
    fn default() -> MasterConfig {
        MasterConfig {
            addr: Addr::new(simkit::net::NodeId(20_000), 0),
            heartbeat_timeout: Duration::from_millis(150),
            check_every: Duration::from_millis(50),
            obs: obskit::Obs::new(),
        }
    }
}

/// Master counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Map fetches served.
    pub fetches: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Failovers executed.
    pub failovers: u64,
}

struct MasterState {
    map: ShardMap,
    last_beat: HashMap<ShardId, SimTime>,
    /// Shards currently mid-failover (suppresses double triggers).
    failing_over: HashMap<ShardId, bool>,
    stats: MasterStats,
}

/// A running master. Cloning shares it.
#[derive(Clone)]
pub struct Master {
    handle: SimHandle,
    cfg: Rc<MasterConfig>,
    state: Rc<RefCell<MasterState>>,
    promoter: Promoter,
}

impl std::fmt::Debug for Master {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Master")
            .field("addr", &self.cfg.addr)
            .field("stats", &self.state.borrow().stats)
            .finish()
    }
}

impl Master {
    /// Spawns the master service and its liveness scanner.
    pub fn spawn(
        handle: &SimHandle,
        cfg: MasterConfig,
        initial_map: ShardMap,
        promoter: Promoter,
    ) -> Master {
        let now = handle.now();
        let last_beat = initial_map
            .iter()
            .map(|(s, _)| (s, now))
            .collect::<HashMap<_, _>>();
        let master = Master {
            handle: handle.clone(),
            cfg: Rc::new(cfg),
            state: Rc::new(RefCell::new(MasterState {
                map: initial_map,
                last_beat,
                failing_over: HashMap::new(),
                stats: MasterStats::default(),
            })),
            promoter,
        };
        master.spawn_service();
        master.spawn_scanner();
        master
    }

    /// The current shard map (by value; the master's copy is authoritative).
    pub fn map(&self) -> ShardMap {
        self.state.borrow().map.clone()
    }

    /// Counters so far.
    pub fn stats(&self) -> MasterStats {
        self.state.borrow().stats
    }

    /// The master's service address.
    pub fn addr(&self) -> Addr {
        self.cfg.addr
    }

    /// Atomically edits the authoritative map through `f` (the rebalance
    /// engine's prepare/cutover epoch bumps flow through here) and returns
    /// `f`'s result plus the new epoch. Heartbeat leases are armed for any
    /// shard the edit introduced, and a [`obskit::TraceEvent::MapInstall`]
    /// event plus the `map_installs` counter record the change — keeping
    /// rebalance distinguishable from failover in artifacts.
    pub fn install_map<R>(&self, f: impl FnOnce(&mut ShardMap) -> R) -> (R, u64) {
        let mut st = self.state.borrow_mut();
        let out = f(&mut st.map);
        let now = self.handle.now();
        let shards: Vec<ShardId> = st.map.iter().map(|(s, _)| s).collect();
        for s in shards {
            st.last_beat.entry(s).or_insert(now);
        }
        let epoch = st.map.epoch();
        let shards = st.map.len() as u64;
        self.cfg.obs.registry.counter("map_installs").inc();
        self.cfg.obs.tracer.record(
            now.as_nanos(),
            obskit::TraceEvent::MapInstall { epoch, shards },
        );
        (out, epoch)
    }

    fn spawn_service(&self) {
        let mailbox = self.handle.bind(self.cfg.addr);
        let me = self.clone();
        let h = self.handle.clone();
        let node = self.cfg.addr.node;
        self.handle.spawn_on(node, async move {
            while let Some((req, _from, resp)) = recv_request::<MasterRequest>(&h, &mailbox).await {
                me.handle_request(req, resp);
            }
        });
    }

    fn handle_request(&self, req: MasterRequest, resp: Responder) {
        let mut st = self.state.borrow_mut();
        match req {
            MasterRequest::FetchMap => {
                st.stats.fetches += 1;
                self.cfg.obs.registry.counter("map_fetches").inc();
                resp.reply(MasterResponse::MapIs(st.map.clone()));
            }
            MasterRequest::Heartbeat { shard, addr } => {
                st.stats.heartbeats += 1;
                // Only the primary of record refreshes the lease; a deposed
                // primary learns the new epoch from the ack. A heartbeat
                // for a shard the map does not know yet (migration
                // destination before cutover) is acknowledged but not
                // leased.
                if st.map.group_opt(shard).map(|g| g.primary) == Some(addr) {
                    let now = self.handle.now();
                    st.last_beat.insert(shard, now);
                }
                resp.reply(MasterResponse::Ack {
                    epoch: st.map.epoch(),
                });
            }
        }
    }

    fn spawn_scanner(&self) {
        let me = self.clone();
        self.handle.spawn_on(self.cfg.addr.node, async move {
            loop {
                me.handle.sleep(me.cfg.check_every).await;
                me.scan().await;
            }
        });
    }

    async fn scan(&self) {
        let now = self.handle.now();
        let suspects: Vec<ShardId> = {
            let st = self.state.borrow();
            st.map
                .iter()
                .map(|(s, _)| s)
                .filter(|s| {
                    !st.failing_over.get(s).copied().unwrap_or(false)
                        && st
                            .last_beat
                            .get(s)
                            .is_none_or(|&t| now.saturating_since(t) > self.cfg.heartbeat_timeout)
                })
                .collect()
        };
        for shard in suspects {
            self.failover(shard).await;
        }
    }

    /// Promotes the first backup of `shard` (in group order), retrying down
    /// the list if a candidate does not complete recovery.
    async fn failover(&self, shard: ShardId) {
        {
            let mut st = self.state.borrow_mut();
            st.failing_over.insert(shard, true);
        }
        let candidates: Vec<Addr> = self.state.borrow().map.group(shard).backups.clone();
        for candidate in candidates {
            let peers: Vec<Addr> = {
                let st = self.state.borrow();
                st.map
                    .group(shard)
                    .all()
                    .into_iter()
                    .filter(|&a| a != candidate)
                    .collect()
            };
            // Publish the new configuration first: clients immediately
            // retarget and retry against the recovering primary.
            if !self.state.borrow_mut().map.promote(shard, candidate) {
                continue; // candidate raced out of the group; try the next
            }
            if (self.promoter)(shard, candidate, peers).await {
                let mut st = self.state.borrow_mut();
                let now = self.handle.now();
                st.last_beat.insert(shard, now);
                st.failing_over.insert(shard, false);
                st.stats.failovers += 1;
                self.cfg.obs.registry.counter("master_failovers").inc();
                self.cfg.obs.tracer.record(
                    now.as_nanos(),
                    obskit::TraceEvent::MasterFailover {
                        shard: shard.0 as u64,
                        new_primary: candidate.node.0 as u64,
                        epoch: st.map.epoch(),
                    },
                );
                return;
            }
            // Candidate failed to recover; the loop promotes the next one
            // (the failed candidate was demoted to the back of the list).
        }
        // Nobody could take over; clear the flag so a later scan retries.
        self.state.borrow_mut().failing_over.insert(shard, false);
    }
}

/// Convenience: clients poll the master for a fresh map.
///
/// # Errors
///
/// Propagates the RPC timeout if the master is unreachable.
pub async fn fetch_map(
    rpc: &simkit::rpc::RpcClient,
    master: Addr,
    timeout: Duration,
) -> Result<ShardMap, simkit::rpc::RpcError> {
    match rpc
        .call::<MasterRequest, MasterResponse>(master, MasterRequest::FetchMap, timeout)
        .await?
    {
        MasterResponse::MapIs(map) => Ok(map),
        MasterResponse::Ack { .. } => Err(simkit::rpc::RpcError::Timeout),
    }
}

/// Convenience: a primary's heartbeat loop body. Returns the epoch the
/// master reported, letting a deposed primary detect its demotion.
///
/// # Errors
///
/// Propagates the RPC timeout if the master is unreachable.
pub async fn send_heartbeat(
    rpc: &simkit::rpc::RpcClient,
    master: Addr,
    shard: ShardId,
    my_addr: Addr,
    timeout: Duration,
) -> Result<u64, simkit::rpc::RpcError> {
    match rpc
        .call::<MasterRequest, MasterResponse>(
            master,
            MasterRequest::Heartbeat {
                shard,
                addr: my_addr,
            },
            timeout,
        )
        .await?
    {
        MasterResponse::Ack { epoch } => Ok(epoch),
        MasterResponse::MapIs(map) => Ok(map.epoch()),
    }
}

/// Watermark reports also flow through client ids; re-exported here so the
/// master module is self-contained for doc examples.
pub type _ClientId = ClientId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ReplicaGroup;
    use simkit::net::NodeId;
    use simkit::rpc::RpcClient;
    use simkit::Sim;

    fn test_map() -> ShardMap {
        ShardMap::new(vec![ReplicaGroup {
            primary: Addr::new(NodeId(0), 0),
            backups: vec![Addr::new(NodeId(1), 0), Addr::new(NodeId(2), 0)],
        }])
    }

    fn noop_promoter(log: Rc<RefCell<Vec<(ShardId, Addr)>>>, ok: bool) -> Promoter {
        Rc::new(move |shard, addr, _peers| {
            log.borrow_mut().push((shard, addr));
            Box::pin(async move { ok })
        })
    }

    #[test]
    fn serves_the_map() {
        let mut sim = Sim::new(61);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let master = Master::spawn(
            &h,
            MasterConfig::default(),
            test_map(),
            noop_promoter(log, true),
        );
        let addr = master.cfg.addr;
        sim.block_on(async move {
            let rpc = RpcClient::new(&h, NodeId(100), 0);
            let map = fetch_map(&rpc, addr, Duration::from_millis(10))
                .await
                .unwrap();
            assert_eq!(map.epoch(), 0);
            assert_eq!(map.group(ShardId(0)).primary, Addr::new(NodeId(0), 0));
        });
        assert_eq!(master.stats().fetches, 1);
    }

    #[test]
    fn heartbeats_keep_the_primary_alive() {
        let mut sim = Sim::new(62);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let master = Master::spawn(
            &h,
            MasterConfig::default(),
            test_map(),
            noop_promoter(log.clone(), true),
        );
        let addr = master.cfg.addr;
        let hh = h.clone();
        h.spawn(async move {
            let rpc = RpcClient::new(&hh, NodeId(0), 7);
            loop {
                let _ = send_heartbeat(
                    &rpc,
                    addr,
                    ShardId(0),
                    Addr::new(NodeId(0), 0),
                    Duration::from_millis(10),
                )
                .await;
                hh.sleep(Duration::from_millis(40)).await;
            }
        });
        sim.run_until(simkit::SimTime::from_millis(600));
        assert!(log.borrow().is_empty(), "no failover while heartbeating");
        assert_eq!(master.stats().failovers, 0);
    }

    #[test]
    fn missed_heartbeats_trigger_failover_to_first_backup() {
        let mut sim = Sim::new(63);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let master = Master::spawn(
            &h,
            MasterConfig::default(),
            test_map(),
            noop_promoter(log.clone(), true),
        );
        // Nobody heartbeats: the scanner fails over once within one timeout
        // window. (With no real servers the new primary never heartbeats
        // either, so we only observe the first window.)
        sim.run_until(simkit::SimTime::from_millis(220));
        assert_eq!(log.borrow().len(), 1, "exactly one promotion");
        assert_eq!(log.borrow()[0], (ShardId(0), Addr::new(NodeId(1), 0)));
        let map = master.map();
        assert_eq!(map.group(ShardId(0)).primary, Addr::new(NodeId(1), 0));
        assert!(map.epoch() >= 1);
        assert_eq!(master.stats().failovers, 1);
    }

    #[test]
    fn failed_candidate_falls_through_to_the_next_backup() {
        let mut sim = Sim::new(64);
        let h = sim.handle();
        let log: Rc<RefCell<Vec<(ShardId, Addr)>>> = Rc::new(RefCell::new(Vec::new()));
        // Promoter that fails for node 1 and succeeds for node 2.
        let log2 = log.clone();
        let promoter: Promoter = Rc::new(move |shard, addr, _| {
            log2.borrow_mut().push((shard, addr));
            Box::pin(async move { addr.node != NodeId(1) })
        });
        let master = Master::spawn(&h, MasterConfig::default(), test_map(), promoter);
        sim.run_until(simkit::SimTime::from_millis(220));
        let attempts = log.borrow().clone();
        assert_eq!(attempts.len(), 2, "tried both candidates: {attempts:?}");
        assert_eq!(attempts[0].1.node, NodeId(1));
        assert_eq!(attempts[1].1.node, NodeId(2));
        assert_eq!(
            master.map().group(ShardId(0)).primary.node,
            NodeId(2),
            "map points at the candidate that completed recovery"
        );
    }

    #[test]
    fn deposed_primary_sees_a_newer_epoch_in_heartbeat_acks() {
        let mut sim = Sim::new(65);
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        let master = Master::spawn(
            &h,
            MasterConfig::default(),
            test_map(),
            noop_promoter(log, true),
        );
        let addr = master.cfg.addr;
        // Let a failover happen (no heartbeats), then the old primary
        // heartbeats again and must learn about the new epoch.
        sim.run_until(simkit::SimTime::from_millis(600));
        let hh = h.clone();
        let epoch = sim.block_on(async move {
            let rpc = RpcClient::new(&hh, NodeId(0), 7);
            send_heartbeat(
                &rpc,
                addr,
                ShardId(0),
                Addr::new(NodeId(0), 0),
                Duration::from_millis(10),
            )
            .await
            .unwrap()
        });
        assert!(epoch >= 1, "old primary observes the new configuration");
    }
}
