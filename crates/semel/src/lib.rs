//! # semel — a replicated multi-version key-value store on precision time
//!
//! SEMEL (§3 of *Enabling Lightweight Transactions with Precision Time*,
//! ASPLOS'17) is a sharded, replicated, durable key-value store whose entire
//! ordering story is **client-assigned precision timestamps**:
//!
//! - every write carries a version `V = (timestamp, client_id)`; versions
//!   totally order all writes to a key, and the store keeps a *chain* of
//!   versions per key (multi-version storage is nearly free on flash);
//! - reads are snapshot reads: "the youngest version with timestamp ≤ t";
//! - replication is **inconsistent** primary/backup (§3.2): the primary
//!   streams records to backups in any order and acks after `f` of `2f`
//!   backup acks — version stamps, not arrival order, reconstruct history;
//! - at-most-once RPC semantics fall out of timestamp comparison (§3.3):
//!   stale writes are rejected, duplicate writes re-acknowledged;
//! - a client **watermark** (minimum last-acknowledged timestamp) bounds
//!   how much history garbage collection must retain (§3.1).
//!
//! The crate provides the wire protocol ([`msg`]), consistent-hash sharding
//! ([`shard`]), quorum replication ([`replicate`]), the shard server
//! ([`server`]), the client library ([`client`]), the global master with
//! heartbeat failure detection and automatic failover ([`master`]), and a
//! cluster harness ([`cluster`]). The transactional layer MILANA builds on
//! these pieces in the `milana` crate.

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod master;
pub mod msg;
pub mod replicate;
pub mod server;
pub mod shard;
pub mod spec;

pub use client::{ClientConfig, SemelClient, SemelClientBuilder};
pub use cluster::{ClusterConfig, SemelCluster};
pub use msg::{SemelError, SemelRequest, SemelResponse};
pub use server::{ServerConfig, ShardServer};
pub use shard::{ReplicaGroup, ShardId, ShardMap};
pub use spec::{ClusterSpec, RebalanceSpec};
