//! Wire-level tests of SEMEL's §3.3 guarantees: at-most-once writes,
//! idempotent retransmissions, and global-clock ordering — driven through
//! raw RPCs so the exact server behavior is pinned down.

use std::time::Duration;

use flashsim::{value, Key, NandConfig};
use semel::cluster::{ClusterConfig, SemelCluster};
use semel::msg::{SemelRequest, SemelResponse};
use semel::shard::ShardId;
use simkit::net::NodeId;
use simkit::rpc::RpcClient;
use simkit::Sim;
use timesync::{ClientId, Timestamp, Version};

const T: Duration = Duration::from_millis(50);

fn boot(sim: &Sim) -> (SemelCluster, RpcClient) {
    let h = sim.handle();
    let cluster = SemelCluster::build(
        &h,
        ClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 1,
            nand: NandConfig {
                blocks: 64,
                pages_per_block: 8,
                ..NandConfig::default()
            },
            preload_keys: 10,
            ..ClusterConfig::default()
        },
    );
    let rpc = RpcClient::new(&h, NodeId(30_000), 0);
    (cluster, rpc)
}

fn v(ts: u64, c: u32) -> Version {
    Version::new(Timestamp(ts), ClientId(c))
}

#[test]
fn retransmitted_write_is_acknowledged_once_semantically() {
    let mut sim = Sim::new(71);
    let (cluster, rpc) = boot(&sim);
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    sim.block_on(async move {
        let put = SemelRequest::Put {
            key: Key::from(1u64),
            value: value(&b"once"[..]),
            version: v(1_000, 7),
        };
        // Original and a retransmission (client never saw the first ack).
        let r1 = rpc
            .call::<SemelRequest, SemelResponse>(primary, put.clone(), T)
            .await
            .unwrap();
        let r2 = rpc
            .call::<SemelRequest, SemelResponse>(primary, put, T)
            .await
            .unwrap();
        assert!(matches!(r1, SemelResponse::PutOk), "{r1:?}");
        assert!(
            matches!(r2, SemelResponse::PutOk),
            "duplicate must repeat the earlier response: {r2:?}"
        );
        // Exactly one version with that stamp exists.
        let versions = cluster
            .primary(ShardId(0))
            .backend()
            .versions(&Key::from(1u64));
        let count = versions.iter().filter(|&&x| x == v(1_000, 7)).count();
        assert_eq!(count, 1, "versions: {versions:?}");
    });
}

#[test]
fn older_timestamp_is_rejected_not_applied() {
    let mut sim = Sim::new(72);
    let (cluster, rpc) = boot(&sim);
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    sim.block_on(async move {
        let newer = SemelRequest::Put {
            key: Key::from(2u64),
            value: value(&b"new"[..]),
            version: v(2_000, 1),
        };
        let older = SemelRequest::Put {
            key: Key::from(2u64),
            value: value(&b"old"[..]),
            version: v(1_500, 1),
        };
        let r1 = rpc
            .call::<SemelRequest, SemelResponse>(primary, newer, T)
            .await
            .unwrap();
        assert!(matches!(r1, SemelResponse::PutOk));
        let r2 = rpc
            .call::<SemelRequest, SemelResponse>(primary, older, T)
            .await
            .unwrap();
        match r2 {
            SemelResponse::Rejected(current) => assert_eq!(current, v(2_000, 1)),
            other => panic!("late write must be rejected, got {other:?}"),
        }
        // The value visible at any time >= 2000 is the newer one.
        let r3 = rpc
            .call::<SemelRequest, SemelResponse>(
                primary,
                SemelRequest::Get {
                    key: Key::from(2u64),
                    at: Timestamp(5_000),
                },
                T,
            )
            .await
            .unwrap();
        match r3 {
            SemelResponse::Value { version, value, .. } => {
                assert_eq!(version, v(2_000, 1));
                assert_eq!(&value[..], b"new");
            }
            other => panic!("{other:?}"),
        }
    });
}

#[test]
fn client_id_totally_orders_simultaneous_writes() {
    let mut sim = Sim::new(73);
    let (cluster, rpc) = boot(&sim);
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    let _ = cluster;
    sim.block_on(async move {
        // Two writes with identical timestamps from different clients: the
        // higher client id wins the total order; the lower is "older".
        let a = SemelRequest::Put {
            key: Key::from(3u64),
            value: value(&b"low"[..]),
            version: v(1_000, 1),
        };
        let b = SemelRequest::Put {
            key: Key::from(3u64),
            value: value(&b"high"[..]),
            version: v(1_000, 2),
        };
        let ra = rpc
            .call::<SemelRequest, SemelResponse>(primary, a, T)
            .await
            .unwrap();
        let rb = rpc
            .call::<SemelRequest, SemelResponse>(primary, b, T)
            .await
            .unwrap();
        assert!(matches!(ra, SemelResponse::PutOk));
        assert!(matches!(rb, SemelResponse::PutOk), "{rb:?}");
        // Reversed arrival: the lower client id must now be rejected.
        let a_again = SemelRequest::Put {
            key: Key::from(3u64),
            value: value(&b"lower"[..]),
            version: v(1_000, 0),
        };
        let r = rpc
            .call::<SemelRequest, SemelResponse>(primary, a_again, T)
            .await
            .unwrap();
        assert!(matches!(r, SemelResponse::Rejected(_)), "{r:?}");
    });
}

#[test]
fn snapshot_reads_in_the_past_are_served() {
    let mut sim = Sim::new(74);
    let (cluster, rpc) = boot(&sim);
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    let _ = cluster;
    sim.block_on(async move {
        for (ts, val) in [(1_000u64, &b"v1"[..]), (2_000, b"v2"), (3_000, b"v3")] {
            let r = rpc
                .call::<SemelRequest, SemelResponse>(
                    primary,
                    SemelRequest::Put {
                        key: Key::from(4u64),
                        value: value(val),
                        version: v(ts, 1),
                    },
                    T,
                )
                .await
                .unwrap();
            assert!(matches!(r, SemelResponse::PutOk));
        }
        for (at, expect) in [(1_500u64, &b"v1"[..]), (2_000, b"v2"), (9_999, b"v3")] {
            let r = rpc
                .call::<SemelRequest, SemelResponse>(
                    primary,
                    SemelRequest::Get {
                        key: Key::from(4u64),
                        at: Timestamp(at),
                    },
                    T,
                )
                .await
                .unwrap();
            match r {
                SemelResponse::Value { value, .. } => assert_eq!(&value[..], expect, "at {at}"),
                other => panic!("at {at}: {other:?}"),
            }
        }
    });
}

#[test]
fn duplicate_retransmission_rereplicates_to_backups() {
    // §3.3 + our hardening: an acked duplicate re-replicates the record, so
    // a retransmission after a partial original still reaches a majority.
    let mut sim = Sim::new(75);
    let h = sim.handle();
    let (cluster, rpc) = boot(&sim);
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    let hh = h.clone();
    sim.block_on(async move {
        let put = SemelRequest::Put {
            key: Key::from(5u64),
            value: value(&b"dup"[..]),
            version: v(1_000, 9),
        };
        let r1 = rpc
            .call::<SemelRequest, SemelResponse>(primary, put.clone(), T)
            .await
            .unwrap();
        assert!(matches!(r1, SemelResponse::PutOk));
        hh.sleep(Duration::from_millis(5)).await;
        let r2 = rpc
            .call::<SemelRequest, SemelResponse>(primary, put, T)
            .await
            .unwrap();
        assert!(matches!(r2, SemelResponse::PutOk));
        hh.sleep(Duration::from_millis(5)).await;
        // Every replica holds exactly one copy of the version.
        for (i, replica) in cluster.servers[0].iter().enumerate() {
            let versions = replica.backend().versions(&Key::from(5u64));
            let count = versions.iter().filter(|&&x| x == v(1_000, 9)).count();
            assert!(count <= 1, "replica {i} duplicated the version");
        }
        let holders = cluster.servers[0]
            .iter()
            .filter(|r| {
                r.backend()
                    .versions(&Key::from(5u64))
                    .contains(&v(1_000, 9))
            })
            .count();
        assert!(holders >= 2, "write on {holders} replicas");
    });
}
