//! A deterministic FxHash-style hasher.
//!
//! The classic Firefox/rustc word-at-a-time hash: fold each word into the
//! state with a rotate, an xor, and a multiply by a fixed odd constant.
//! Not collision-resistant against adversarial keys — every key here is
//! simulator-internal (`Key` digests, `TxnId`s, node ids), so speed and
//! determinism win. Hand-written because the build environment is offline
//! (no `rustc-hash` crate); the algorithm is the well-known public one.

use std::hash::Hasher;

/// Fixed odd multiplier (high-entropy, from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The hasher state. Zero-initialized: same input → same hash, every
/// process, every run.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"milana"), hash_of(b"milana"));
        assert_ne!(hash_of(b"milana"), hash_of(b"semel"));
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
    }

    #[test]
    fn covers_every_tail_length() {
        // 0..=16 bytes exercises the 8/4/2/1 ladder; these distinct
        // non-zero inputs should hash distinctly (a smoke check, not a
        // guarantee — an all-zero word folded into zero state stays zero,
        // which is fine for a non-cryptographic hasher).
        let base: Vec<u8> = (1u8..18).collect();
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..=16 {
            assert!(seen.insert(hash_of(&base[..n])), "collision at len {n}");
        }
    }

    #[test]
    fn integer_writes_match_manual_folds() {
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u32(42);
        // u32 and u64 writes fold the same word, so they agree — fine for
        // a non-cryptographic hasher, but assert it so a refactor that
        // changes the folding is noticed.
        assert_eq!(c.finish(), a.finish());
    }
}
