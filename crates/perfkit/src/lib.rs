//! # perfkit — the performance layer of the reproduction
//!
//! Three independent pieces, all dependency-free:
//!
//! - [`FastMap`] / [`FastSet`]: `HashMap`/`HashSet` aliases over a
//!   deterministic FxHash-style hasher ([`fxhash::FxHasher`]) for the
//!   `Key`/`TxnId` hot paths. The default SipHash `RandomState` both
//!   burns cycles on a keyed cryptographic hash the simulator does not
//!   need and randomizes iteration order per process; the fixed-seed
//!   multiply-rotate hash is several times faster on short keys and
//!   makes map iteration order reproducible across runs (no code may
//!   *depend* on that order, but reproducibility turns any accidental
//!   dependence into a deterministic bug instead of a flaky one).
//! - [`pool`]: a worker-pool runner for embarrassingly parallel
//!   deterministic simulations (one sim per thread, ordered merge), with
//!   the `--threads`/`PERF_THREADS` knob shared by every `repro_*`
//!   binary. `--threads 1` reproduces the serial behavior exactly, and
//!   because each simulation is self-contained and seeded, the merged
//!   results — and therefore every `--json` artifact — are byte-identical
//!   at any thread count.
//! - [`alloc`] (feature `count-allocs`): a counting global allocator so
//!   perf baselines can record allocations-per-suite as a deterministic
//!   counter alongside wall-clock timings.

pub mod fxhash;
pub mod pool;

#[cfg(feature = "count-allocs")]
pub mod alloc;

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

pub use fxhash::FxHasher;

/// A `BuildHasher` producing [`FxHasher`]s; `Default`-constructible, so
/// `FastMap::default()` works everywhere `HashMap::new()` did.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the deterministic fast hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// A [`FastMap`] with space for `cap` entries.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// A [`FastSet`] with space for `cap` entries.
pub fn fast_set_with_capacity<T>(cap: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_map_behaves_like_hash_map() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert!(!m.contains_key(&2));
        let mut s: FastSet<u64> = fast_set_with_capacity(4);
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        // Two maps built the same way iterate the same way — the property
        // SipHash's per-process random seed deliberately breaks.
        let build = || {
            let mut m = fast_map_with_capacity::<u64, u64>(0);
            for i in 0..1000 {
                m.insert(i * 2654435761, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
