//! Worker-pool runner for parallel deterministic simulations.
//!
//! Every `repro_*` suite is a sweep of *independent* deterministic
//! simulations: each point constructs its own `Sim` from its own seed and
//! never shares state with its neighbors. That makes the sweep
//! embarrassingly parallel — as long as each simulation runs entirely on
//! one thread (sims are `!Send`) and results merge back in *item order*,
//! the merged output is bit-for-bit what the serial loop produced.
//!
//! [`run_ordered`] is that runner: a scoped pool of `n` std threads pulls
//! items off a shared cursor, runs the (Send) closure on each, and the
//! results land in the input order. `threads <= 1` short-circuits to a
//! plain serial `map`, reproducing today's behavior exactly.
//!
//! The thread count comes from [`threads()`]: `--threads N` (or
//! `--threads=N`) on the command line, else the `PERF_THREADS`
//! environment variable, else `1`. A `--trace` flag forces `1`: trace
//! rings are thread-local, so a trace capture must stay on the main
//! thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker stack size. Simulation futures nest deeply; the 8 MiB main
/// thread never notices, but the 2 MiB std default can.
const STACK_SIZE: usize = 16 * 1024 * 1024;

/// Resolves the configured worker count for this process: `--threads`
/// beats `PERF_THREADS` beats the serial default of `1`, and `--trace`
/// (thread-local trace rings) forces `1`.
pub fn threads() -> usize {
    resolve_threads(std::env::args().skip(1), std::env::var("PERF_THREADS").ok())
}

fn resolve_threads(args: impl IntoIterator<Item = String>, env: Option<String>) -> usize {
    let mut from_flag = None;
    let mut tracing = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            from_flag = it.next().and_then(|v| v.parse().ok());
        } else if let Some(rest) = arg.strip_prefix("--threads=") {
            from_flag = rest.parse().ok();
        } else if arg == "--trace" || arg.starts_with("--trace=") {
            tracing = true;
        }
    }
    if tracing {
        return 1;
    }
    from_flag
        .or_else(|| env.and_then(|v| v.parse().ok()))
        .unwrap_or(1)
        .max(1)
}

/// Runs `f` over `items` on `threads` workers and returns the results in
/// item order. With `threads <= 1` (or fewer than two items) this is a
/// plain serial map on the calling thread — no pool, no reordering,
/// byte-identical to the historical loops it replaces.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once the pool joins (the
/// serial path panics in place), so a failed point still fails the suite.
pub fn run_ordered<T, R>(threads: usize, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = work[i]
            .lock()
            .expect("pool work slot")
            .take()
            .expect("work item taken once");
        let out = f(item);
        *results[i].lock().expect("pool result slot") = Some(out);
    };
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            std::thread::Builder::new()
                .stack_size(STACK_SIZE)
                .spawn_scoped(s, worker)
                .expect("spawn pool worker");
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot")
                .expect("worker filled every slot")
        })
        .collect()
}

/// [`run_ordered`] with the process-configured thread count
/// ([`threads()`]). The call every `repro_*` suite makes.
pub fn run_ordered_auto<T, R>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    run_ordered(threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn thread_resolution_precedence() {
        assert_eq!(resolve_threads(strings(&[]), None), 1);
        assert_eq!(resolve_threads(strings(&[]), Some("3".into())), 3);
        assert_eq!(
            resolve_threads(strings(&["--threads", "4"]), Some("3".into())),
            4
        );
        assert_eq!(resolve_threads(strings(&["--threads=2"]), None), 2);
        assert_eq!(resolve_threads(strings(&["--threads", "0"]), None), 1);
        assert_eq!(resolve_threads(strings(&["--threads", "junk"]), None), 1);
        // --trace pins the run to the main thread regardless of knobs.
        assert_eq!(
            resolve_threads(strings(&["--threads", "4", "--trace", "t.jsonl"]), None),
            1
        );
    }

    #[test]
    fn ordered_results_match_serial_map() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let out = run_ordered(threads, items.clone(), |i| i * i);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn pool_handles_more_threads_than_items() {
        let out = run_ordered(8, vec![1u64, 2], |i| i + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let _ = run_ordered(2, (0..8u64).collect(), |i| {
            assert!(i != 3, "point 3 failed");
            i
        });
    }
}
