//! Counting global allocator (feature `count-allocs`).
//!
//! Wraps the system allocator and counts allocations and requested bytes.
//! For a deterministic single-threaded workload the counts are themselves
//! deterministic, so `repro_perf` can report allocations-per-suite as a
//! byte-stable counter — a regression signal wall-clock timing can't give
//! on a noisy runner.
//!
//! Register it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: perfkit::alloc::CountingAllocator = perfkit::alloc::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`] wrapper that counts every allocation and reallocation.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are lock-free atomics
// and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Allocations (plus reallocations) since process start.
    pub allocations: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
}

impl AllocCounts {
    /// Reads the current counters.
    pub fn now() -> AllocCounts {
        AllocCounts {
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &AllocCounts) -> AllocCounts {
        AllocCounts {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}
