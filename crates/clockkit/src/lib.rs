//! # clockkit — server-side clock-health tracking and client fencing
//!
//! The paper's bet is that precision time keeps OCC validation windows
//! small (§2.1) — but that only holds while every client's clock actually
//! behaves. This crate gives a server an *evidence-based* view of each
//! client's clock from the one signal it can observe without trusting
//! anyone: the residual between a prepare's client-minted `ts_commit` and
//! the server's own arrival clock.
//!
//! For an honest client the residual is `offset − delay`: a stable,
//! noisy-but-bounded quantity whose spread reflects the client's sync
//! discipline plus network jitter. [`ClockHealth`] keeps an EWMA of the
//! residual and of its absolute deviation per client, derives an
//! uncertainty bound ε = max(floor, k·deviation), and flags prepares whose
//! residual leaves the window:
//!
//! - a single excursion is a **suspect** — the server no-votes that prepare
//!   ([`ClockVerdict::Suspect`], surfaced as `AbortReason::ClockSuspect`)
//!   but keeps serving the client;
//! - `fence_after` *consecutive* suspects **fence** the client
//!   ([`ClockVerdict::Fenced`]): every subsequent prepare is refused until
//!   the residuals sit inside the window again for `unfence_after`
//!   consecutive observations. Estimates keep updating while fenced, so a
//!   repaired clock re-admits itself without operator action.
//!
//! The tracker is deliberately dependency-light (integer arithmetic only,
//! no floats) so verdicts are deterministic across runs and platforms.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;

pub use timesync::ClientId;

/// Tuning for [`ClockHealth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockHealthConfig {
    /// Lower bound on ε (ns): the window never shrinks below this, so
    /// near-perfect clocks are not fenced over scheduling noise.
    pub epsilon_floor_ns: u64,
    /// ε = max(floor, `suspect_multiplier` × mean-abs-deviation).
    pub suspect_multiplier: u32,
    /// Observations before verdicts are issued; during warmup every
    /// prepare passes while the estimates converge.
    pub warmup_samples: u32,
    /// EWMA weight is `1 / 2^alpha_shift` (4 → 1/16): small enough that a
    /// runaway clock outruns its own baseline instead of dragging it along.
    pub alpha_shift: u32,
    /// Consecutive suspect verdicts that fence the client.
    pub fence_after: u32,
    /// Consecutive in-window observations that unfence a fenced client.
    pub unfence_after: u32,
    /// Absolute envelope: a prepare's `ts_commit` more than this far from
    /// the server's arrival clock — ahead *or* behind — is suspect
    /// regardless of the client's history. (Reads are judged against the
    /// future side only: a transaction's `ts_begin` legitimately ages.)
    pub max_future_ns: u64,
}

impl Default for ClockHealthConfig {
    /// Defaults sized for PTP-software deployments (~53 µs skew): 100 µs
    /// floor, 6× deviation multiplier, fence after 4 consecutive suspects,
    /// unfence after 16 clean observations, 10 ms absolute future cap.
    fn default() -> ClockHealthConfig {
        ClockHealthConfig {
            epsilon_floor_ns: 100_000,
            suspect_multiplier: 6,
            warmup_samples: 8,
            alpha_shift: 4,
            fence_after: 4,
            unfence_after: 16,
            max_future_ns: 10_000_000,
        }
    }
}

impl ClockHealthConfig {
    /// The promised external-consistency bound: commit order can disagree
    /// with per-client real time by at most this much before the checker
    /// flags it. Conservatively `max_future_ns` (the loosest fence) plus
    /// the floor.
    pub fn promised_epsilon_ns(&self) -> u64 {
        self.max_future_ns + self.epsilon_floor_ns
    }
}

/// Verdict for one observed prepare timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockVerdict {
    /// The residual sits inside the client's uncertainty window.
    Ok,
    /// The residual left the window — no-vote this prepare.
    Suspect {
        /// Deviation of this observation from the client's baseline (ns).
        residual_ns: i64,
        /// The bound it was judged against (ns).
        epsilon_ns: u64,
    },
    /// The client is fenced (persistent outlier); refuse until it recovers.
    Fenced,
}

impl ClockVerdict {
    /// `true` unless the prepare should be refused.
    pub fn is_ok(self) -> bool {
        matches!(self, ClockVerdict::Ok)
    }
}

#[derive(Debug, Default, Clone)]
struct Track {
    mean_ns: i64,
    mad_ns: i64,
    samples: u64,
    consecutive_suspect: u32,
    consecutive_clean: u32,
    fenced: bool,
}

/// Per-client clock-health estimates for one server.
#[derive(Debug)]
pub struct ClockHealth {
    cfg: ClockHealthConfig,
    tracks: BTreeMap<u32, Track>,
    suspects: u64,
    fences: u64,
    unfences: u64,
}

impl ClockHealth {
    /// An empty tracker.
    pub fn new(cfg: ClockHealthConfig) -> ClockHealth {
        ClockHealth {
            cfg,
            tracks: BTreeMap::new(),
            suspects: 0,
            fences: 0,
            unfences: 0,
        }
    }

    /// Feeds one prepare observation: the client-minted commit timestamp
    /// and the server's own clock at arrival (both ns). Returns the verdict
    /// the server should act on. Estimates update on every call — including
    /// while fenced — so recovered clocks unfence themselves.
    pub fn observe(
        &mut self,
        client: ClientId,
        ts_commit_ns: u64,
        arrival_ns: u64,
    ) -> ClockVerdict {
        let residual = ts_commit_ns as i64 - arrival_ns as i64;
        let t = self.tracks.entry(client.0).or_default();

        let dev = residual - t.mean_ns;
        let epsilon = (self.cfg.epsilon_floor_ns as i64)
            .max(t.mad_ns.saturating_mul(self.cfg.suspect_multiplier as i64))
            as u64;
        // Two checks: the relative one (EWMA window, tracks the client's
        // own noise) and an absolute envelope of ±`max_future_ns` around
        // the server's clock. The envelope's past side matters as much as
        // its future side: the EWMA alone can be laundered (warmup or
        // fenced-state updates inflate the deviation estimate until a
        // multi-ms offset sits "in window"), and the external-consistency
        // promise is only as good as the worst timestamp that can commit.
        // Prepare residuals are fresh — `ts_commit` is minted just before
        // the prepare is sent — so unlike `ts_begin` on the read path the
        // past side only absorbs network delay, which the envelope must
        // (and does, comfortably) cover.
        let in_window =
            dev.unsigned_abs() <= epsilon && residual.unsigned_abs() <= self.cfg.max_future_ns;
        let warming = t.samples < self.cfg.warmup_samples as u64;

        // EWMA update; suspect observations are *not* folded into the
        // baseline (a runaway clock must not drag its own window along),
        // but fenced clients do update so recovery can be recognized. The
        // baseline itself is confined to the promised window: without the
        // clamp a clock could launder an arbitrary offset into its own
        // baseline — by being broken during warmup, by feeding estimates
        // while fenced until "recovery", or by drifting slowly enough that
        // every step stays inside ε — and then commit timestamps that far
        // from true time while rated healthy.
        if warming || in_window || t.fenced {
            let shift = self.cfg.alpha_shift;
            let bound = self.cfg.max_future_ns as i64;
            t.mean_ns = (t.mean_ns + (dev >> shift)).clamp(-bound, bound);
            t.mad_ns += (dev.abs() - t.mad_ns) >> shift;
        }
        t.samples += 1;

        if warming {
            return ClockVerdict::Ok;
        }
        if t.fenced {
            if in_window {
                t.consecutive_clean += 1;
                if t.consecutive_clean >= self.cfg.unfence_after {
                    t.fenced = false;
                    t.consecutive_clean = 0;
                    t.consecutive_suspect = 0;
                    self.unfences += 1;
                    return ClockVerdict::Ok;
                }
            } else {
                t.consecutive_clean = 0;
            }
            return ClockVerdict::Fenced;
        }
        if in_window {
            t.consecutive_suspect = 0;
            return ClockVerdict::Ok;
        }
        t.consecutive_suspect += 1;
        self.suspects += 1;
        if t.consecutive_suspect >= self.cfg.fence_after {
            t.fenced = true;
            t.consecutive_clean = 0;
            self.fences += 1;
            return ClockVerdict::Fenced;
        }
        ClockVerdict::Suspect {
            residual_ns: dev,
            epsilon_ns: epsilon,
        }
    }

    /// Feeds one *read* observation: the transaction's `ts_begin` and the
    /// server's clock at arrival (both ns). A transaction reuses one
    /// `ts_begin` for its whole lifetime, so the residual drifts downward
    /// as the transaction ages — useless for the EWMA estimates, which are
    /// deliberately *not* updated here. Only the absolute future ceiling
    /// is judged (unconditionally, even during warmup: it needs no
    /// estimate), because a noted read at a far-future `ts_begin` extracts
    /// a snapshot promise no honest writer can be held to. Ceiling
    /// breaches feed the same fence state as prepares; in-ceiling reads
    /// leave the state untouched (a stale-but-plausible `ts_begin` is not
    /// evidence of a healthy clock, so it neither excuses suspect prepares
    /// nor unfences anyone) and pass even for fenced clients — the promise
    /// they extract is enforceable, and letting them through is the only
    /// way a recovered client can reach the prepare path and earn its
    /// unfence.
    pub fn observe_read(
        &mut self,
        client: ClientId,
        ts_begin_ns: u64,
        arrival_ns: u64,
    ) -> ClockVerdict {
        let residual = ts_begin_ns as i64 - arrival_ns as i64;
        let over = residual > self.cfg.max_future_ns as i64;
        let t = self.tracks.entry(client.0).or_default();
        if t.fenced {
            if over {
                t.consecutive_clean = 0;
                return ClockVerdict::Fenced;
            }
            return ClockVerdict::Ok;
        }
        if !over {
            return ClockVerdict::Ok;
        }
        t.consecutive_suspect += 1;
        self.suspects += 1;
        if t.consecutive_suspect >= self.cfg.fence_after {
            t.fenced = true;
            t.consecutive_clean = 0;
            self.fences += 1;
            return ClockVerdict::Fenced;
        }
        ClockVerdict::Suspect {
            residual_ns: residual,
            epsilon_ns: self.cfg.max_future_ns,
        }
    }

    /// Whether `client` is currently fenced.
    pub fn is_fenced(&self, client: ClientId) -> bool {
        self.tracks.get(&client.0).is_some_and(|t| t.fenced)
    }

    /// The current uncertainty bound ε for `client` (the floor if the
    /// client has never been observed).
    pub fn epsilon_ns(&self, client: ClientId) -> u64 {
        match self.tracks.get(&client.0) {
            Some(t) => (self.cfg.epsilon_floor_ns as i64)
                .max(t.mad_ns.saturating_mul(self.cfg.suspect_multiplier as i64))
                as u64,
            None => self.cfg.epsilon_floor_ns,
        }
    }

    /// Total suspect verdicts issued (excluding fenced refusals).
    pub fn suspect_count(&self) -> u64 {
        self.suspects
    }

    /// Total fence transitions.
    pub fn fence_count(&self) -> u64 {
        self.fences
    }

    /// Total unfence transitions (fenced clients that recovered).
    pub fn unfence_count(&self) -> u64 {
        self.unfences
    }

    /// Clients currently fenced, ascending by id.
    pub fn fenced_clients(&self) -> Vec<ClientId> {
        self.tracks
            .iter()
            .filter(|(_, t)| t.fenced)
            .map(|(&c, _)| ClientId(c))
            .collect()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClockHealthConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClockHealthConfig {
        ClockHealthConfig::default()
    }

    /// Deterministic jitter in [-30µs, 30µs] — a stand-in for honest
    /// PTP-software residual noise.
    fn jitter(i: u64) -> i64 {
        ((i.wrapping_mul(2_654_435_761) >> 16) % 60_000) as i64 - 30_000
    }

    #[test]
    fn honest_client_is_never_suspected() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(1);
        for i in 0..500 {
            let residual = -200_000 + jitter(i); // delay ~200µs + jitter
            let v = h.observe(c, (1_000_000_000 + residual) as u64, 1_000_000_000);
            assert!(v.is_ok(), "sample {i}: {v:?}");
        }
        assert_eq!(h.suspect_count(), 0);
        assert!(!h.is_fenced(c));
    }

    #[test]
    fn warmup_passes_everything() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(2);
        for i in 0..8 {
            // Wild residuals during warmup still pass.
            let v = h.observe(c, 5_000_000_000 + i * 50_000_000, 1_000_000_000);
            assert!(v.is_ok(), "warmup sample {i}");
        }
    }

    #[test]
    fn runaway_clock_is_suspected_then_fenced_then_recovers() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(3);
        // Establish an honest baseline.
        for i in 0..50 {
            assert!(h
                .observe(
                    c,
                    (1_000_000_000 - 150_000 + jitter(i)) as u64,
                    1_000_000_000
                )
                .is_ok());
        }
        // Clock jumps 5ms ahead: suspects accumulate, then the fence trips.
        let mut suspects = 0;
        let mut fenced_at = None;
        for i in 0..10u32 {
            match h.observe(c, 1_005_000_000, 1_000_000_000) {
                ClockVerdict::Suspect {
                    residual_ns,
                    epsilon_ns,
                } => {
                    suspects += 1;
                    assert!(residual_ns.unsigned_abs() > epsilon_ns);
                }
                ClockVerdict::Fenced => {
                    fenced_at.get_or_insert(i);
                }
                ClockVerdict::Ok => panic!("5ms jump passed at {i}"),
            }
        }
        assert_eq!(suspects, 3, "fence_after-1 suspects before the fence");
        assert_eq!(fenced_at, Some(3));
        assert!(h.is_fenced(c));
        assert_eq!(h.fence_count(), 1);
        assert_eq!(h.fenced_clients(), vec![c]);

        // The clock is repaired: after unfence_after clean observations the
        // client is re-admitted.
        let mut readmitted = None;
        for i in 0..40u32 {
            let v = h.observe(
                c,
                (1_000_000_000 - 150_000 + jitter(i as u64)) as u64,
                1_000_000_000,
            );
            if v.is_ok() {
                readmitted.get_or_insert(i);
            }
        }
        assert!(readmitted.is_some(), "repaired clock must unfence");
        assert!(!h.is_fenced(c));
        assert_eq!(h.unfence_count(), 1);
    }

    #[test]
    fn far_future_timestamp_is_suspect_even_with_loose_history() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(4);
        for i in 0..50 {
            let _ = h.observe(c, (1_000_000_000 + jitter(i) * 10) as u64, 1_000_000_000);
        }
        // 50ms in the future exceeds max_future_ns no matter the window.
        let v = h.observe(c, 1_050_000_000, 1_000_000_000);
        assert!(!v.is_ok(), "{v:?}");
    }

    #[test]
    fn epsilon_has_a_floor_and_tracks_deviation() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(5);
        assert_eq!(h.epsilon_ns(c), cfg().epsilon_floor_ns);
        // Perfectly steady residuals: ε stays at the floor.
        for _ in 0..100 {
            let _ = h.observe(c, 999_900_000, 1_000_000_000);
        }
        assert_eq!(h.epsilon_ns(c), cfg().epsilon_floor_ns);
        // Noisy NTP-scale residuals widen ε above the floor.
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(6);
        for i in 0..200u64 {
            let noise = jitter(i) * 40; // ±1.2ms swings
            let _ = h.observe(c, (1_000_000_000 + noise) as u64, 1_000_000_000);
        }
        assert!(h.epsilon_ns(c) > cfg().epsilon_floor_ns);
    }

    #[test]
    fn one_bad_client_does_not_affect_others() {
        let mut h = ClockHealth::new(cfg());
        let good = ClientId(1);
        let bad = ClientId(2);
        for i in 0..60 {
            assert!(h
                .observe(good, (2_000_000_000 + jitter(i)) as u64, 2_000_000_000)
                .is_ok());
            // The bad clock drifts 1ms further ahead per observation.
            let _ = h.observe(bad, 2_000_000_000 + i * 1_000_000, 2_000_000_000);
        }
        assert!(h.is_fenced(bad));
        assert!(!h.is_fenced(good));
        assert!(h.observe(good, 2_000_010_000, 2_000_000_000).is_ok());
    }

    #[test]
    fn slow_clock_cannot_launder_its_offset_into_the_baseline() {
        // A clock broken *backward* from the very first observation: warmup
        // folds the offset into the mean and inflates the deviation
        // estimate, so the relative window alone would rate it healthy.
        // The absolute envelope (and the baseline clamp) must still refuse
        // it once warmup ends.
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(7);
        let mut ever_ok_after_warmup = false;
        for i in 0..100u64 {
            // 25ms behind true time, honest-looking noise on top.
            let v = h.observe(
                c,
                (1_000_000_000 - 25_000_000 + jitter(i)) as u64,
                1_000_000_000,
            );
            if i >= cfg().warmup_samples as u64 {
                ever_ok_after_warmup |= v.is_ok();
            }
        }
        assert!(!ever_ok_after_warmup, "a 25ms-slow clock was rated healthy");
        assert!(h.is_fenced(c));
    }

    #[test]
    fn reads_fence_on_the_future_ceiling_but_age_freely() {
        let mut h = ClockHealth::new(cfg());
        let c = ClientId(8);
        // An aged ts_begin (far in the past) is fine on the read path.
        for _ in 0..50 {
            assert!(h.observe_read(c, 900_000_000, 1_000_000_000).is_ok());
        }
        assert_eq!(h.suspect_count(), 0);
        // A far-future ts_begin trips the ceiling immediately (no warmup)
        // and fences after `fence_after` consecutive breaches.
        for _ in 0..cfg().fence_after {
            assert!(!h.observe_read(c, 1_050_000_000, 1_000_000_000).is_ok());
        }
        assert!(h.is_fenced(c));
        // Fenced, over-ceiling reads stay refused; in-ceiling reads pass so
        // a recovered client can reach the prepare path and earn its
        // unfence there.
        assert!(!h.observe_read(c, 1_050_000_000, 1_000_000_000).is_ok());
        assert!(h.observe_read(c, 999_900_000, 1_000_000_000).is_ok());
    }

    #[test]
    fn verdicts_are_deterministic() {
        let run = || {
            let mut h = ClockHealth::new(cfg());
            let mut log = Vec::new();
            for i in 0..100u64 {
                let ts = if i % 7 == 0 {
                    1_020_000_000
                } else {
                    (1_000_000_000 + jitter(i)) as u64
                };
                log.push(format!("{:?}", h.observe(ClientId(1), ts, 1_000_000_000)));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
