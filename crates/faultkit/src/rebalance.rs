//! Fault campaigns aimed at live shard migration.
//!
//! One seed boots a traced 2-shard MILANA cluster, runs a contended
//! counter workload, and executes a hot-shard split through
//! [`shardkit::RebalanceEngine`] while a phase-triggered nemesis injects
//! faults: every protocol phase (Prepare, Copy, CatchUp, Cutover) gets a
//! crash of a destination replica or a partition between the engine and
//! one side of the migration, healed a few milliseconds later. The engine
//! must retry through all of it; afterwards the audit proves every
//! acknowledged increment survived the move and the
//! [`Checker`](crate::history::Checker) proves the committed history is
//! serializable and — via the `ShardOwned` / `ShardReleased` claims — that
//! no two nodes ever owned the moving keys at once
//! ([`ViolationClass::DualOwnership`](crate::history::ViolationClass)).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, Key, NandConfig, Value};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig, MASTER_NODE};
use obskit::{Json, MigrationPhase, Obs};
use rand::Rng;
use semel::shard::ShardId;
use shardkit::{RebalanceEngine, RebalancePlan};
use simkit::Sim;
use timesync::ClockSpec;

use crate::campaign::ViolationSummary;
use crate::history::{Checker, History};

/// Parameters for a migration fault campaign.
#[derive(Debug, Clone)]
pub struct RebalanceCampaignConfig {
    /// Seeds to run, one simulation each.
    pub seeds: Vec<u64>,
    /// Replicas per shard (odd).
    pub replicas: u32,
    /// Workload clients.
    pub clients: u32,
    /// Contended counter keys (spread over both shards).
    pub keys: u64,
    /// Inject phase-targeted faults (`false` = clean control run).
    pub inject: bool,
    /// Trace ring capacity (events); `0` picks a migration-sized default.
    pub trace_capacity: usize,
}

impl Default for RebalanceCampaignConfig {
    fn default() -> RebalanceCampaignConfig {
        RebalanceCampaignConfig {
            seeds: vec![0],
            replicas: 3,
            clients: 4,
            keys: 16,
            inject: true,
            trace_capacity: 0,
        }
    }
}

/// Everything one migration seed produced.
#[derive(Debug, Clone)]
pub struct RebalanceSeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Commits acknowledged to workload clients.
    pub acked: u64,
    /// Final counter sum read by the audit transaction.
    pub audit_total: u64,
    /// Unknown-outcome attempts reported by clients.
    pub unknowns: u64,
    /// Records the engine shipped over the copy plane.
    pub records_copied: u64,
    /// Bytes the engine shipped over the copy plane.
    pub bytes_copied: u64,
    /// Catch-up sweeps the engine ran.
    pub catchup_rounds: u32,
    /// Map epoch after cutover.
    pub final_epoch: u64,
    /// Prepares fenced with `StaleEpoch` across all servers.
    pub stale_epoch_prepares: u64,
    /// Faults the phase nemesis injected.
    pub faults_injected: u64,
    /// Ownership claims/releases in the trace.
    pub ownership_events: u64,
    /// True when the audit conserved every acknowledged increment.
    pub conservation_ok: bool,
    /// Checker violations (serializability, snapshot, dual ownership...).
    pub violations: Vec<ViolationSummary>,
}

impl RebalanceSeedOutcome {
    /// True when the seed conserved every acked write and the checker
    /// found nothing.
    pub fn clean(&self) -> bool {
        self.conservation_ok && self.violations.is_empty()
    }
}

/// A whole migration campaign's outcomes.
#[derive(Debug, Clone, Default)]
pub struct RebalanceCampaignReport {
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<RebalanceSeedOutcome>,
}

impl RebalanceCampaignReport {
    /// Total violations across seeds.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Seeds that were not clean.
    pub fn offending_seeds(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| !o.clean())
            .map(|o| o.seed)
            .collect()
    }

    /// Deterministic JSON document (stable field order, no floats).
    pub fn to_json(&self) -> Json {
        let mut seeds = Vec::new();
        for o in &self.outcomes {
            let violations: Vec<Json> = o
                .violations
                .iter()
                .map(|v| {
                    Json::obj()
                        .field("class", Json::str(v.class))
                        .field("description", Json::str(&v.description))
                })
                .collect();
            seeds.push(
                Json::obj()
                    .field("seed", Json::U64(o.seed))
                    .field("acked", Json::U64(o.acked))
                    .field("audit_total", Json::U64(o.audit_total))
                    .field("unknowns", Json::U64(o.unknowns))
                    .field("records_copied", Json::U64(o.records_copied))
                    .field("bytes_copied", Json::U64(o.bytes_copied))
                    .field("catchup_rounds", Json::U64(o.catchup_rounds as u64))
                    .field("final_epoch", Json::U64(o.final_epoch))
                    .field("stale_epoch_prepares", Json::U64(o.stale_epoch_prepares))
                    .field("faults_injected", Json::U64(o.faults_injected))
                    .field("ownership_events", Json::U64(o.ownership_events))
                    .field("conservation_ok", Json::Bool(o.conservation_ok))
                    .field("violations", Json::arr(violations)),
            );
        }
        Json::obj()
            .field("seeds", Json::arr(seeds))
            .field("violations_total", Json::U64(self.violation_count() as u64))
    }
}

fn enc(n: u64) -> Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v[..8]);
    u64::from_be_bytes(b)
}

/// Runs one migration seed to completion and returns its outcome.
pub fn run_rebalance_seed(cfg: &RebalanceCampaignConfig, seed: u64) -> RebalanceSeedOutcome {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let capacity = if cfg.trace_capacity == 0 {
        1 << 19
    } else {
        cfg.trace_capacity
    };
    let obs = Obs::with_trace(capacity);
    let mut cluster_cfg = MilanaClusterConfig {
        shards: 2,
        replicas: cfg.replicas,
        clients: cfg.clients,
        nand: NandConfig {
            blocks: 512,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        clock: ClockSpec::ptp_software(),
        preload_keys: 0,
        ..MilanaClusterConfig::default()
    };
    cluster_cfg.tuning.obs = obs.clone();
    cluster_cfg.client_cfg.obs = obs.clone();
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cluster_cfg)));

    // Seed the counters.
    let keys = cfg.keys;
    {
        let clients = cluster.borrow().clients.clone();
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.expect("seeding commit");
            hh.sleep(Duration::from_millis(5)).await;
        });
    }

    // Continuous contended increments; StaleEpoch / fence aborts are just
    // unacked attempts the workload retries like any other conflict.
    let acked = Rc::new(Cell::new(0u64));
    let stop = Rc::new(Cell::new(false));
    for c in &cluster.borrow().clients {
        let c = c.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let hh = h.clone();
        h.spawn(async move {
            let mut rng = hh.fork_rng();
            while !stop.get() {
                let k = Key::from(rng.gen_range(0..keys));
                let mut t = c.begin_with(TxnOpts::default());
                let n = match t.get(&k).await {
                    Ok(v) if v.len() >= 8 => dec(&v),
                    _ => {
                        hh.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(n + 1));
                if t.commit().await.is_ok() {
                    acked.set(acked.get() + 1);
                }
            }
        });
    }

    // Provision the split destination and build the engine.
    let from = ShardId(0);
    let to = ShardId(2);
    let dest = cluster.borrow_mut().provision_group(to);
    let sources: Vec<shardkit::SourceReplica> = cluster.borrow().replicas[from.0 as usize]
        .iter()
        .map(|s| (s.addr, s.server.backend().clone()))
        .collect();
    let engine = RebalanceEngine::new(
        &h,
        MASTER_NODE,
        cluster.borrow().map.clone(),
        cluster.borrow().master.clone(),
        shardkit::RebalanceSpec::default(),
        obs.clone(),
    );

    // Phase nemesis: every phase gets a crash or partition, healed a few
    // milliseconds later. The engine's acked retries must ride it out.
    let injected = Rc::new(Cell::new(0u64));
    if cfg.inject {
        let hh = h.clone();
        let cl = cluster.clone();
        let dest_hook = dest.clone();
        let map = cluster.borrow().map.clone();
        let inj = injected.clone();
        engine.set_phase_hook(Rc::new(move |phase| {
            let heal = Duration::from_millis(12);
            match phase {
                MigrationPhase::Prepare | MigrationPhase::CatchUp => {
                    // Crash a destination backup; the copy plane stalls on
                    // it until the restart brings it back.
                    let idx = if phase == MigrationPhase::Prepare {
                        1
                    } else {
                        2
                    };
                    let node = dest_hook.all()[idx].node;
                    if hh.is_dead(node) {
                        return;
                    }
                    inj.set(inj.get() + 1);
                    hh.kill_node(node);
                    let hh2 = hh.clone();
                    let cl2 = cl.clone();
                    hh.spawn(async move {
                        hh2.sleep(heal).await;
                        // The destination row is the last one; for a split
                        // of a 2-shard cluster its index equals the new
                        // shard id, which is what restart_replica_warm
                        // keys on.
                        cl2.borrow_mut().restart_replica_warm(ShardId(2), idx);
                    });
                }
                MigrationPhase::Copy => {
                    // Cut the engine off from the destination primary.
                    inj.set(inj.get() + 1);
                    hh.partition(&[MASTER_NODE], &[dest_hook.primary.node]);
                    let hh2 = hh.clone();
                    hh.spawn(async move {
                        hh2.sleep(heal).await;
                        hh2.heal_partitions();
                    });
                }
                MigrationPhase::Cutover => {
                    // Cut the engine off from the source primary right
                    // before the fence goes out.
                    inj.set(inj.get() + 1);
                    let src = map.borrow().group(ShardId(0)).primary.node;
                    hh.partition(&[MASTER_NODE], &[src]);
                    let hh2 = hh.clone();
                    hh.spawn(async move {
                        hh2.sleep(heal).await;
                        hh2.heal_partitions();
                    });
                }
                MigrationPhase::Done => {}
            }
        }));
    }

    // Run the split under fire.
    let report = {
        let hh = h.clone();
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(20)).await;
            engine
                .run(RebalancePlan::Split { from }, dest, sources)
                .await
        })
    };

    // Settle, stop the workload, drain in-flight transactions.
    {
        let hh = h.clone();
        let stop = stop.clone();
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(40)).await;
            stop.set(true);
            hh.sleep(Duration::from_millis(60)).await;
        });
    }

    // Audit: one transaction reading every counter, retried until it
    // commits.
    let clients = cluster.borrow().clients.clone();
    let hh = h.clone();
    let audit_total = sim.block_on(async move {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 500 {
                return None;
            }
            let mut t = clients[0].begin_with(TxnOpts::default());
            let mut sum = 0u64;
            let mut bad = false;
            for k in 0..keys {
                match t.get(&Key::from(k)).await {
                    Ok(v) if v.len() >= 8 => sum += dec(&v),
                    _ => {
                        bad = true;
                        break;
                    }
                }
            }
            if bad {
                hh.sleep(Duration::from_millis(2)).await;
                continue;
            }
            match t.commit().await {
                Ok(_) => return Some(sum),
                Err(_) => {
                    hh.sleep(Duration::from_millis(2)).await;
                    continue;
                }
            }
        }
    });

    let cluster = cluster.borrow();
    let unknowns: u64 = cluster.clients.iter().map(|c| c.stats().unknown).sum();
    let acked = acked.get();
    // Every acknowledged increment must survive the migration; CTP may
    // commit a few unknown-outcome attempts on top, and each client can
    // have at most one transaction in flight at stop.
    let conservation_ok = match audit_total {
        None => false,
        Some(total) => total >= acked && total <= acked + unknowns + cluster.clients.len() as u64,
    };

    let history = History::from_events(obs.tracer.events(), obs.tracer.dropped());
    let violations: Vec<ViolationSummary> = Checker::new(&history)
        .check()
        .into_iter()
        .map(|v| ViolationSummary {
            class: v.class.as_str(),
            description: v.description,
            trace_slice: history.trace_slice(&v.txns),
        })
        .collect();

    RebalanceSeedOutcome {
        seed,
        acked,
        audit_total: audit_total.unwrap_or(0),
        unknowns,
        records_copied: report.records_copied,
        bytes_copied: report.bytes_copied,
        catchup_rounds: report.catchup_rounds,
        final_epoch: report.final_epoch,
        stale_epoch_prepares: obs.registry.counter("stale_epoch_prepares").get(),
        faults_injected: injected.get(),
        ownership_events: history.ownership.len() as u64,
        conservation_ok,
        violations,
    }
}

/// Runs every seed in `cfg` and collects the outcomes. Seeds run on the
/// `perfkit` worker pool (one independent sim per seed); outcomes come
/// back in seed order, identical to a serial campaign's.
pub fn run_rebalance_campaign(cfg: &RebalanceCampaignConfig) -> RebalanceCampaignReport {
    let outcomes =
        perfkit::pool::run_ordered_auto(cfg.seeds.clone(), |s| run_rebalance_seed(cfg, s));
    RebalanceCampaignReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_control_seed_conserves() {
        let cfg = RebalanceCampaignConfig {
            inject: false,
            ..RebalanceCampaignConfig::default()
        };
        let o = run_rebalance_seed(&cfg, 7);
        assert!(o.clean(), "control run dirty: {o:?}");
        assert!(o.records_copied > 0);
        assert!(o.ownership_events >= 3, "missing ownership claims");
    }

    #[test]
    fn faulted_seed_conserves_and_stays_single_owner() {
        let cfg = RebalanceCampaignConfig::default();
        let o = run_rebalance_seed(&cfg, 11);
        assert!(o.faults_injected >= 4, "nemesis injected too little");
        assert!(o.clean(), "faulted run dirty: {o:?}");
        assert!(o.records_copied > 0);
    }

    #[test]
    fn campaign_json_is_deterministic() {
        let cfg = RebalanceCampaignConfig {
            seeds: vec![3],
            ..RebalanceCampaignConfig::default()
        };
        let a = run_rebalance_campaign(&cfg).to_json().to_pretty_string();
        let b = run_rebalance_campaign(&cfg).to_json().to_pretty_string();
        assert_eq!(a, b, "same seed must produce identical bytes");
    }
}
