//! Deterministic fault-injection campaigns and a serializability history
//! checker for the MILANA stack.
//!
//! The crate has four layers:
//!
//! - [`plan`]: a seeded, declarative schedule of faults ([`FaultPlan`]) —
//!   crashes, partitions, network degradation (drop / duplicate / delay
//!   spikes), clock faults (steps, persistent drift, holdover jumps), and
//!   flash media faults — with a generator that
//!   only produces *survivable* schedules (every partition heals, every
//!   crash leaves a quorum).
//! - [`nemesis`]: a task on the simulation executor that walks a plan
//!   against a running [`milana::MilanaCluster`], driving failover and
//!   restarts, and records what it actually did.
//! - [`history`]: rebuilds the committed transaction history from an
//!   [`obskit::Tracer`] dump and checks serializability (conflict-graph
//!   cycle detection), snapshot-read consistency, and the no-lost-ack
//!   replication invariant.
//! - [`campaign`]: runs N seeds × M faults of a counter workload under the
//!   nemesis, audits conservation invariants, runs the checker, and emits
//!   byte-stable JSON summaries (the `repro_chaos` binary's engine).
//! - [`rebalance`]: phase-targeted campaigns against live shard migration
//!   (crash/partition in every `shardkit` phase), audited for conservation
//!   and single-owner-per-epoch via the history checker.
//!
//! Everything is deterministic: the same seed replays the same fault
//! schedule, the same message drops, and the same checker verdicts.

#![warn(missing_docs)]

pub mod campaign;
pub mod history;
pub mod nemesis;
pub mod plan;
pub mod rebalance;

pub use campaign::{
    run_campaign, run_seed, run_seed_with_trace, CampaignConfig, CampaignReport, SeedOutcome,
};
pub use history::{Checker, History, OwnershipEvent, Violation, ViolationClass};
pub use nemesis::{run_nemesis, NemesisReport};
pub use plan::{Fault, FaultPlan, PlanShape, TimedFault};
pub use rebalance::{
    run_rebalance_campaign, run_rebalance_seed, RebalanceCampaignConfig, RebalanceCampaignReport,
    RebalanceSeedOutcome,
};
