//! Declarative, seeded fault schedules.
//!
//! A [`FaultPlan`] is a sequence of [`TimedFault`]s the nemesis applies
//! strictly in order: wait `after`, inject, hold for the fault's embedded
//! duration, undo. Embedding the undo in the fault itself (every partition
//! carries its heal delay, every degradation its restore delay) means a
//! randomly generated plan is survivable by construction — the cluster is
//! never left permanently partitioned or degraded, and every crash cycle
//! restores full replication before the next fault fires.

use std::time::Duration;

use flashsim::nand::MediaFaultConfig;
use rand::{Rng, SeedableRng};
use simkit::net::NetFaultConfig;

/// One injectable fault, with its recovery baked in.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Kill the shard's current primary mid-flight, promote a live backup
    /// (the §4.5 failover: log merge, in-doubt resolution, lease wait),
    /// then revive the crashed replica as a backup after `restart_after`.
    CrashPrimary {
        /// Target shard.
        shard: u32,
        /// Delay before the killed replica restarts.
        restart_after: Duration,
    },
    /// Isolate the shard's current primary from every other node (clients,
    /// replicas, master), heal after `heal_after`. In-flight messages
    /// already scheduled still deliver; everything submitted during the
    /// partition is dropped.
    PartitionPrimary {
        /// Target shard.
        shard: u32,
        /// Partition duration.
        heal_after: Duration,
    },
    /// Isolate one client from the whole cluster, heal after `heal_after`.
    PartitionClient {
        /// Target client index.
        client: u32,
        /// Partition duration.
        heal_after: Duration,
    },
    /// Degrade the network fabric — probabilistic message drop,
    /// duplication, and latency spikes — then restore after
    /// `restore_after`. Loopback traffic is exempt.
    NetDegrade {
        /// Fault probabilities and spike size.
        cfg: NetFaultConfig,
        /// Degradation duration.
        restore_after: Duration,
    },
    /// Step one client's synchronized clock by `delta_ns`. Positive steps
    /// jump reads forward; negative steps slew (the monotonic clamp keeps
    /// issued timestamps from going backwards). Persists until the next
    /// resync.
    ClockStep {
        /// Target client index.
        client: u32,
        /// Offset applied to the clock's correction, ns.
        delta_ns: i64,
    },
    /// Put one client's clock on a **persistent frequency error**: the
    /// clock runs fast (positive rate) or slow (negative) between syncs,
    /// re-accruing error after every correction, for `hold`. The rate is
    /// then reset to zero; the residual offset decays at the next resync.
    ClockDrift {
        /// Target client index.
        client: u32,
        /// Frequency error, nanoseconds gained per true second.
        rate_ns_per_s: i64,
        /// How long the drift persists before the rate is restored.
        hold: Duration,
    },
    /// Step one client's clock by `delta_ns` and cut it off from its
    /// reference for `holdover`: no resync corrects the step (or any
    /// concurrent drift) until holdover ends — the oscillator-in-holdover
    /// failure mode of a PTP client losing its grandmaster.
    ClockJump {
        /// Target client index.
        client: u32,
        /// Step applied to the clock's correction, ns.
        delta_ns: i64,
        /// How long the clock free-runs before discipline resumes.
        holdover: Duration,
    },
    /// Flood one shard's primary with synthetic no-op read load at
    /// `burst_rps` until `restore_after` elapses, driving its admission
    /// gate into shedding. The flood is fire-and-forget (`GetAny` casts),
    /// so it consumes admission capacity and backend reads without
    /// touching any transaction metadata.
    Overload {
        /// Target shard.
        shard: u32,
        /// Flood rate, requests per second.
        burst_rps: u64,
        /// How long the flood lasts.
        restore_after: Duration,
    },
    /// Power-fail the shard's current primary: kill the node *and* tear
    /// its storage backend's volatile state (the in-flight page program
    /// becomes a torn page, RAM queues and mapping tables drop), promote a
    /// live backup, then cold-restart the failed replica after
    /// `restart_after` — flash mount scan plus anti-entropy catch-up, not
    /// the warm §4.5 table-reuse path. Generated only by
    /// [`FaultPlan::random_powerfail`]: the durability campaign opts in
    /// explicitly.
    PowerFail {
        /// Target shard.
        shard: u32,
        /// Delay before the failed replica cold-restarts.
        restart_after: Duration,
    },
    /// Degrade one replica's flash device — ECC-recovery retries on
    /// read/program and worn-block retirement on erase — then restore
    /// after `restore_after`.
    FlashDegrade {
        /// Target shard.
        shard: u32,
        /// Replica index within the shard.
        replica: u32,
        /// Media-fault probabilities and recovery latency.
        cfg: MediaFaultConfig,
        /// Degradation duration.
        restore_after: Duration,
    },
}

impl Fault {
    /// Stable class name for per-class outcome accounting.
    pub fn class(&self) -> &'static str {
        match self {
            Fault::CrashPrimary { .. } => "crash",
            Fault::PartitionPrimary { .. } => "partition_primary",
            Fault::PartitionClient { .. } => "partition_client",
            Fault::NetDegrade { .. } => "net_degrade",
            Fault::ClockStep { .. } => "clock_step",
            Fault::ClockDrift { .. } => "clock_drift",
            Fault::ClockJump { .. } => "clock_jump",
            Fault::Overload { .. } => "overload",
            Fault::PowerFail { .. } => "power_fail",
            Fault::FlashDegrade { .. } => "flash_degrade",
        }
    }
}

/// A fault plus the delay before it fires (relative to the previous fault
/// completing — the nemesis is strictly sequential).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    /// Wait this long after the previous fault finished.
    pub after: Duration,
    /// What to inject.
    pub fault: Fault,
}

/// Cluster shape the generator needs to pick valid targets.
#[derive(Debug, Clone, Copy)]
pub struct PlanShape {
    /// Number of shards.
    pub shards: u32,
    /// Replicas per shard (crashes are only generated when `>= 3`).
    pub replicas: u32,
    /// Number of clients.
    pub clients: u32,
}

/// An ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The schedule, applied front to back.
    pub faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// Generates a survivable random schedule of `n` faults from `seed`.
    /// The same `(seed, n, shape)` always yields the same plan.
    pub fn random(seed: u64, n: usize, shape: PlanShape) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xfa_17_5c_4e_d0_1e_55_ed);
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let after = Duration::from_millis(rng.gen_range(4..24));
            let shard = rng.gen_range(0..shape.shards as u64) as u32;
            let client = rng.gen_range(0..shape.clients as u64) as u32;
            // Weighted mix; crashes need a quorum of backups to fail onto.
            let mut roll = rng.gen_range(0..100u64);
            if shape.replicas < 3 && roll < 25 {
                roll = 25; // no survivable crash: fall through to partition
            }
            let fault = match roll {
                0..=24 => Fault::CrashPrimary {
                    shard,
                    restart_after: Duration::from_millis(rng.gen_range(8..30)),
                },
                25..=39 => Fault::PartitionPrimary {
                    shard,
                    heal_after: Duration::from_millis(rng.gen_range(5..25)),
                },
                40..=49 => Fault::PartitionClient {
                    client,
                    heal_after: Duration::from_millis(rng.gen_range(5..25)),
                },
                50..=64 => Fault::NetDegrade {
                    cfg: NetFaultConfig {
                        drop_prob: rng.gen_range(0..30) as f64 / 100.0,
                        dup_prob: rng.gen_range(0..50) as f64 / 100.0,
                        delay_spike_prob: rng.gen_range(0..40) as f64 / 100.0,
                        delay_spike: Duration::from_micros(rng.gen_range(200..5_000)),
                    },
                    restore_after: Duration::from_millis(rng.gen_range(5..30)),
                },
                65..=76 => Fault::ClockStep {
                    client,
                    delta_ns: rng.gen_range(-5_000_000i64..5_000_000),
                },
                77..=88 => Fault::Overload {
                    shard,
                    burst_rps: rng.gen_range(20_000..80_000),
                    restore_after: Duration::from_millis(rng.gen_range(5..20)),
                },
                _ => Fault::FlashDegrade {
                    shard,
                    replica: rng.gen_range(0..shape.replicas as u64) as u32,
                    cfg: MediaFaultConfig {
                        read_error_prob: rng.gen_range(0..50) as f64 / 100.0,
                        program_error_prob: rng.gen_range(0..50) as f64 / 100.0,
                        recovery_latency: Duration::from_micros(rng.gen_range(100..1_000)),
                        retire_next_erases: rng.gen_range(0..3u32),
                    },
                    restore_after: Duration::from_millis(rng.gen_range(10..40)),
                },
            };
            faults.push(TimedFault { after, fault });
        }
        FaultPlan { faults }
    }

    /// Generates a schedule of `n` pure [`Fault::Overload`] bursts from
    /// `seed` — the targeted campaign `repro_chaos --inject overload` runs.
    pub fn random_overload(seed: u64, n: usize, shape: PlanShape) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0f_f1_0a_d5_0f_f1_0a_d5);
        let faults = (0..n)
            .map(|_| TimedFault {
                after: Duration::from_millis(rng.gen_range(4..24)),
                fault: Fault::Overload {
                    shard: rng.gen_range(0..shape.shards as u64) as u32,
                    burst_rps: rng.gen_range(20_000..80_000),
                    restore_after: Duration::from_millis(rng.gen_range(5..20)),
                },
            })
            .collect();
        FaultPlan { faults }
    }

    /// Generates the clock-fault campaign's schedule from `seed`: steps,
    /// persistent drifts, and holdover jumps against client clocks — no
    /// node, network, or media faults, so every abort the campaign sees is
    /// attributable to time. Like power failures, the heavier clock faults
    /// are opt-in via this dedicated generator: [`FaultPlan::random`] keeps
    /// its exact per-seed schedules.
    pub fn random_clockfault(seed: u64, n: usize, shape: PlanShape) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc1_0c_fa_17_c1_0c_fa_17);
        let faults = (0..n)
            .map(|_| {
                let after = Duration::from_millis(rng.gen_range(4..24));
                let client = rng.gen_range(0..shape.clients as u64) as u32;
                let fault = match rng.gen_range(0..100u64) {
                    0..=39 => Fault::ClockStep {
                        client,
                        delta_ns: rng.gen_range(-5_000_000i64..5_000_000),
                    },
                    40..=74 => Fault::ClockDrift {
                        client,
                        // Up to ±2 ms/s: far outside any disciplined
                        // oscillator, squarely in broken-hardware land.
                        rate_ns_per_s: rng.gen_range(-2_000_000i64..2_000_000),
                        hold: Duration::from_millis(rng.gen_range(10..40)),
                    },
                    _ => Fault::ClockJump {
                        client,
                        delta_ns: rng.gen_range(-8_000_000i64..8_000_000),
                        holdover: Duration::from_millis(rng.gen_range(10..40)),
                    },
                };
                TimedFault { after, fault }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Generates the durability campaign's schedule from `seed`: a
    /// randomized interleaving of warm crashes, **power failures** (cold
    /// restarts with torn flash state), and primary partitions — every
    /// phase the ISSUE's crash → power-fail → cold-restart cycle needs,
    /// with the phase order itself randomized per seed. Requires
    /// `shape.replicas >= 3` for the crash/power-fail cycles to be
    /// survivable; smaller shapes degrade to partitions.
    pub fn random_powerfail(seed: u64, n: usize, shape: PlanShape) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc0_1d_b0_07_c0_1d_b0_07);
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let after = Duration::from_millis(rng.gen_range(4..24));
            let shard = rng.gen_range(0..shape.shards as u64) as u32;
            let mut roll = rng.gen_range(0..100u64);
            if shape.replicas < 3 && roll < 80 {
                roll = 80; // no survivable crash or power fail: partition
            }
            let fault = match roll {
                0..=49 => Fault::PowerFail {
                    shard,
                    restart_after: Duration::from_millis(rng.gen_range(8..30)),
                },
                50..=79 => Fault::CrashPrimary {
                    shard,
                    restart_after: Duration::from_millis(rng.gen_range(8..30)),
                },
                _ => Fault::PartitionPrimary {
                    shard,
                    heal_after: Duration::from_millis(rng.gen_range(5..25)),
                },
            };
            faults.push(TimedFault { after, fault });
        }
        FaultPlan { faults }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: PlanShape = PlanShape {
        shards: 2,
        replicas: 3,
        clients: 4,
    };

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::random(42, 50, SHAPE);
        let b = FaultPlan::random(42, 50, SHAPE);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::random(1, 50, SHAPE);
        let b = FaultPlan::random(2, 50, SHAPE);
        assert_ne!(a, b);
    }

    #[test]
    fn single_replica_shape_generates_no_crashes() {
        let plan = FaultPlan::random(
            7,
            100,
            PlanShape {
                shards: 1,
                replicas: 1,
                clients: 2,
            },
        );
        assert!(plan
            .faults
            .iter()
            .all(|f| !matches!(f.fault, Fault::CrashPrimary { .. })));
    }

    #[test]
    fn overload_plans_are_pure_and_deterministic() {
        let a = FaultPlan::random_overload(11, 20, SHAPE);
        let b = FaultPlan::random_overload(11, 20, SHAPE);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(a.faults.iter().all(|f| f.fault.class() == "overload"));
        for f in &a.faults {
            let Fault::Overload {
                shard, burst_rps, ..
            } = f.fault
            else {
                unreachable!()
            };
            assert!(shard < SHAPE.shards);
            assert!((20_000..80_000).contains(&burst_rps));
        }
    }

    #[test]
    fn powerfail_plans_are_deterministic_and_cover_the_cycle() {
        let a = FaultPlan::random_powerfail(9, 40, SHAPE);
        let b = FaultPlan::random_powerfail(9, 40, SHAPE);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        for class in ["power_fail", "crash", "partition_primary"] {
            assert!(
                a.faults.iter().any(|f| f.fault.class() == class),
                "missing {class}"
            );
        }
        // Single-replica shapes must never schedule a node kill.
        let small = FaultPlan::random_powerfail(
            9,
            40,
            PlanShape {
                shards: 1,
                replicas: 1,
                clients: 2,
            },
        );
        assert!(small
            .faults
            .iter()
            .all(|f| f.fault.class() == "partition_primary"));
    }

    #[test]
    fn clockfault_plans_are_pure_and_deterministic() {
        let a = FaultPlan::random_clockfault(13, 60, SHAPE);
        let b = FaultPlan::random_clockfault(13, 60, SHAPE);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        for f in &a.faults {
            assert!(
                matches!(
                    f.fault,
                    Fault::ClockStep { .. } | Fault::ClockDrift { .. } | Fault::ClockJump { .. }
                ),
                "non-clock fault in clockfault plan: {:?}",
                f.fault
            );
        }
        for class in ["clock_step", "clock_drift", "clock_jump"] {
            assert!(
                a.faults.iter().any(|f| f.fault.class() == class),
                "missing {class}"
            );
        }
        assert!(a
            .faults
            .iter()
            .all(|f| matches!(f.fault, Fault::ClockStep { client, .. }
                | Fault::ClockDrift { client, .. }
                | Fault::ClockJump { client, .. } if client < SHAPE.clients)));
    }

    #[test]
    fn mixed_plans_never_generate_clock_drift_or_jump() {
        // Drift and holdover jumps are opt-in via `random_clockfault`, so
        // pre-existing campaigns keep their exact per-seed schedules.
        let plan = FaultPlan::random(3, 200, SHAPE);
        assert!(plan
            .faults
            .iter()
            .all(|f| !matches!(f.fault, Fault::ClockDrift { .. } | Fault::ClockJump { .. })));
    }

    #[test]
    fn mixed_plans_never_generate_power_failures() {
        // `random()` is the general campaign: power failures are opt-in
        // via `random_powerfail` only, so existing campaigns keep their
        // exact per-seed schedules.
        let plan = FaultPlan::random(3, 200, SHAPE);
        assert!(plan
            .faults
            .iter()
            .all(|f| !matches!(f.fault, Fault::PowerFail { .. })));
    }

    #[test]
    fn mixed_plans_cover_every_class() {
        let plan = FaultPlan::random(3, 200, SHAPE);
        for class in [
            "crash",
            "partition_primary",
            "partition_client",
            "net_degrade",
            "clock_step",
            "overload",
            "flash_degrade",
        ] {
            assert!(
                plan.faults.iter().any(|f| f.fault.class() == class),
                "missing {class}"
            );
        }
    }
}
