//! Randomized fault campaigns: N seeds × M faults of a contended counter
//! workload under the nemesis, audited for conservation and checked for
//! serializability, with byte-stable JSON summaries.
//!
//! Each seed runs in its own simulation: boot a traced MILANA cluster,
//! seed counters, run read-modify-write clients continuously, walk a
//! random [`FaultPlan`], force-heal, then audit (every acknowledged
//! increment survives, no phantom increments) and run the
//! [`Checker`](crate::history::Checker) over the recorded trace.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, Key, NandConfig, Value};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use obskit::{Json, Obs};
use rand::Rng;
use simkit::Sim;
use timesync::ClockSpec;

use crate::history::{Checker, History};
use crate::nemesis::run_nemesis;
use crate::plan::{FaultPlan, PlanShape};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds to run, one simulation each.
    pub seeds: Vec<u64>,
    /// Faults per seed.
    pub faults: usize,
    /// Shards in each cluster.
    pub shards: u32,
    /// Replicas per shard (odd).
    pub replicas: u32,
    /// Workload clients.
    pub clients: u32,
    /// Contended counter keys.
    pub keys: u64,
    /// Trace ring capacity (events). `0` auto-sizes from the fault count:
    /// a 2-shard, 4-client workload produces roughly 3k trace events per
    /// scheduled fault, and a ring that overflows truncates the history,
    /// which disables every provenance-based check (see
    /// [`crate::history`]). Auto-sizing keeps ~2.5x headroom over that.
    pub trace_capacity: usize,
    /// Seeded-bug mode: primaries vote yes without validating, so the
    /// checker has a real serializability bug to catch.
    pub skip_validation: bool,
    /// Targeted overload mode: the plan contains only
    /// [`crate::plan::Fault::Overload`] bursts, exercising the admission
    /// and retry plane specifically.
    pub overload_only: bool,
    /// Durability campaign: the plan interleaves power failures (cold
    /// restarts with torn flash state) with warm crashes and partitions
    /// ([`crate::plan::FaultPlan::random_powerfail`]), exercising mount
    /// scans, anti-entropy catch-up, and the `lost_acked_write` checker.
    pub powerfail: bool,
    /// Seeded-bug mode: cold-restarting replicas adopt the mounted floor
    /// as their applied watermark and serve immediately, skipping
    /// anti-entropy catch-up — acked writes that were still in volatile
    /// flash queues at the power failure silently vanish, and the checker
    /// must catch it (`lost_acked_write` / `stale_backup_read`).
    pub skip_durability: bool,
    /// Clock-fault campaign: the plan contains only client clock faults —
    /// steps, persistent drifts, holdover jumps
    /// ([`crate::plan::FaultPlan::random_clockfault`]) — so every abort is
    /// attributable to time.
    pub clockfault: bool,
    /// Server-side clock-health tracking: primaries estimate each client's
    /// timestamp-vs-arrival residual, refuse prepares outside the
    /// uncertainty window, and fence persistent outliers. `None` leaves
    /// the fence off (the historical behavior).
    pub clock_health: Option<clockkit::ClockHealthConfig>,
    /// Seeded-bug mode: primaries track clock health but **ignore the
    /// verdict** — suspect prepares sail through validation with their
    /// bogus timestamps, and the checker must flag the resulting
    /// `clock_bound_breach`.
    pub skip_uncertainty: bool,
    /// Promised clock uncertainty handed to the checker
    /// ([`Checker::with_epsilon`]); `None` skips the clock-bound check.
    pub clock_epsilon_ns: Option<u64>,
    /// Admission capacity (cost units) per server. Sized so the steady
    /// counter workload never sheds but nemesis overload bursts do.
    pub admission_capacity: u64,
    /// Backup snapshot reads: clients route reads power-of-two across
    /// backups and primaries gossip watermark floors, so the campaign
    /// exercises the `stale_backup_read` invariant under faults. Off by
    /// default (primary-only reads, the historical behavior).
    pub backup_reads: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seeds: vec![0],
            faults: 20,
            shards: 1,
            replicas: 3,
            clients: 4,
            keys: 8,
            trace_capacity: 0,
            skip_validation: false,
            overload_only: false,
            powerfail: false,
            skip_durability: false,
            clockfault: false,
            clock_health: None,
            skip_uncertainty: false,
            clock_epsilon_ns: None,
            admission_capacity: 32,
            backup_reads: false,
        }
    }
}

/// One invariant violation, summarized for reporting.
#[derive(Debug, Clone)]
pub struct ViolationSummary {
    /// Violation class name.
    pub class: &'static str,
    /// Description (offending transactions inline).
    pub description: String,
    /// The minimal trace slice around the involved transactions (JSONL).
    pub trace_slice: String,
}

/// Everything one seed produced.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Commits acknowledged to workload clients.
    pub acked: u64,
    /// Final counter sum read by the audit transaction.
    pub audit_total: u64,
    /// Unknown-outcome attempts reported by clients.
    pub unknowns: u64,
    /// Committed / aborted / unknown transactions in the trace history.
    pub committed: u64,
    /// Aborted transactions in the trace history.
    pub aborted: u64,
    /// Unknown-outcome transactions in the trace history.
    pub unknown: u64,
    /// Faults applied per class (class -> (attempted, ok)).
    pub fault_counts: BTreeMap<&'static str, (u64, u64)>,
    /// Promotions that failed and were retried by the finale.
    pub promote_failures: u64,
    /// Messages dropped / duplicated / delay-spiked by injection.
    pub net_dropped: u64,
    /// Messages duplicated by injection.
    pub net_duplicated: u64,
    /// Messages delay-spiked by injection.
    pub net_delay_spiked: u64,
    /// Requests refused by server admission gates (overload + deadline),
    /// summed over every replica.
    pub server_sheds: u64,
    /// Retry tokens spent by workload clients.
    pub client_retries: u64,
    /// Snapshot reads served by backup replicas (backup-reads mode).
    pub replica_reads: u64,
    /// Prepares refused as clock-suspect, summed over every replica.
    pub clock_suspects: u64,
    /// Clients currently fenced for clock misbehavior at run end (max
    /// over replicas — each primary tracks its own view).
    pub clock_fences: u64,
    /// Trace-ring evictions (non-zero = visibility checks were skipped).
    pub trace_dropped: u64,
    /// True when the audit conserved every acknowledged increment.
    pub conservation_ok: bool,
    /// Checker violations.
    pub violations: Vec<ViolationSummary>,
}

impl SeedOutcome {
    /// True when the seed finished with no violations and conservation
    /// intact.
    pub fn clean(&self) -> bool {
        self.conservation_ok && self.violations.is_empty()
    }
}

/// A whole campaign's outcomes.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl CampaignReport {
    /// Total violations across seeds.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Seeds that were not clean.
    pub fn offending_seeds(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| !o.clean())
            .map(|o| o.seed)
            .collect()
    }

    /// Deterministic JSON document (stable field order, no floats).
    pub fn to_json(&self) -> Json {
        let mut seeds = Vec::new();
        for o in &self.outcomes {
            let mut faults = Json::obj();
            for (class, &(attempted, ok)) in &o.fault_counts {
                faults = faults.field(
                    class,
                    Json::obj()
                        .field("attempted", Json::U64(attempted))
                        .field("ok", Json::U64(ok)),
                );
            }
            let violations: Vec<Json> = o
                .violations
                .iter()
                .map(|v| {
                    Json::obj()
                        .field("class", Json::str(v.class))
                        .field("description", Json::str(&v.description))
                })
                .collect();
            seeds.push(
                Json::obj()
                    .field("seed", Json::U64(o.seed))
                    .field("acked", Json::U64(o.acked))
                    .field("audit_total", Json::U64(o.audit_total))
                    .field("unknowns", Json::U64(o.unknowns))
                    .field("committed", Json::U64(o.committed))
                    .field("aborted", Json::U64(o.aborted))
                    .field("unknown", Json::U64(o.unknown))
                    .field("faults", faults)
                    .field("promote_failures", Json::U64(o.promote_failures))
                    .field("net_dropped", Json::U64(o.net_dropped))
                    .field("net_duplicated", Json::U64(o.net_duplicated))
                    .field("net_delay_spiked", Json::U64(o.net_delay_spiked))
                    .field("server_sheds", Json::U64(o.server_sheds))
                    .field("client_retries", Json::U64(o.client_retries))
                    .field("replica_reads", Json::U64(o.replica_reads))
                    .field("clock_suspects", Json::U64(o.clock_suspects))
                    .field("clock_fences", Json::U64(o.clock_fences))
                    .field("trace_dropped", Json::U64(o.trace_dropped))
                    .field("conservation_ok", Json::Bool(o.conservation_ok))
                    .field("violations", Json::arr(violations)),
            );
        }
        Json::obj()
            .field("seeds", Json::arr(seeds))
            .field("violations_total", Json::U64(self.violation_count() as u64))
    }
}

fn enc(n: u64) -> Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&v[..8]);
    u64::from_be_bytes(b)
}

/// Runs one seed to completion and returns its outcome.
pub fn run_seed(cfg: &CampaignConfig, seed: u64) -> SeedOutcome {
    run_seed_with_trace(cfg, seed).0
}

/// Like [`run_seed`], but also returns the seed's full trace as JSONL
/// (for `repro_chaos --trace`).
pub fn run_seed_with_trace(cfg: &CampaignConfig, seed: u64) -> (SeedOutcome, String) {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let capacity = if cfg.trace_capacity == 0 {
        cfg.faults.saturating_mul(8192).max(1 << 18)
    } else {
        cfg.trace_capacity
    };
    let obs = Obs::with_trace(capacity);
    let mut cluster_cfg = MilanaClusterConfig {
        shards: cfg.shards,
        replicas: cfg.replicas,
        clients: cfg.clients,
        nand: NandConfig {
            blocks: 512,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        clock: ClockSpec::ptp_software(),
        preload_keys: 0,
        ..MilanaClusterConfig::default()
    };
    cluster_cfg.tuning.obs = obs.clone();
    cluster_cfg.tuning.skip_validation.set(cfg.skip_validation);
    cluster_cfg.tuning.skip_durability.set(cfg.skip_durability);
    cluster_cfg.tuning.clock_health = cfg.clock_health.clone();
    cluster_cfg
        .tuning
        .skip_uncertainty
        .set(cfg.skip_uncertainty);
    cluster_cfg.tuning.admission.capacity = cfg.admission_capacity;
    cluster_cfg.client_cfg.obs = obs.clone();
    if cfg.backup_reads {
        cluster_cfg.client_cfg.read_route = readkit::ReadRoute::PowerOfTwo;
        // Fast floor propagation: idle-tick reports every 2ms (a client
        // dwelling in a scan still pushes its write floor forward) and
        // backup gossip so floors advance between replication flushes.
        cluster_cfg.client_cfg.watermark_interval = Duration::from_millis(2);
        cluster_cfg.tuning.gossip_every = Some(Duration::from_millis(5));
    }
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cluster_cfg)));

    // Seed the counters.
    let keys = cfg.keys;
    {
        let clients = cluster.borrow().clients.clone();
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.expect("seeding commit");
            hh.sleep(Duration::from_millis(5)).await;
        });
    }

    // Continuous contended workload: read-modify-write increments with an
    // occasional read-only sum, one transaction at a time per client.
    let acked = Rc::new(Cell::new(0u64));
    let stop = Rc::new(Cell::new(false));
    // Backup-reads mode: scans dwell like analytics readers, long enough
    // for the gossiped floor to pass their `ts_begin` — the window in
    // which backups may (and must, correctly) serve their reads.
    let scan_dwell = cfg.backup_reads.then(|| Duration::from_millis(5));
    for c in &cluster.borrow().clients {
        let c = c.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let hh = h.clone();
        h.spawn(async move {
            let mut rng = hh.fork_rng();
            while !stop.get() {
                let read_only = rng.gen::<f64>() < 0.2;
                let mut t = c.begin_with(TxnOpts::default());
                if read_only {
                    if let Some(dwell) = scan_dwell {
                        hh.sleep(dwell).await;
                    }
                    let mut ok = true;
                    for k in 0..keys {
                        if t.get(&Key::from(k)).await.is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let _ = t.commit().await;
                    } else {
                        hh.sleep(Duration::from_millis(2)).await;
                    }
                    continue;
                }
                let k = Key::from(rng.gen_range(0..keys));
                let n = match t.get(&k).await {
                    Ok(v) if v.len() >= 8 => dec(&v),
                    _ => {
                        // Primary mid-failover; back off briefly.
                        hh.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(n + 1));
                if t.commit().await.is_ok() {
                    acked.set(acked.get() + 1);
                }
            }
        });
    }

    // The nemesis walks the plan, then force-heals.
    let shape = PlanShape {
        shards: cfg.shards,
        replicas: cfg.replicas,
        clients: cfg.clients,
    };
    let plan = if cfg.overload_only {
        FaultPlan::random_overload(seed, cfg.faults, shape)
    } else if cfg.clockfault {
        FaultPlan::random_clockfault(seed, cfg.faults, shape)
    } else if cfg.powerfail {
        FaultPlan::random_powerfail(seed, cfg.faults, shape)
    } else {
        FaultPlan::random(seed, cfg.faults, shape)
    };
    let report = {
        let hh = h.clone();
        let cluster = cluster.clone();
        let plan = plan.clone();
        sim.block_on(async move { run_nemesis(&hh, &cluster, &plan).await })
    };

    // Settle, stop the workload, drain in-flight transactions.
    {
        let hh = h.clone();
        let stop = stop.clone();
        sim.block_on(async move {
            hh.sleep(Duration::from_millis(80)).await;
            stop.set(true);
            hh.sleep(Duration::from_millis(60)).await;
        });
    }

    // Audit: one transaction reading every counter, retried until it
    // commits (the finale guarantees a serving primary per shard).
    let clients = cluster.borrow().clients.clone();
    let hh = h.clone();
    let audit_total = sim.block_on(async move {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 500 {
                return None;
            }
            let mut t = clients[0].begin_with(TxnOpts::default());
            let mut sum = 0u64;
            let mut bad = false;
            for k in 0..keys {
                match t.get(&Key::from(k)).await {
                    Ok(v) if v.len() >= 8 => sum += dec(&v),
                    _ => {
                        bad = true;
                        break;
                    }
                }
            }
            if bad {
                hh.sleep(Duration::from_millis(2)).await;
                continue;
            }
            match t.commit().await {
                Ok(_) => return Some(sum),
                // A `PreparedRead` abort only clears once CTP resolves the
                // stuck prepare (up to `ctp_after` + a scan period away), so
                // back off instead of burning attempts in a tight loop.
                Err(_) => {
                    hh.sleep(Duration::from_millis(2)).await;
                    continue;
                }
            }
        }
    });

    let cluster = cluster.borrow();
    let unknowns: u64 = cluster.clients.iter().map(|c| c.stats().unknown).sum();
    let acked = acked.get();
    // Conservation: every acknowledged increment survived, and nothing
    // appeared out of thin air (unknown-outcome attempts may legitimately
    // commit via CTP; in-flight transactions at stop add at most one per
    // client). With validation or durability disabled the workload
    // genuinely loses updates, so conservation is only meaningful in
    // correct mode (the seeded bugs are the *checker's* to catch).
    let conservation_ok = match audit_total {
        None => false,
        Some(total) => {
            cfg.skip_validation
                || cfg.skip_durability
                || (total >= acked && total <= acked + unknowns + cluster.clients.len() as u64)
        }
    };

    let mut fault_counts: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for f in &report.applied {
        let e = fault_counts.entry(f.class).or_insert((0, 0));
        e.0 += 1;
        if f.ok {
            e.1 += 1;
        }
    }
    let net = h.net_stats();

    let mut server_sheds = 0;
    for slot in cluster.replicas.iter().flatten() {
        let node = slot.addr.node.0;
        server_sheds += obs
            .registry
            .counter(&format!("loadkit.node{node}.sheds_overload"))
            .get()
            + obs
                .registry
                .counter(&format!("loadkit.node{node}.sheds_deadline"))
                .get();
    }
    let mut client_retries = 0;
    for c in &cluster.clients {
        client_retries += obs
            .registry
            .counter(&format!("loadkit.client{}.retries", c.id().0))
            .get();
    }

    let history = History::from_events(obs.tracer.events(), obs.tracer.dropped());
    let mut checker = Checker::new(&history);
    if let Some(eps) = cfg.clock_epsilon_ns {
        checker = checker.with_epsilon(eps);
    }
    let violations = checker
        .check()
        .into_iter()
        .map(|v| ViolationSummary {
            class: v.class.as_str(),
            description: v.description,
            trace_slice: history.trace_slice(&v.txns),
        })
        .collect();

    let replica_reads: u64 = cluster
        .clients
        .iter()
        .map(|c| c.stats().replica_reads)
        .sum();
    let mut clock_suspects = 0u64;
    let mut clock_fences = 0u64;
    for slot in cluster.replicas.iter().flatten() {
        let s = slot.server.stats();
        clock_suspects += s.clock_suspects;
        clock_fences = clock_fences.max(s.clock_fences);
    }

    let outcome = SeedOutcome {
        seed,
        acked,
        audit_total: audit_total.unwrap_or(0),
        unknowns,
        committed: history.committed() as u64,
        aborted: history.aborted() as u64,
        unknown: history.unknown() as u64,
        fault_counts,
        promote_failures: report.promote_failures,
        net_dropped: net.dropped,
        net_duplicated: net.duplicated,
        net_delay_spiked: net.delay_spiked,
        server_sheds,
        client_retries,
        replica_reads,
        clock_suspects,
        clock_fences,
        trace_dropped: obs.tracer.dropped(),
        conservation_ok,
        violations,
    };
    (outcome, obs.tracer.dump_jsonl())
}

/// Runs every seed in `cfg` and collects the outcomes. Seeds run on the
/// `perfkit` worker pool (one sim per seed, each fully independent);
/// outcomes come back in seed order, so the report is identical to a
/// serial campaign's.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let outcomes = perfkit::pool::run_ordered_auto(cfg.seeds.clone(), |s| run_seed(cfg, s));
    CampaignReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            seeds: vec![7],
            faults: 8,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.violation_count(), 0, "{:?}", a.outcomes[0].violations);
        let o = &a.outcomes[0];
        assert!(o.conservation_ok, "audit failed: {o:?}");
        assert!(o.acked > 0, "workload made no progress");
        assert!(o.committed > 0, "trace recorded no commits");
    }

    #[test]
    fn backup_reads_campaign_is_clean_under_faults() {
        // Route snapshot reads across backups while crashing primaries,
        // partitioning nodes and stepping clocks: the `stale_backup_read`
        // invariant (and every other check) must stay clean.
        let cfg = CampaignConfig {
            seeds: vec![11],
            faults: 8,
            backup_reads: true,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.violation_count(), 0, "{:?}", a.outcomes[0].violations);
        let o = &a.outcomes[0];
        assert!(o.conservation_ok, "audit failed: {o:?}");
        assert!(o.acked > 0, "workload made no progress");
        assert!(
            o.replica_reads > 0,
            "backup-reads campaign never exercised a replica read: {o:?}"
        );
    }

    #[test]
    fn powerfail_campaign_is_clean_and_deterministic() {
        // Interleave power failures (cold restarts: flash mount scan +
        // anti-entropy catch-up) with warm crashes and partitions while
        // backups serve snapshot reads: every durability invariant
        // (`lost_acked_write`, `stale_backup_read`, conservation) must
        // hold, and the run must be byte-stable.
        let cfg = CampaignConfig {
            seeds: vec![5],
            faults: 8,
            // Wide enough that not every key is rewritten within a
            // recovery window: a skipped catch-up would leave observable
            // holes (see `durability_skip_is_caught_by_the_checker`, the
            // seeded-fraud twin of this test).
            keys: 16,
            backup_reads: true,
            powerfail: true,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.violation_count(), 0, "{:?}", a.outcomes[0].violations);
        let o = &a.outcomes[0];
        assert!(o.conservation_ok, "audit failed: {o:?}");
        assert!(o.acked > 0, "workload made no progress");
        assert!(
            o.fault_counts.contains_key("power_fail"),
            "plan never power-failed a primary: {:?}",
            o.fault_counts
        );
    }

    #[test]
    fn durability_skip_is_caught_by_the_checker() {
        // Seeded durability fraud: cold-restarting replicas adopt the
        // mounted floor as their applied watermark, splice blindly into
        // the live floor stream, and serve immediately without
        // anti-entropy catch-up. Acked writes still in volatile flash
        // queues at the power failure (and everything committed during
        // the outage that retries don't redeliver) vanish from the
        // replica, and the checker must flag the loss. Same seed, shape,
        // and keyspace as `powerfail_campaign_is_clean_and_deterministic`
        // — the only difference is the skipped recovery protocol.
        let cfg = CampaignConfig {
            seeds: vec![5],
            faults: 8,
            keys: 16,
            backup_reads: true,
            powerfail: true,
            skip_durability: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        let o = &report.outcomes[0];
        assert!(
            o.violations.iter().any(|v| v.class == "lost_acked_write"),
            "checker missed the seeded durability bug: {:?}",
            o.violations
        );
        // The offending slice names the involved transactions.
        let v = o
            .violations
            .iter()
            .find(|v| v.class == "lost_acked_write")
            .expect("lost_acked_write violation");
        assert!(!v.trace_slice.is_empty());
    }

    /// Shared shape for the clock-fault twins: tight uncertainty window
    /// (1 ms ceiling) so the ±multi-ms steps and jumps the plan injects
    /// are decidedly out of bounds, with the checker holding the cluster
    /// to exactly the ε the fence promises.
    fn clockfault_cfg() -> CampaignConfig {
        let health = clockkit::ClockHealthConfig {
            max_future_ns: 1_000_000,
            ..clockkit::ClockHealthConfig::default()
        };
        let eps = health.promised_epsilon_ns();
        CampaignConfig {
            seeds: vec![17],
            faults: 10,
            clockfault: true,
            clock_health: Some(health),
            clock_epsilon_ns: Some(eps),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn clockfault_campaign_is_clean_and_deterministic() {
        // Steps, drifts, and holdover jumps against client clocks with the
        // clock-health fence on: suspect prepares are refused (definite
        // no-votes), so no mis-timestamped commit exists and the history
        // honors the promised ε. Byte-stable across runs.
        let cfg = clockfault_cfg();
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.violation_count(), 0, "{:?}", a.outcomes[0].violations);
        let o = &a.outcomes[0];
        assert!(o.conservation_ok, "audit failed: {o:?}");
        assert!(o.acked > 0, "workload made no progress");
        assert!(
            o.clock_suspects > 0,
            "plan never tripped the clock-health fence: {o:?}"
        );
    }

    #[test]
    fn uncertainty_skip_is_caught_by_the_checker() {
        // Seeded clock fraud: the same plan, health tracking, and promise,
        // but primaries ignore the verdict — prepares carrying bogus
        // timestamps sail through validation. A commit minted multi-ms off
        // true time inverts against real-time order by more than 2ε, and
        // the checker must flag the breach.
        let cfg = CampaignConfig {
            skip_uncertainty: true,
            ..clockfault_cfg()
        };
        let report = run_campaign(&cfg);
        let o = &report.outcomes[0];
        assert!(
            o.violations.iter().any(|v| v.class == "clock_bound_breach"),
            "checker missed the seeded clock bug: {:?}",
            o.violations
        );
        let v = o
            .violations
            .iter()
            .find(|v| v.class == "clock_bound_breach")
            .expect("clock_bound_breach violation");
        assert!(!v.trace_slice.is_empty());
    }

    #[test]
    fn seeded_validation_bug_is_caught_by_the_checker() {
        // Disable Algorithm-1 validation on every primary and hammer one
        // key: lost updates become inevitable, and the checker must flag
        // a serializability cycle.
        let cfg = CampaignConfig {
            seeds: vec![3],
            faults: 0,
            clients: 4,
            keys: 1,
            skip_validation: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        let o = &report.outcomes[0];
        assert!(
            o.violations
                .iter()
                .any(|v| v.class == "serializability_cycle"),
            "checker missed the seeded bug: {:?}",
            o.violations
        );
        // The offending slice names the transactions involved.
        let v = o
            .violations
            .iter()
            .find(|v| v.class == "serializability_cycle")
            .expect("cycle violation");
        assert!(!v.trace_slice.is_empty());
    }
}
