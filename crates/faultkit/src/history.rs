//! Committed-history reconstruction and invariant checking.
//!
//! [`History::from_events`] rebuilds per-transaction views from an
//! [`obskit::Tracer`] event stream: each client runs one transaction at a
//! time, so its `TxnBegin` / `TxnRead` / `TxnWrite` / `Commit` / `Abort`
//! events partition cleanly into transactions. [`Checker`] then verifies:
//!
//! - **Serializability**: the conflict graph over committed transactions
//!   (WW edges between writers of a key in commit-timestamp order, WR
//!   edges from a version's writer to its readers, RW anti-dependency
//!   edges from a reader to the version's next overwriter) is acyclic.
//! - **Snapshot reads**: every read observed a version with
//!   `ver_ts <= ts_begin` (no reads from the future), and never an *older*
//!   version of a key whose newer write was already acknowledged to its
//!   writer before the reader began — the no-lost-ack replication
//!   invariant, violated exactly when a failover drops an acked commit.
//! - **Phantoms**: every observed version was produced by some traced
//!   transaction (committed, or unknown-outcome and later decided commit
//!   by cooperative termination).
//!
//! Unknown-outcome transactions (`Abort` with class `unknown_outcome`)
//! declared their write sets via `TxnWrite` before the prepare fan-out; if
//! any of their versions is observed by a later read, the transaction is
//! treated as CTP-committed and joins the conflict graph. When the trace
//! ring dropped events, every check that reasons about version provenance
//! is skipped — phantoms, missed writes, *and* cycle detection: on a
//! truncated history a read of a pre-truncation version has no traced
//! writer, so it would be mis-attributed to a much later unknown-outcome
//! transaction of the same client, fabricating backward conflict edges
//! (and with them arbitrarily long false cycles). Only the per-reader
//! snapshot bound (`ver_ts <= ts_begin`) survives truncation, because it
//! uses nothing but the reader's own events. Campaigns therefore size the
//! trace ring to the fault schedule so real runs never drop.

use std::collections::hash_map::Entry;
use std::collections::BTreeMap;

use perfkit::FastMap;

use obskit::{AbortClass, RecoveryPhase, TraceEvent};

/// The preload version stamp installed by cluster bulk-loading.
const PRELOAD_TS: u64 = 1;
const PRELOAD_CLIENT: u64 = u32::MAX as u64;

/// One observed read: which version of which key a transaction saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadObs {
    /// Trace time the read was observed (ns).
    pub at: u64,
    /// Key id (`Key::trace_id`).
    pub key: u64,
    /// Commit timestamp of the observed version.
    pub ver_ts: u64,
    /// Writer client of the observed version.
    pub ver_client: u64,
}

/// How a transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Committed at `ts_commit` (acknowledged to the client at `at` ns).
    Committed {
        /// Commit timestamp (serialization point for read-write txns).
        ts_commit: u64,
        /// True for client-local read-only commits.
        local: bool,
        /// Virtual time of the commit acknowledgement.
        at: u64,
    },
    /// Aborted (any class except `unknown_outcome`).
    Aborted,
    /// The coordinator timed out mid-2PC; cooperative termination decides
    /// later. Writes may or may not be installed.
    Unknown,
}

/// One reconstructed transaction.
#[derive(Debug, Clone)]
pub struct TxnView {
    /// Coordinating client.
    pub client: u64,
    /// Begin timestamp (serialization point for read-only commits).
    pub ts_begin: u64,
    /// Virtual time of `TxnBegin`.
    pub begin_at: u64,
    /// Virtual time of the last event attributed to this transaction.
    pub end_at: u64,
    /// Reads in order.
    pub reads: Vec<ReadObs>,
    /// Keys written (declared before the prepare fan-out).
    pub writes: Vec<u64>,
    /// Final outcome.
    pub outcome: Outcome,
}

/// One shard-ownership claim or release, as traced by the servers during
/// a live migration (`ShardOwned` / `ShardReleased` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnershipEvent {
    /// Trace time (ns).
    pub at: u64,
    /// The shard the claim is about.
    pub shard: u64,
    /// Map epoch carried by the claim.
    pub epoch: u64,
    /// Claiming / releasing node id.
    pub owner: u64,
    /// `true` for a claim, `false` for a release.
    pub owned: bool,
}

/// One snapshot read a backup replica served, as traced by the server
/// (`ReadServed` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadServedObs {
    /// Trace time (ns).
    pub at: u64,
    /// Serving replica's node id.
    pub replica: u64,
    /// The replica's applied watermark when it answered.
    pub watermark: u64,
    /// The snapshot timestamp it answered for.
    pub ts_begin: u64,
}

/// One recovery-lifecycle step a replica traced around a power failure
/// and cold restart (`RecoveryStep` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryObs {
    /// Trace time (ns).
    pub at: u64,
    /// Recovering replica's node id.
    pub node: u64,
    /// Shard the replica belongs to.
    pub shard: u64,
    /// The recovery phase entered.
    pub phase: RecoveryPhase,
    /// Phase-specific detail (torn pages, keys fetched, floor ns).
    pub detail: u64,
}

/// The reconstructed history plus the raw events it came from.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Transactions in trace order.
    pub txns: Vec<TxnView>,
    /// Shard-ownership claims in trace order (migrations only; empty for
    /// histories without resharding).
    pub ownership: Vec<OwnershipEvent>,
    /// Backup-served snapshot reads in trace order (read routing only;
    /// empty when every read went to a primary).
    pub reads_served: Vec<ReadServedObs>,
    /// Recovery steps in trace order (power-fail campaigns only; empty
    /// when no replica ever cold-restarted).
    pub recovery: Vec<RecoveryObs>,
    /// Ring evictions reported by the tracer; non-zero means the history
    /// is a suffix and visibility checks are skipped.
    pub dropped: u64,
    events: Vec<(u64, TraceEvent)>,
}

impl History {
    /// Rebuilds transactions from a tracer event dump (see
    /// [`obskit::Tracer::events`]) and its drop count.
    pub fn from_events(events: Vec<(u64, TraceEvent)>, dropped: u64) -> History {
        // Per-client open transaction; clients run one txn at a time.
        let mut open: FastMap<u64, TxnView> = FastMap::default();
        let mut txns = Vec::new();
        let mut ownership = Vec::new();
        let mut reads_served = Vec::new();
        let mut recovery = Vec::new();
        let close = |open: &mut FastMap<u64, TxnView>,
                     txns: &mut Vec<TxnView>,
                     client: u64,
                     outcome: Outcome,
                     at: u64| {
            if let Some(mut t) = open.remove(&client) {
                t.outcome = outcome;
                t.end_at = at;
                txns.push(t);
            }
        };
        for &(at, ref ev) in &events {
            match *ev {
                TraceEvent::TxnBegin { client, ts_begin } => {
                    // A begin with a still-open txn means the previous one
                    // never finished (interrupted mid-flight). If it had
                    // declared writes it reached 2PC: outcome unknown.
                    if let Some(prev) = open.remove(&client) {
                        if !prev.writes.is_empty() {
                            let mut prev = prev;
                            prev.outcome = Outcome::Unknown;
                            txns.push(prev);
                        }
                    }
                    open.insert(
                        client,
                        TxnView {
                            client,
                            ts_begin,
                            begin_at: at,
                            end_at: at,
                            reads: Vec::new(),
                            writes: Vec::new(),
                            outcome: Outcome::Aborted,
                        },
                    );
                }
                TraceEvent::TxnRead {
                    client,
                    key,
                    ver_ts,
                    ver_client,
                    ..
                } => {
                    if let Some(t) = open.get_mut(&client) {
                        t.end_at = at;
                        t.reads.push(ReadObs {
                            at,
                            key,
                            ver_ts,
                            ver_client,
                        });
                    }
                }
                TraceEvent::TxnWrite { client, key } => {
                    if let Some(t) = open.get_mut(&client) {
                        t.end_at = at;
                        t.writes.push(key);
                    }
                }
                TraceEvent::Commit {
                    client,
                    ts_commit,
                    local,
                } => close(
                    &mut open,
                    &mut txns,
                    client,
                    Outcome::Committed {
                        ts_commit,
                        local,
                        at,
                    },
                    at,
                ),
                TraceEvent::Abort { client, reason } => {
                    let outcome = if reason == AbortClass::UnknownOutcome {
                        Outcome::Unknown
                    } else {
                        Outcome::Aborted
                    };
                    close(&mut open, &mut txns, client, outcome, at);
                }
                TraceEvent::ShardOwned {
                    shard,
                    epoch,
                    owner,
                } => ownership.push(OwnershipEvent {
                    at,
                    shard,
                    epoch,
                    owner,
                    owned: true,
                }),
                TraceEvent::ShardReleased {
                    shard,
                    epoch,
                    owner,
                } => ownership.push(OwnershipEvent {
                    at,
                    shard,
                    epoch,
                    owner,
                    owned: false,
                }),
                TraceEvent::ReadServed {
                    replica,
                    watermark,
                    ts_begin,
                } => reads_served.push(ReadServedObs {
                    at,
                    replica,
                    watermark,
                    ts_begin,
                }),
                TraceEvent::RecoveryStep {
                    node,
                    shard,
                    phase,
                    detail,
                } => recovery.push(RecoveryObs {
                    at,
                    node,
                    shard,
                    phase,
                    detail,
                }),
                _ => {}
            }
        }
        // Transactions still open at the end of the trace: only those that
        // reached the prepare fan-out matter (their writes may land).
        for (_, mut t) in open.drain() {
            if !t.writes.is_empty() {
                t.outcome = Outcome::Unknown;
                txns.push(t);
            }
        }
        txns.sort_by_key(|t| (t.begin_at, t.client));
        History {
            txns,
            ownership,
            reads_served,
            recovery,
            dropped,
            events,
        }
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> usize {
        self.txns
            .iter()
            .filter(|t| matches!(t.outcome, Outcome::Committed { .. }))
            .count()
    }

    /// Number of aborted transactions.
    pub fn aborted(&self) -> usize {
        self.txns
            .iter()
            .filter(|t| t.outcome == Outcome::Aborted)
            .count()
    }

    /// Number of unknown-outcome transactions.
    pub fn unknown(&self) -> usize {
        self.txns
            .iter()
            .filter(|t| t.outcome == Outcome::Unknown)
            .count()
    }

    /// The minimal trace slice for a violation: every event attributable
    /// to the involved transactions' clients within their combined time
    /// window, as JSON lines. This is what a campaign prints next to the
    /// offending seed.
    pub fn trace_slice(&self, txn_indices: &[usize]) -> String {
        let mut clients: Vec<u64> = Vec::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &i in txn_indices {
            let t = &self.txns[i];
            clients.push(t.client);
            lo = lo.min(t.begin_at);
            hi = hi.max(t.end_at);
        }
        let mut out = String::new();
        for &(at, ref ev) in &self.events {
            if at < lo || at > hi {
                continue;
            }
            let client = match *ev {
                TraceEvent::TxnBegin { client, .. }
                | TraceEvent::TxnRead { client, .. }
                | TraceEvent::TxnWrite { client, .. }
                | TraceEvent::ValidateLocal { client, .. }
                | TraceEvent::ValidateRemote { client, .. }
                | TraceEvent::Commit { client, .. }
                | TraceEvent::Abort { client, .. } => Some(client),
                _ => None,
            };
            if client.is_some_and(|c| clients.contains(&c)) {
                ev.to_json(at).write(&mut out);
                out.push('\n');
            }
        }
        out
    }
}

/// What kind of invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationClass {
    /// The conflict graph has a cycle: the committed history admits no
    /// serial order.
    Serializability,
    /// A read observed a version with `ver_ts > ts_begin`.
    FutureRead,
    /// A read missed a newer committed version that was acknowledged to
    /// its writer before the reader began — an acked commit was lost.
    ReplicationLostAck,
    /// A read observed a version no traced transaction produced.
    PhantomVersion,
    /// Two nodes claimed ownership of the same shard at overlapping times
    /// — the epoch fence failed during a live migration.
    DualOwnership,
    /// A backup replica served a snapshot read at a timestamp its applied
    /// watermark did not cover — it should have answered `TooStale`.
    StaleBackupRead,
    /// A read missed an acknowledged commit *after* some replica finished
    /// a cold restart — the durability invariant: every commit acked
    /// under f-coverage must survive every subsequent power failure and
    /// cold restart of up to f replicas. The lost-ack shape is identical
    /// to [`ViolationClass::ReplicationLostAck`]; the cold restart
    /// preceding the reader pins the blame on the recovery path (a mount
    /// scan that resurrected stale state, or a catch-up that was skipped).
    LostAckedWrite,
    /// Two remotely-committed transactions have commit timestamps out of
    /// order with real time by more than the server's promised clock
    /// uncertainty: T2 began after T1's commit was acknowledged, yet
    /// `ts_commit(T1) > ts_commit(T2) + 2ε`. The clock-health fence
    /// promises that no prepare more than ε ahead of server arrival time
    /// commits, so a larger inversion means a mis-timestamped transaction
    /// slipped past validation.
    ClockBoundBreach,
}

impl ViolationClass {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationClass::Serializability => "serializability_cycle",
            ViolationClass::FutureRead => "future_read",
            ViolationClass::ReplicationLostAck => "replication_lost_ack",
            ViolationClass::PhantomVersion => "phantom_version",
            ViolationClass::DualOwnership => "dual_ownership",
            ViolationClass::StaleBackupRead => "stale_backup_read",
            ViolationClass::LostAckedWrite => "lost_acked_write",
            ViolationClass::ClockBoundBreach => "clock_bound_breach",
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violation class.
    pub class: ViolationClass,
    /// Human-readable account of what went wrong.
    pub description: String,
    /// Indices into [`History::txns`] of the transactions involved.
    pub txns: Vec<usize>,
}

/// Identity of a committed write: `(ts_commit, writer client)` uniquely
/// names a version in MILANA.
type VersionId = (u64, u64);

/// Checks a [`History`] for serializability and replication invariants.
#[derive(Debug)]
pub struct Checker<'a> {
    history: &'a History,
    epsilon_ns: Option<u64>,
}

impl<'a> Checker<'a> {
    /// A checker over `history`.
    pub fn new(history: &'a History) -> Checker<'a> {
        Checker {
            history,
            epsilon_ns: None,
        }
    }

    /// Enables the clock-bound check: the cluster promised that no commit
    /// timestamp runs more than `epsilon_ns` ahead of server time (see
    /// `clockkit::ClockHealthConfig::promised_epsilon_ns`). Two
    /// real-time-ordered commits may then disagree with timestamp order by
    /// at most 2ε; anything larger is a [`ViolationClass::ClockBoundBreach`].
    pub fn with_epsilon(mut self, epsilon_ns: u64) -> Checker<'a> {
        self.epsilon_ns = Some(epsilon_ns);
        self
    }

    /// Runs every check and returns the violations found (empty = clean).
    pub fn check(&self) -> Vec<Violation> {
        let h = self.history;
        let mut violations = Vec::new();

        // -- Resolve the committed set ---------------------------------
        // Committed txns keep their traced ts_commit. Unknown-outcome
        // txns whose version some read observed were CTP-committed: adopt
        // the observed timestamp.
        let mut ts_of: FastMap<usize, u64> = FastMap::default();
        let mut by_version: FastMap<VersionId, usize> = FastMap::default();
        for (i, t) in h.txns.iter().enumerate() {
            if let Outcome::Committed { ts_commit, .. } = t.outcome {
                ts_of.insert(i, ts_commit);
                if !t.writes.is_empty() {
                    by_version.insert((ts_commit, t.client), i);
                }
            }
        }
        // Promotion is only sound on a complete trace: with events dropped,
        // a read of a pre-truncation version also has no traced writer and
        // would be pinned on an unrelated unknown txn.
        if h.dropped == 0 {
            // Observed versions no committed txn produced.
            let mut orphans: Vec<(u64, VersionId)> = Vec::new();
            for t in &h.txns {
                for r in &t.reads {
                    let vid = (r.ver_ts, r.ver_client);
                    if !by_version.contains_key(&vid)
                        && vid != (PRELOAD_TS, PRELOAD_CLIENT)
                        && !orphans.contains(&(r.key, vid))
                    {
                        orphans.push((r.key, vid));
                    }
                }
            }
            // Each orphan was CTP-committed by some unknown-outcome txn of
            // its writer client. Client clocks are strictly monotonic and a
            // commit timestamp is minted after the begin timestamp of the
            // same txn but before the begin of the client's next one, so
            // the producer is the client's unknown txn (writing that key)
            // with the largest `ts_begin <= ver_ts`.
            for (key, (ver_ts, ver_client)) in orphans {
                let producer = h
                    .txns
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| {
                        t.outcome == Outcome::Unknown
                            && t.client == ver_client
                            && t.writes.contains(&key)
                            && t.ts_begin <= ver_ts
                    })
                    .max_by_key(|(_, t)| t.ts_begin);
                if let Some((i, _)) = producer {
                    if let Entry::Vacant(slot) = ts_of.entry(i) {
                        slot.insert(ver_ts);
                        by_version.insert((ver_ts, ver_client), i);
                    }
                }
            }
        }

        // -- Phantom versions ------------------------------------------
        if h.dropped == 0 {
            for (ri, reader) in h.txns.iter().enumerate() {
                if !matches!(reader.outcome, Outcome::Committed { .. }) {
                    continue;
                }
                for r in &reader.reads {
                    if r.ver_ts == PRELOAD_TS && r.ver_client == PRELOAD_CLIENT {
                        continue;
                    }
                    if !by_version.contains_key(&(r.ver_ts, r.ver_client)) {
                        violations.push(Violation {
                            class: ViolationClass::PhantomVersion,
                            description: format!(
                                "txn #{ri} (client {}) read key {} at version \
                                 (ts {}, client {}) which no traced transaction wrote",
                                reader.client, r.key, r.ver_ts, r.ver_client
                            ),
                            txns: vec![ri],
                        });
                    }
                }
            }
        }

        // -- Per-key writer timelines ----------------------------------
        // writers[key] = [(ts_commit, writer client, txn idx)] sorted.
        let mut writers: BTreeMap<u64, Vec<(u64, u64, usize)>> = BTreeMap::new();
        for (&i, &ts) in &ts_of {
            for &k in &h.txns[i].writes {
                writers
                    .entry(k)
                    .or_default()
                    .push((ts, h.txns[i].client, i));
            }
        }
        for list in writers.values_mut() {
            list.sort_unstable();
        }

        // -- Snapshot-read checks --------------------------------------
        for (ri, reader) in h.txns.iter().enumerate() {
            if !matches!(reader.outcome, Outcome::Committed { .. }) {
                continue;
            }
            for r in &reader.reads {
                if r.ver_ts > reader.ts_begin {
                    violations.push(Violation {
                        class: ViolationClass::FutureRead,
                        description: format!(
                            "txn #{ri} (client {}) began at ts {} but read key {} \
                             at future version ts {}",
                            reader.client, reader.ts_begin, r.key, r.ver_ts
                        ),
                        txns: vec![ri],
                    });
                    continue;
                }
                if h.dropped > 0 {
                    continue;
                }
                // The newest committed version at ts_begin that was already
                // acknowledged before this reader began. Anything the
                // reader observes older than that is a lost acked write.
                let Some(list) = writers.get(&r.key) else {
                    continue;
                };
                let newest_acked = list
                    .iter()
                    .take_while(|&&(ts, _, _)| ts <= reader.ts_begin)
                    .filter(|&&(_, _, wi)| match h.txns[wi].outcome {
                        Outcome::Committed { at, .. } => at < reader.begin_at,
                        // CTP-committed writes were never acked to their
                        // client; the reader owes them nothing.
                        _ => false,
                    })
                    .last();
                if let Some(&(wts, wclient, wi)) = newest_acked {
                    if wts > r.ver_ts {
                        // A cold restart that finished (Serving) before the
                        // read was observed pins the lost ack on the
                        // recovery path: the acked write did not survive
                        // the power failure. Without one, it is a plain
                        // replication lost-ack (e.g. a failover dropped
                        // the commit).
                        let cold_restarted = h
                            .recovery
                            .iter()
                            .any(|rs| rs.phase == RecoveryPhase::Serving && rs.at <= r.at);
                        let class = if cold_restarted {
                            ViolationClass::LostAckedWrite
                        } else {
                            ViolationClass::ReplicationLostAck
                        };
                        violations.push(Violation {
                            class,
                            description: format!(
                                "txn #{ri} (client {}) read key {} at version ts {} \
                                 although txn #{wi} (client {wclient}) had its write \
                                 at ts {wts} acknowledged before the reader began{}",
                                reader.client,
                                r.key,
                                r.ver_ts,
                                if cold_restarted {
                                    " (a cold restart served before the read: the \
                                     acked write did not survive the power failure)"
                                } else {
                                    ""
                                }
                            ),
                            txns: vec![ri, wi],
                        });
                    }
                }
            }
        }

        // -- Clock-bound: commit order vs real time --------------------
        // With a promised uncertainty ε, a transaction T2 that began after
        // T1's commit was acknowledged may carry a smaller commit timestamp
        // only within 2ε (each clock at most ε from server time, promised
        // by the clock-health fence). Uses only each transaction's own
        // begin/ack instants, so it survives truncation. Client-local
        // read-only commits never cross the fence and are excluded.
        if let Some(eps) = self.epsilon_ns {
            // Remotely-committed txns by ack time, and all committed
            // non-local txns by begin time; one merged sweep tracks the
            // largest already-acked commit timestamp.
            let mut acked: Vec<(u64, u64, usize)> = h
                .txns
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.outcome {
                    Outcome::Committed {
                        ts_commit,
                        local: false,
                        at,
                    } => Some((at, ts_commit, i)),
                    _ => None,
                })
                .collect();
            acked.sort_unstable();
            let mut next = 0usize;
            let mut max_acked: Option<(u64, usize)> = None;
            // h.txns is sorted by begin_at already.
            for (ri, t) in h.txns.iter().enumerate() {
                let Outcome::Committed {
                    ts_commit,
                    local: false,
                    ..
                } = t.outcome
                else {
                    continue;
                };
                while next < acked.len() && acked[next].0 < t.begin_at {
                    let (_, ts, wi) = acked[next];
                    if max_acked.is_none_or(|(m, _)| ts > m) {
                        max_acked = Some((ts, wi));
                    }
                    next += 1;
                }
                if let Some((prev_ts, wi)) = max_acked {
                    if wi != ri && prev_ts > ts_commit.saturating_add(2 * eps) {
                        violations.push(Violation {
                            class: ViolationClass::ClockBoundBreach,
                            description: format!(
                                "txn #{ri} (client {}) began after txn #{wi} \
                                 (client {}) was acknowledged, yet committed at \
                                 ts {} — more than 2ε={} behind txn #{wi}'s ts {}",
                                t.client,
                                h.txns[wi].client,
                                ts_commit,
                                2 * eps,
                                prev_ts
                            ),
                            txns: vec![ri, wi],
                        });
                    }
                }
            }
        }

        // -- Watermark-covered backup reads ----------------------------
        // A backup may serve a snapshot read only when its applied
        // watermark covers the snapshot. Each ReadServed event carries
        // both numbers, so the check is self-contained per event and —
        // like the per-reader snapshot bound — survives truncation.
        for (i, rs) in h.reads_served.iter().enumerate() {
            if rs.watermark < rs.ts_begin {
                violations.push(Violation {
                    class: ViolationClass::StaleBackupRead,
                    description: format!(
                        "replica {} served a snapshot read at ts {} with applied \
                         watermark {} (event #{i}) — should have answered TooStale",
                        rs.replica, rs.ts_begin, rs.watermark
                    ),
                    txns: Vec::new(),
                });
            }
        }

        // -- Single owner per shard ------------------------------------
        // Migration servers assert ShardOwned / ShardReleased around the
        // fence and cutover. Per shard, replaying claims in time order
        // must never find a second node claiming while another still
        // holds: that would mean the epoch fence let two primaries accept
        // prepares for the same keys. Unsound on a truncated history (a
        // dropped release fabricates overlap), so gated like provenance.
        if h.dropped == 0 {
            let mut by_shard: BTreeMap<u64, Vec<&OwnershipEvent>> = BTreeMap::new();
            for ev in &h.ownership {
                by_shard.entry(ev.shard).or_default().push(ev);
            }
            for (shard, mut evs) in by_shard {
                // A release at the same instant as a claim is ordered
                // first: cutover hands off release-then-own.
                evs.sort_by_key(|e| (e.at, e.owned));
                let mut holder: Option<(u64, u64)> = None;
                for ev in evs {
                    if ev.owned {
                        if let Some((owner, epoch)) = holder {
                            if owner != ev.owner {
                                violations.push(Violation {
                                    class: ViolationClass::DualOwnership,
                                    description: format!(
                                        "shard {shard}: node {} claimed ownership at epoch {} \
                                         while node {owner} still held it from epoch {epoch}",
                                        ev.owner, ev.epoch
                                    ),
                                    txns: Vec::new(),
                                });
                            }
                        }
                        holder = Some((ev.owner, ev.epoch));
                    } else if holder.map(|(o, _)| o) == Some(ev.owner) {
                        holder = None;
                    }
                }
            }
        }

        // -- Conflict-graph cycle detection ----------------------------
        // Nodes: committed (incl. CTP-committed) txns. Edges:
        //   WW: consecutive writers of a key in version order.
        //   WR: version writer -> its readers.
        //   RW: reader -> the version's next overwriter.
        // Unsound on a truncated history (see module docs): bail out and
        // let the campaign surface the drop count instead.
        if h.dropped > 0 {
            return violations;
        }
        let mut edges: FastMap<usize, Vec<usize>> = FastMap::default();
        let mut add_edge = |from: usize, to: usize| {
            if from != to {
                let list = edges.entry(from).or_default();
                if !list.contains(&to) {
                    list.push(to);
                }
            }
        };
        for list in writers.values() {
            for pair in list.windows(2) {
                add_edge(pair[0].2, pair[1].2);
            }
        }
        for (ri, reader) in h.txns.iter().enumerate() {
            if !ts_of.contains_key(&ri) {
                continue;
            }
            for r in &reader.reads {
                let vid: VersionId = (r.ver_ts, r.ver_client);
                if let Some(&wi) = by_version.get(&vid) {
                    add_edge(wi, ri);
                }
                if let Some(list) = writers.get(&r.key) {
                    if let Some(&(_, _, ni)) = list
                        .iter()
                        .find(|&&(ts, c, _)| (ts, c) > (r.ver_ts, r.ver_client))
                    {
                        add_edge(ri, ni);
                    }
                }
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            let path = cycle
                .iter()
                .map(|&i| format!("#{i}(client {})", h.txns[i].client))
                .collect::<Vec<_>>()
                .join(" -> ");
            violations.push(Violation {
                class: ViolationClass::Serializability,
                description: format!("conflict cycle: {path}"),
                txns: cycle,
            });
        }

        violations
    }
}

/// Iterative DFS over `edges`; returns the first cycle found (as the list
/// of nodes on it), or `None` when the graph is acyclic.
fn find_cycle(edges: &FastMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: FastMap<usize, Color> = FastMap::default();
    let mut roots: Vec<usize> = edges.keys().copied().collect();
    roots.sort_unstable();
    for &root in &roots {
        if *color.get(&root).unwrap_or(&Color::White) != Color::White {
            continue;
        }
        // Stack of (node, next-edge-index); path = gray nodes on stack.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color.insert(root, Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = edges.get(&node).map(|l| l.as_slice()).unwrap_or(&[]);
            if *next < succ.len() {
                let target = succ[*next];
                *next += 1;
                match *color.get(&target).unwrap_or(&Color::White) {
                    Color::White => {
                        color.insert(target, Color::Gray);
                        stack.push((target, 0));
                    }
                    Color::Gray => {
                        // Found a back edge: the cycle is the stack suffix
                        // from `target` onward.
                        let start = stack
                            .iter()
                            .position(|&(n, _)| n == target)
                            .expect("gray node on stack");
                        return Some(stack[start..].iter().map(|&(n, _)| n).collect());
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(client: u64, ts: u64) -> TraceEvent {
        TraceEvent::TxnBegin {
            client,
            ts_begin: ts,
        }
    }

    fn read(client: u64, key: u64, ver_ts: u64, ver_client: u64) -> TraceEvent {
        TraceEvent::TxnRead {
            client,
            key,
            prepared: false,
            ver_ts,
            ver_client,
        }
    }

    fn write(client: u64, key: u64) -> TraceEvent {
        TraceEvent::TxnWrite { client, key }
    }

    fn commit(client: u64, ts: u64) -> TraceEvent {
        TraceEvent::Commit {
            client,
            ts_commit: ts,
            local: false,
        }
    }

    fn check(events: Vec<(u64, TraceEvent)>) -> Vec<Violation> {
        let h = History::from_events(events, 0);
        Checker::new(&h).check()
    }

    fn owned(shard: u64, epoch: u64, owner: u64) -> TraceEvent {
        TraceEvent::ShardOwned {
            shard,
            epoch,
            owner,
        }
    }

    fn released(shard: u64, epoch: u64, owner: u64) -> TraceEvent {
        TraceEvent::ShardReleased {
            shard,
            epoch,
            owner,
        }
    }

    fn served(replica: u64, watermark: u64, ts_begin: u64) -> TraceEvent {
        TraceEvent::ReadServed {
            replica,
            watermark,
            ts_begin,
        }
    }

    #[test]
    fn covered_backup_read_passes() {
        let violations = check(vec![(1, served(3, 50, 40))]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn stale_backup_read_is_detected_even_on_truncated_traces() {
        let events = vec![(1, served(3, 30, 40))];
        let complete = History::from_events(events.clone(), 0);
        assert_eq!(
            Checker::new(&complete)
                .check()
                .iter()
                .filter(|v| v.class == ViolationClass::StaleBackupRead)
                .count(),
            1
        );
        let truncated = History::from_events(events, 9);
        assert!(Checker::new(&truncated)
            .check()
            .iter()
            .any(|v| v.class == ViolationClass::StaleBackupRead));
    }

    #[test]
    fn clean_ownership_handoff_passes() {
        // Source owns shard 2, releases at the fence, dest claims after
        // cutover — and the release/claim may share an instant.
        let violations = check(vec![
            (1, owned(2, 1, 10)),
            (5, released(2, 1, 10)),
            (5, owned(2, 2, 30)),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn overlapping_ownership_is_detected() {
        // Dest claims before the source released: fence failure.
        let violations = check(vec![
            (1, owned(2, 1, 10)),
            (4, owned(2, 2, 30)),
            (6, released(2, 1, 10)),
        ]);
        assert_eq!(
            violations
                .iter()
                .filter(|v| v.class == ViolationClass::DualOwnership)
                .count(),
            1,
            "{violations:?}"
        );
    }

    #[test]
    fn reclaim_by_same_owner_is_not_dual() {
        // Retransmitted MigrationStart re-claims idempotently.
        let violations = check(vec![(1, owned(2, 1, 10)), (3, owned(2, 1, 10))]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn clean_serial_history_passes() {
        // c1 writes k1@20; c2 reads it at ts_begin 30 and writes k1@40.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, read(1, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (3, write(1, 1)),
            (4, commit(1, 20)),
            (10, begin(2, 30)),
            (11, read(2, 1, 20, 1)),
            (12, write(2, 1)),
            (13, commit(2, 40)),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn lost_update_cycle_is_detected() {
        // Both txns read the preload version of k1, then both write it:
        // WW orders t1 -> t2, but t2's read of the old version adds the
        // anti-dependency t2 -> t1. Classic lost update, a 2-cycle.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, read(1, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (3, begin(2, 11)),
            (4, read(2, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (5, write(1, 1)),
            (6, commit(1, 20)),
            (7, write(2, 1)),
            (8, commit(2, 21)),
        ]);
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::Serializability),
            "{violations:?}"
        );
    }

    #[test]
    fn future_read_is_detected() {
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (3, commit(1, 50)),
            (4, begin(2, 30)),
            (5, read(2, 1, 50, 1)), // 50 > ts_begin 30
            (6, commit(2, 31)),
        ]);
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::FutureRead),
            "{violations:?}"
        );
    }

    #[test]
    fn lost_acked_commit_is_detected() {
        // c1's write of k1@20 is acked at virtual time 4; c2 begins at
        // time 10 with ts_begin 30 yet reads the preload version.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (4, commit(1, 20)),
            (10, begin(2, 30)),
            (11, read(2, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (12, commit(2, 30)),
        ]);
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::ReplicationLostAck),
            "{violations:?}"
        );
    }

    fn serving(node: u64) -> TraceEvent {
        TraceEvent::RecoveryStep {
            node,
            shard: 0,
            phase: RecoveryPhase::Serving,
            detail: 0,
        }
    }

    #[test]
    fn lost_ack_after_cold_restart_is_a_durability_violation() {
        // Identical shape to `lost_acked_commit_is_detected`, but a
        // replica finished a cold restart (Serving) before the reader
        // began: the lost ack is the recovery path's fault.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (4, commit(1, 20)),
            (6, serving(5)),
            (10, begin(2, 30)),
            (11, read(2, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (12, commit(2, 30)),
        ]);
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::LostAckedWrite),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .all(|v| v.class != ViolationClass::ReplicationLostAck),
            "{violations:?}"
        );
    }

    #[test]
    fn recovery_after_the_read_does_not_reclassify() {
        // The cold restart finished only after the reader began, so it
        // cannot have caused the miss: plain replication lost-ack.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (4, commit(1, 20)),
            (10, begin(2, 30)),
            (11, read(2, 1, PRELOAD_TS, PRELOAD_CLIENT)),
            (12, commit(2, 30)),
            (20, serving(5)),
        ]);
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::ReplicationLostAck),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .all(|v| v.class != ViolationClass::LostAckedWrite),
            "{violations:?}"
        );
    }

    #[test]
    fn phantom_version_is_detected_only_on_complete_traces() {
        let events = vec![
            (1, begin(2, 30)),
            (2, read(2, 1, 99, 7)), // nobody wrote (99, 7)
            (3, commit(2, 31)),
        ];
        let complete = History::from_events(events.clone(), 0);
        assert!(Checker::new(&complete)
            .check()
            .iter()
            .any(|v| v.class == ViolationClass::PhantomVersion));
        let truncated = History::from_events(events, 5);
        assert!(Checker::new(&truncated)
            .check()
            .iter()
            .all(|v| v.class != ViolationClass::PhantomVersion));
    }

    #[test]
    fn unknown_outcome_write_observed_by_reader_joins_history() {
        // c1 reaches 2PC (declares writes) then times out; c2 later reads
        // c1's version: CTP must have committed it. No violations.
        let violations = check(vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (
                3,
                TraceEvent::Abort {
                    client: 1,
                    reason: AbortClass::UnknownOutcome,
                },
            ),
            (10, begin(2, 30)),
            (11, read(2, 1, 20, 1)),
            (12, commit(2, 31)),
        ]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn aborted_writes_never_enter_the_graph() {
        let events = vec![
            (1, begin(1, 10)),
            (2, write(1, 1)),
            (
                3,
                TraceEvent::Abort {
                    client: 1,
                    reason: AbortClass::Validation,
                },
            ),
        ];
        let h = History::from_events(events, 0);
        assert_eq!(h.committed(), 0);
        assert_eq!(h.aborted(), 1);
        assert!(Checker::new(&h).check().is_empty());
    }

    #[test]
    fn trace_slice_covers_involved_clients_only() {
        let events = vec![
            (1, begin(1, 10)),
            (2, begin(2, 11)),
            (3, commit(1, 20)),
            (4, commit(2, 21)),
        ];
        let h = History::from_events(events, 0);
        let idx = h
            .txns
            .iter()
            .position(|t| t.client == 1)
            .expect("client 1 txn");
        let slice = h.trace_slice(&[idx]);
        assert!(slice.contains(r#""client":1"#));
        assert!(!slice.contains(r#""client":2"#));
    }

    #[test]
    fn clock_bound_breach_is_detected_with_epsilon() {
        // c1 commits at ts 10_000_000 (acked at virtual time 4); c2 then
        // begins and commits at ts 1_000 — 2ε = 2_000_000 behind. A clock
        // that far off should have been fenced, so flag it.
        let events = vec![
            (1, begin(1, 9_000_000)),
            (2, write(1, 1)),
            (4, commit(1, 10_000_000)),
            (10, begin(2, 500)),
            (11, write(2, 2)),
            (12, commit(2, 1_000)),
        ];
        let h = History::from_events(events, 0);
        let violations = Checker::new(&h).with_epsilon(1_000_000).check();
        assert!(
            violations
                .iter()
                .any(|v| v.class == ViolationClass::ClockBoundBreach),
            "{violations:?}"
        );
        // Without the promise, timestamp/real-time inversions are just
        // skew, not a violation.
        let unpromised = Checker::new(&h).check();
        assert!(
            unpromised
                .iter()
                .all(|v| v.class != ViolationClass::ClockBoundBreach),
            "{unpromised:?}"
        );
    }

    #[test]
    fn inversion_within_two_epsilon_passes() {
        let events = vec![
            (1, begin(1, 9_000_000)),
            (2, write(1, 1)),
            (4, commit(1, 10_000_000)),
            (10, begin(2, 8_500_000)),
            (11, write(2, 2)),
            (12, commit(2, 8_600_000)), // behind by 1.4ms < 2ε = 2ms
        ];
        let h = History::from_events(events, 0);
        let violations = Checker::new(&h).with_epsilon(1_000_000).check();
        assert!(
            violations
                .iter()
                .all(|v| v.class != ViolationClass::ClockBoundBreach),
            "{violations:?}"
        );
    }

    #[test]
    fn concurrent_commits_are_not_clock_bound_checked() {
        // c2 began before c1's commit was acked: no real-time order, any
        // timestamp inversion is legitimate.
        let events = vec![
            (1, begin(1, 9_000_000)),
            (2, write(1, 1)),
            (3, begin(2, 500)),
            (4, commit(1, 10_000_000)),
            (5, write(2, 2)),
            (6, commit(2, 1_000)),
        ];
        let h = History::from_events(events, 0);
        let violations = Checker::new(&h).with_epsilon(1_000_000).check();
        assert!(
            violations
                .iter()
                .all(|v| v.class != ViolationClass::ClockBoundBreach),
            "{violations:?}"
        );
    }

    #[test]
    fn local_commits_are_exempt_from_the_clock_bound() {
        let events = vec![
            (1, begin(1, 9_000_000)),
            (2, write(1, 1)),
            (4, commit(1, 10_000_000)),
            (10, begin(2, 500)),
            (
                12,
                TraceEvent::Commit {
                    client: 2,
                    ts_commit: 1_000,
                    local: true,
                },
            ),
        ];
        let h = History::from_events(events, 0);
        let violations = Checker::new(&h).with_epsilon(1_000_000).check();
        assert!(
            violations
                .iter()
                .all(|v| v.class != ViolationClass::ClockBoundBreach),
            "{violations:?}"
        );
    }

    #[test]
    fn interrupted_txn_with_writes_is_unknown() {
        let events = vec![(1, begin(1, 10)), (2, write(1, 1)), (5, begin(1, 30))];
        let h = History::from_events(events, 0);
        assert_eq!(h.unknown(), 1);
    }
}
