//! The nemesis: a simulation task that walks a [`FaultPlan`] against a
//! running [`MilanaCluster`], injecting each fault at its scheduled time
//! and undoing it after its embedded hold period.
//!
//! The nemesis is strictly sequential — one fault is fully applied and
//! recovered before the next fires — which keeps randomly generated plans
//! survivable (a crash cycle always restores 2f+1 replicas before the next
//! crash can target the same shard) and keeps runs deterministic. After
//! the last fault, [`finale`] force-heals everything so the caller's audit
//! transaction can always complete.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use flashsim::Key;
use milana::cluster::{MilanaCluster, MASTER_NODE};
use milana::msg::TxnRequest;
use milana::PromoteError;
use semel::shard::ShardId;
use simkit::net::NodeId;
use simkit::rpc::RpcClient;
use simkit::{SimHandle, SimTime};
use timesync::Timestamp;

use crate::plan::{Fault, FaultPlan};

/// Clients occupy nodes `10_000 + i` (mirrors the cluster harness's
/// layout, which is not exported).
fn client_node(i: u32) -> NodeId {
    NodeId(10_000 + i)
}

/// The overload flooder sends from its own node so partitions targeting
/// cluster nodes never silence it by accident.
const FLOOD_NODE: NodeId = NodeId(20_000);

/// One fault as actually applied.
#[derive(Debug, Clone)]
pub struct AppliedFault {
    /// Virtual time the fault fired.
    pub at: SimTime,
    /// Fault class (see [`Fault::class`]).
    pub class: &'static str,
    /// False when the injection itself failed (e.g. the promotion after a
    /// crash found no live backup); the campaign records these per class.
    pub ok: bool,
}

/// What the nemesis did.
#[derive(Debug, Clone, Default)]
pub struct NemesisReport {
    /// Every fault in application order.
    pub applied: Vec<AppliedFault>,
    /// Promotions that returned an error (recorded, then retried by the
    /// finale).
    pub promote_failures: u64,
}

impl NemesisReport {
    /// Number of faults that applied cleanly.
    pub fn ok_count(&self) -> usize {
        self.applied.iter().filter(|f| f.ok).count()
    }
}

fn all_nodes(cluster: &MilanaCluster) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = cluster
        .replicas
        .iter()
        .flatten()
        .map(|slot| slot.addr.node)
        .collect();
    nodes.extend((0..cluster.config.clients).map(client_node));
    nodes.push(MASTER_NODE);
    nodes
}

fn isolate(h: &SimHandle, cluster: &MilanaCluster, node: NodeId) {
    let others: Vec<NodeId> = all_nodes(cluster)
        .into_iter()
        .filter(|&n| n != node)
        .collect();
    h.partition(&[node], &others);
}

async fn restart_dead_replicas(
    h: &SimHandle,
    cluster: &Rc<RefCell<MilanaCluster>>,
    shard: ShardId,
) {
    let replicas = cluster.borrow().config.replicas as usize;
    for idx in 0..replicas {
        let dead = {
            let c = cluster.borrow();
            h.is_dead(c.replicas[shard.0 as usize][idx].addr.node)
        };
        if dead {
            // A power-failed replica has no DRAM to warm-restart from: it
            // must take the cold path (flash mount scan + anti-entropy
            // catch-up). Everything else restarts warm, the historical
            // OS-process-crash model.
            let mut c = cluster.borrow_mut();
            if c.is_power_failed(shard, idx) {
                c.restart_replica_cold(shard, idx);
            } else {
                c.restart_replica_warm(shard, idx);
            }
        }
    }
}

async fn apply_one(
    h: &SimHandle,
    cluster: &Rc<RefCell<MilanaCluster>>,
    fault: &Fault,
    flood_rpc: &RpcClient,
    report: &mut NemesisReport,
) -> bool {
    match fault {
        Fault::CrashPrimary {
            shard,
            restart_after,
        } => {
            let shard = ShardId(*shard);
            let promote = {
                let c = cluster.borrow();
                c.fail_primary(shard);
                c.promote_backup(shard)
            };
            let ok = match promote.await {
                Ok(()) => true,
                Err(PromoteError::NoLiveBackup)
                | Err(PromoteError::Unreachable)
                | Err(PromoteError::NotABackup) => {
                    report.promote_failures += 1;
                    false
                }
            };
            h.sleep(*restart_after).await;
            restart_dead_replicas(h, cluster, shard).await;
            ok
        }
        Fault::PartitionPrimary { shard, heal_after } => {
            {
                let c = cluster.borrow();
                let primary = c.map.borrow().group(ShardId(*shard)).primary;
                isolate(h, &c, primary.node);
            }
            h.sleep(*heal_after).await;
            h.heal_partitions();
            true
        }
        Fault::PartitionClient { client, heal_after } => {
            {
                let c = cluster.borrow();
                isolate(h, &c, client_node(*client));
            }
            h.sleep(*heal_after).await;
            h.heal_partitions();
            true
        }
        Fault::NetDegrade { cfg, restore_after } => {
            h.set_net_faults(cfg.clone());
            h.sleep(*restore_after).await;
            h.clear_net_faults();
            true
        }
        Fault::ClockStep { client, delta_ns } => {
            let c = cluster.borrow();
            c.clients[*client as usize].clock().inject_step(*delta_ns);
            true
        }
        Fault::ClockDrift {
            client,
            rate_ns_per_s,
            hold,
        } => {
            {
                let c = cluster.borrow();
                c.clients[*client as usize]
                    .clock()
                    .inject_drift(*rate_ns_per_s, h.now());
            }
            h.sleep(*hold).await;
            // Restore the rate; the accrued offset stays until the next
            // resync corrects it (drift damage is not magically undone).
            let c = cluster.borrow();
            c.clients[*client as usize].clock().inject_drift(0, h.now());
            true
        }
        Fault::ClockJump {
            client,
            delta_ns,
            holdover,
        } => {
            {
                let c = cluster.borrow();
                let clock = c.clients[*client as usize].clock();
                clock.inject_step(*delta_ns);
                clock.enter_holdover();
            }
            h.sleep(*holdover).await;
            let c = cluster.borrow();
            c.clients[*client as usize].clock().exit_holdover(h.now());
            true
        }
        Fault::Overload {
            shard,
            burst_rps,
            restore_after,
        } => {
            // Fire-and-forget GetAny casts: real admission cost and backend
            // reads on the primary, but no replies to wait for and no
            // transaction-metadata side effects (GetAny never notes reads).
            // Sent as back-to-back per-millisecond bursts so the casts
            // arrive clustered and actually spike the in-flight cost past
            // the admission gate, instead of trickling through one at a
            // time.
            let primary = cluster.borrow().map.borrow().group(ShardId(*shard)).primary;
            let per_tick = (*burst_rps / 1_000).max(1);
            let until = h.now() + *restore_after;
            let mut i = 0u64;
            while h.now() < until {
                for _ in 0..per_tick {
                    flood_rpc.cast(
                        primary,
                        TxnRequest::GetAny {
                            key: Key::from(i % 8),
                            at: Timestamp::from_sim(h.now()),
                        },
                    );
                    i += 1;
                }
                h.sleep(Duration::from_millis(1)).await;
            }
            true
        }
        Fault::PowerFail {
            shard,
            restart_after,
        } => {
            let shard = ShardId(*shard);
            let promote = {
                let c = cluster.borrow();
                let primary = c.map.borrow().group(shard).primary;
                let idx = c.replicas[shard.0 as usize]
                    .iter()
                    .position(|slot| slot.addr == primary)
                    .expect("mapped primary has a replica slot");
                c.power_fail_replica(shard, idx);
                c.promote_backup(shard)
            };
            let ok = match promote.await {
                Ok(()) => true,
                Err(PromoteError::NoLiveBackup)
                | Err(PromoteError::Unreachable)
                | Err(PromoteError::NotABackup) => {
                    report.promote_failures += 1;
                    false
                }
            };
            h.sleep(*restart_after).await;
            restart_dead_replicas(h, cluster, shard).await;
            ok
        }
        Fault::FlashDegrade {
            shard,
            replica,
            cfg,
            restore_after,
        } => {
            {
                let c = cluster.borrow();
                c.replicas[*shard as usize][*replica as usize]
                    .server
                    .backend()
                    .inject_media_faults(cfg.clone());
            }
            h.sleep(*restore_after).await;
            let c = cluster.borrow();
            c.replicas[*shard as usize][*replica as usize]
                .server
                .backend()
                .inject_media_faults(Default::default());
            true
        }
    }
}

/// Applies `plan` to `cluster` in order, then runs [`finale`]. Returns a
/// report of what was injected; injection failures (e.g. a promotion that
/// raced another fault) are recorded, not panicked.
pub async fn run_nemesis(
    h: &SimHandle,
    cluster: &Rc<RefCell<MilanaCluster>>,
    plan: &FaultPlan,
) -> NemesisReport {
    let mut report = NemesisReport::default();
    let flood_rpc = RpcClient::new(h, FLOOD_NODE, 7);
    for timed in &plan.faults {
        h.sleep(timed.after).await;
        let at = h.now();
        let class = timed.fault.class();
        let ok = apply_one(h, cluster, &timed.fault, &flood_rpc, &mut report).await;
        report.applied.push(AppliedFault { at, class, ok });
    }
    finale(h, cluster).await;
    report
}

/// Force-recovers the cluster: heals partitions, clears network and media
/// faults, restarts every dead replica, and retries promotion until every
/// shard has a live serving primary. Guarantees a subsequent audit
/// transaction can complete.
pub async fn finale(h: &SimHandle, cluster: &Rc<RefCell<MilanaCluster>>) {
    h.heal_partitions();
    h.clear_net_faults();
    {
        let c = cluster.borrow();
        for slot in c.replicas.iter().flatten() {
            slot.server
                .backend()
                .inject_media_faults(Default::default());
        }
    }
    let shards = cluster.borrow().config.shards;
    for s in 0..shards {
        restart_dead_replicas(h, cluster, ShardId(s)).await;
    }
    // Every replica is alive now; make sure each shard's mapped primary
    // actually serves (a crash may have been followed by a failed
    // promotion, or the mapped primary may have died while partitioned).
    for s in 0..shards {
        let shard = ShardId(s);
        for _attempt in 0..10 {
            let serving = {
                let c = cluster.borrow();
                let primary = c.map.borrow().group(shard).primary;
                !h.is_dead(primary.node) && c.primary(shard).is_primary()
            };
            if serving {
                break;
            }
            let promote = cluster.borrow().promote_backup(shard);
            let _ = promote.await;
            h.sleep(Duration::from_millis(20)).await;
        }
    }
}
