//! # obskit — deterministic observability for the MILANA reproduction
//!
//! The paper's evaluation (§5) lives or dies on *explaining* aborts and
//! latency: which clock discipline, which validation path, which flash
//! operation produced each outcome. `obskit` is the single instrumentation
//! substrate every layer of the stack shares:
//!
//! - [`registry`] — a hierarchical **metric registry** of counters, gauges,
//!   and HDR histograms with cheap cloneable handles, usable from simulated
//!   single-threaded tasks (`Rc`-based, not atomics: the simulation is
//!   deterministic and single-threaded by design);
//! - [`hist`] — the log-linear histogram (absorbed from `simkit::metrics`,
//!   which now re-exports it);
//! - [`trace`] — **structured trace events** with virtual timestamps
//!   (txn lifecycle, replica acks, GC, flash ops, clock syncs) recorded
//!   into a bounded ring buffer;
//! - [`abort`] — the **abort-reason taxonomy** shared by MILANA, Centiman,
//!   and SEMEL, with per-class breakdown counters;
//! - [`series`] — throughput time-series over fixed virtual-time windows;
//! - [`json`] — a dependency-free JSON writer whose output is **byte-stable
//!   across same-seed runs** (ordered keys, shortest-roundtrip floats, no
//!   wall-clock anywhere);
//! - [`stats`] — [`stats::TxnStats`], the workload-level bundle the Retwis
//!   driver and every experiment harness record into.
//!
//! Everything here is deliberately free of dependencies (including on
//! `simkit`): virtual timestamps are plain nanosecond integers, so the
//! crate sits at the bottom of the workspace and every layer above can
//! report into it.
//!
//! # Examples
//!
//! ```
//! use obskit::registry::Registry;
//!
//! let reg = Registry::new();
//! let commits = reg.counter("milana.client.commits");
//! let lat = reg.histogram("milana.client.latency_ns");
//! commits.inc();
//! lat.record(12_345);
//! let json = reg.snapshot().to_string();
//! assert!(json.contains("\"milana.client.commits\":1"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abort;
pub mod hist;
pub mod json;
pub mod registry;
pub mod series;
pub mod stats;
pub mod trace;

pub use abort::{AbortBreakdown, AbortClass};
pub use hist::Histogram;
pub use json::Json;
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use series::TimeSeries;
pub use stats::{FrozenTxnStats, TxnStats};
pub use trace::{
    FlashOpKind, FlushReason, MigrationPhase, RecoveryPhase, ShedReason, TraceEvent, Tracer,
};

/// The observability bundle a component is handed: a metric registry plus a
/// trace sink. Cloning shares both (handles are `Rc`-backed).
///
/// Configs embed an `Obs` with `Default` (metrics on, tracing off) so
/// existing `..Default::default()` construction keeps working; harnesses
/// that want traces call [`Obs::with_trace`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Metric registry (always enabled; counters are a `Cell` bump).
    pub registry: Registry,
    /// Trace sink (disabled unless constructed with [`Obs::with_trace`]).
    pub tracer: Tracer,
}

impl Obs {
    /// Metrics enabled, tracing disabled.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Metrics enabled, tracing into a ring buffer of `capacity` events.
    pub fn with_trace(capacity: usize) -> Obs {
        Obs {
            registry: Registry::new(),
            tracer: Tracer::bounded(capacity),
        }
    }
}
