//! [`TxnStats`] — the workload-level stat bundle the Retwis driver and
//! every experiment harness record into. Supersedes the ad-hoc
//! `WorkloadStats` structs that used to live in `retwis::driver` and
//! `bench::common`.

use std::time::Duration;

use crate::abort::{AbortBreakdown, AbortClass};
use crate::hist::Histogram;
use crate::json::Json;
use crate::registry::{Counter, HistogramHandle, Registry};
use crate::series::TimeSeries;

/// Default throughput window: 100 ms of virtual time.
pub const DEFAULT_WINDOW_NS: u64 = 100_000_000;

/// Shared workload counters. Cloning shares every underlying metric, so a
/// fleet of driver instances can record into one bundle with no wrapper
/// `Rc<RefCell<..>>` — the handles are already interior-mutable and cheap.
#[derive(Debug, Clone)]
pub struct TxnStats {
    /// Transactions that eventually committed.
    pub commits: Counter,
    /// Aborted attempts (a transaction retried 3 times counts 3).
    pub aborts: Counter,
    /// Attempts that ended in transport timeouts / unknown outcomes.
    pub timeouts: Counter,
    /// Transactions abandoned after `max_retries`.
    pub abandoned: Counter,
    /// Transactions the workload *offered* (open-loop arrivals); zero for
    /// closed-loop drivers that don't track arrivals.
    pub arrivals: Counter,
    /// Transactions terminated by load shedding (admission refusal or
    /// deadline expiry) without ever reaching commit/abort accounting.
    pub sheds: Counter,
    /// Latency from first begin to successful commit, nanoseconds.
    pub latency: HistogramHandle,
    /// Aborted attempts broken down by normalized reason.
    pub abort_reasons: AbortBreakdown,
    /// Commits per virtual-time window (throughput over time).
    pub commit_series: TimeSeries,
}

impl Default for TxnStats {
    fn default() -> TxnStats {
        TxnStats::new()
    }
}

impl TxnStats {
    /// A detached bundle (not listed in any registry).
    pub fn new() -> TxnStats {
        TxnStats {
            commits: Counter::detached(),
            aborts: Counter::detached(),
            timeouts: Counter::detached(),
            abandoned: Counter::detached(),
            arrivals: Counter::detached(),
            sheds: Counter::detached(),
            latency: HistogramHandle::detached(),
            abort_reasons: AbortBreakdown::new(),
            commit_series: TimeSeries::new(DEFAULT_WINDOW_NS),
        }
    }

    /// A bundle whose counters and latency histogram are registered under
    /// `prefix` (e.g. `"retwis"` yields `retwis.commits`, ...). The abort
    /// breakdown and time series are exported via [`TxnStats::to_json`].
    pub fn registered(registry: &Registry, prefix: &str) -> TxnStats {
        TxnStats {
            commits: registry.counter(&format!("{prefix}.commits")),
            aborts: registry.counter(&format!("{prefix}.aborts")),
            timeouts: registry.counter(&format!("{prefix}.timeouts")),
            abandoned: registry.counter(&format!("{prefix}.abandoned")),
            arrivals: registry.counter(&format!("{prefix}.arrivals")),
            sheds: registry.counter(&format!("{prefix}.sheds")),
            latency: registry.histogram(&format!("{prefix}.latency_ns")),
            abort_reasons: AbortBreakdown::new(),
            commit_series: TimeSeries::new(DEFAULT_WINDOW_NS),
        }
    }

    /// Records a committed transaction: latency sample plus throughput
    /// window bump.
    pub fn record_commit(&self, at_ns: u64, latency_ns: u64) {
        self.commits.inc();
        self.latency.record(latency_ns);
        self.commit_series.record(at_ns);
    }

    /// Records an aborted attempt under `reason`.
    pub fn record_abort(&self, reason: AbortClass) {
        self.aborts.inc();
        self.abort_reasons.record(reason);
    }

    /// Records a timeout / unknown-outcome attempt.
    pub fn record_timeout(&self) {
        self.timeouts.inc();
        self.abort_reasons.record(AbortClass::UnknownOutcome);
    }

    /// Records a transaction abandoned after exhausting retries.
    pub fn record_abandoned(&self) {
        self.abandoned.inc();
        self.abort_reasons.record(AbortClass::Abandoned);
    }

    /// Records one offered transaction (open-loop arrival).
    pub fn record_arrival(&self) {
        self.arrivals.inc();
    }

    /// Records a transaction terminated by load shedding. Kept outside
    /// `abort_reasons` so `abort_reasons.total()` still equals
    /// `aborts + timeouts + abandoned` (sheds are refusals, not attempts).
    pub fn record_shed(&self) {
        self.sheds.inc();
    }

    /// Abort rate: aborted attempts over all attempts (the paper's
    /// Figure 6 / 7 metric).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits.get() + self.aborts.get();
        if attempts == 0 {
            0.0
        } else {
            self.aborts.get() as f64 / attempts as f64
        }
    }

    /// Committed transactions per virtual second over `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        self.commits.get() as f64 / elapsed.as_secs_f64()
    }

    /// Adds another bundle's counts and samples into this one (used to
    /// aggregate across independent runs, e.g. per clock model).
    pub fn merge_from(&self, other: &TxnStats) {
        self.commits.add(other.commits.get());
        self.aborts.add(other.aborts.get());
        self.timeouts.add(other.timeouts.get());
        self.abandoned.add(other.abandoned.get());
        self.arrivals.add(other.arrivals.get());
        self.sheds.add(other.sheds.get());
        self.latency.merge_from(&other.latency.snapshot());
        self.abort_reasons.merge_from(&other.abort_reasons);
        // Window counts merge positionally (both series share the default
        // window width).
    }

    /// Folds a frozen snapshot back into this live bundle — the same
    /// aggregation as [`TxnStats::merge_from`] (the commit series is
    /// deliberately left alone there too), for accumulating results that
    /// crossed a worker-thread boundary.
    pub fn merge_frozen(&self, other: &FrozenTxnStats) {
        self.commits.add(other.commits);
        self.aborts.add(other.aborts);
        self.timeouts.add(other.timeouts);
        self.abandoned.add(other.abandoned);
        self.arrivals.add(other.arrivals);
        self.sheds.add(other.sheds);
        self.latency.merge_from(&other.latency);
        self.abort_reasons.merge_counts(&other.abort_counts);
    }

    /// Deterministic JSON summary of the whole bundle.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("commits", Json::U64(self.commits.get()))
            .field("aborts", Json::U64(self.aborts.get()))
            .field("timeouts", Json::U64(self.timeouts.get()))
            .field("abandoned", Json::U64(self.abandoned.get()))
            .field("arrivals", Json::U64(self.arrivals.get()))
            .field("sheds", Json::U64(self.sheds.get()))
            .field("abort_rate", Json::F64(self.abort_rate()))
            .field("abort_reasons", self.abort_reasons.to_json())
            .field("latency_ns", self.latency.snapshot().summary_json())
            .field("commit_series", self.commit_series.to_json())
    }

    /// A plain (`Send`) copy of the whole bundle, for handing results out
    /// of a worker thread. Every derived value and JSON surface of
    /// [`FrozenTxnStats`] is byte-identical to the live bundle's.
    pub fn freeze(&self) -> FrozenTxnStats {
        FrozenTxnStats {
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            timeouts: self.timeouts.get(),
            abandoned: self.abandoned.get(),
            arrivals: self.arrivals.get(),
            sheds: self.sheds.get(),
            latency: self.latency.snapshot(),
            abort_counts: self.abort_reasons.snapshot(),
            series_window_ns: self.commit_series.window_ns(),
            series_counts: self.commit_series.counts(),
        }
    }
}

/// A [`TxnStats`] snapshot with no shared interior — plain counters, an
/// owned [`Histogram`], owned abort and series counts — so a worker
/// thread can return it across the pool boundary (`TxnStats` is
/// `Rc`-backed and `!Send`). Mirrors the live bundle's derived metrics
/// and JSON byte for byte.
#[derive(Debug, Clone)]
pub struct FrozenTxnStats {
    /// Transactions that eventually committed.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Attempts that ended in transport timeouts / unknown outcomes.
    pub timeouts: u64,
    /// Transactions abandoned after `max_retries`.
    pub abandoned: u64,
    /// Transactions the workload offered (open-loop arrivals).
    pub arrivals: u64,
    /// Transactions terminated by load shedding.
    pub sheds: u64,
    /// Commit latency samples, nanoseconds.
    pub latency: Histogram,
    abort_counts: [u64; AbortClass::ALL.len()],
    series_window_ns: u64,
    series_counts: Vec<u64>,
}

impl FrozenTxnStats {
    /// Abort rate: aborted attempts over all attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Committed transactions per virtual second over `elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        self.commits as f64 / elapsed.as_secs_f64()
    }

    /// Count for one abort class.
    pub fn abort_count(&self, class: AbortClass) -> u64 {
        let idx = AbortClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        self.abort_counts[idx]
    }

    /// Adds another snapshot's counts and samples into this one (the
    /// ordered-merge step after a parallel sweep; same aggregation as
    /// [`TxnStats::merge_from`]).
    pub fn merge_from(&mut self, other: &FrozenTxnStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.timeouts += other.timeouts;
        self.abandoned += other.abandoned;
        self.arrivals += other.arrivals;
        self.sheds += other.sheds;
        self.latency.merge(&other.latency);
        for (a, b) in self.abort_counts.iter_mut().zip(other.abort_counts) {
            *a += b;
        }
        if self.series_counts.len() < other.series_counts.len() {
            self.series_counts.resize(other.series_counts.len(), 0);
        }
        for (a, b) in self.series_counts.iter_mut().zip(&other.series_counts) {
            *a += b;
        }
    }

    /// The abort breakdown as JSON — byte-identical to
    /// [`AbortBreakdown::to_json`] for the same counts.
    pub fn abort_reasons_json(&self) -> Json {
        let mut doc = Json::obj();
        for (class, &count) in AbortClass::ALL.iter().zip(&self.abort_counts) {
            doc = doc.field(class.as_str(), Json::U64(count));
        }
        doc
    }

    /// The commit series as JSON — byte-identical to
    /// [`TimeSeries::to_json`] for the same counts.
    pub fn commit_series_json(&self) -> Json {
        Json::obj()
            .field("window_ns", Json::U64(self.series_window_ns))
            .field(
                "counts",
                Json::arr(self.series_counts.iter().map(|&c| Json::U64(c))),
            )
    }

    /// Deterministic JSON summary — byte-identical to
    /// [`TxnStats::to_json`] for the same recorded values.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("commits", Json::U64(self.commits))
            .field("aborts", Json::U64(self.aborts))
            .field("timeouts", Json::U64(self.timeouts))
            .field("abandoned", Json::U64(self.abandoned))
            .field("arrivals", Json::U64(self.arrivals))
            .field("sheds", Json::U64(self.sheds))
            .field("abort_rate", Json::F64(self.abort_rate()))
            .field("abort_reasons", self.abort_reasons_json())
            .field("latency_ns", self.latency.summary_json())
            .field("commit_series", self.commit_series_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_flow_to_every_surface() {
        let s = TxnStats::new();
        s.record_commit(50_000_000, 1_000);
        s.record_commit(150_000_000, 3_000);
        s.record_abort(AbortClass::Validation);
        s.record_timeout();
        s.record_abandoned();
        s.record_arrival();
        s.record_shed();
        assert_eq!(s.arrivals.get(), 1);
        assert_eq!(s.sheds.get(), 1);
        // Sheds are refusals, not attempts: they stay out of the abort
        // breakdown so total() keeps matching aborts + timeouts + abandoned.
        assert_eq!(
            s.abort_reasons.total(),
            s.aborts.get() + s.timeouts.get() + s.abandoned.get()
        );
        assert_eq!(s.commits.get(), 2);
        assert_eq!(s.aborts.get(), 1);
        assert_eq!(s.timeouts.get(), 1);
        assert_eq!(s.abandoned.get(), 1);
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.abort_reasons.get(AbortClass::Validation), 1);
        assert_eq!(s.abort_reasons.get(AbortClass::UnknownOutcome), 1);
        assert_eq!(s.abort_reasons.get(AbortClass::Abandoned), 1);
        assert_eq!(s.commit_series.total(), 2);
        let rate = s.abort_rate();
        assert!((rate - 1.0 / 3.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn clones_share_everything() {
        let a = TxnStats::new();
        let b = a.clone();
        b.record_commit(0, 10);
        assert_eq!(a.commits.get(), 1);
        assert_eq!(a.latency.count(), 1);
    }

    #[test]
    fn merge_aggregates_runs() {
        let a = TxnStats::new();
        let b = TxnStats::new();
        a.record_commit(0, 100);
        b.record_commit(0, 300);
        b.record_abort(AbortClass::PreparedRead);
        a.merge_from(&b);
        assert_eq!(a.commits.get(), 2);
        assert_eq!(a.aborts.get(), 1);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.abort_reasons.get(AbortClass::PreparedRead), 1);
    }

    #[test]
    fn freeze_mirrors_live_bundle_byte_for_byte() {
        let s = TxnStats::new();
        s.record_commit(50_000_000, 1_000);
        s.record_commit(350_000_000, 9_000);
        s.record_abort(AbortClass::Validation);
        s.record_abort(AbortClass::ClockSuspect);
        s.record_timeout();
        s.record_arrival();
        s.record_shed();
        let f = s.freeze();
        assert_eq!(f.to_json().to_string(), s.to_json().to_string());
        assert_eq!(
            f.abort_reasons_json().to_string(),
            s.abort_reasons.to_json().to_string()
        );
        assert_eq!(
            f.commit_series_json().to_string(),
            s.commit_series.to_json().to_string()
        );
        assert_eq!(f.abort_rate(), s.abort_rate());
        assert_eq!(
            f.abort_count(AbortClass::Validation),
            s.abort_reasons.get(AbortClass::Validation)
        );
    }

    #[test]
    fn frozen_merge_matches_live_merge() {
        let a = TxnStats::new();
        let b = TxnStats::new();
        a.record_commit(0, 100);
        b.record_commit(250_000_000, 300);
        b.record_abort(AbortClass::PreparedRead);
        b.record_timeout();
        let mut fa = a.freeze();
        let fb = b.freeze();
        a.merge_from(&b);
        fa.merge_from(&fb);
        // The live merge drops series counts (documented); the frozen
        // merge keeps them positionally, so compare everything else.
        assert_eq!(fa.commits, a.commits.get());
        assert_eq!(fa.aborts, a.aborts.get());
        assert_eq!(fa.timeouts, a.timeouts.get());
        assert_eq!(
            fa.abort_reasons_json().to_string(),
            a.abort_reasons.to_json().to_string()
        );
        assert_eq!(
            fa.latency.summary_json().to_string(),
            a.latency.snapshot().summary_json().to_string()
        );
    }

    #[test]
    fn registered_names_land_in_registry() {
        let reg = Registry::new();
        let s = TxnStats::registered(&reg, "retwis");
        s.record_commit(0, 5);
        let snap = reg.snapshot().to_string();
        assert!(snap.contains(r#""retwis.commits":1"#), "{snap}");
        assert!(snap.contains(r#""retwis.latency_ns":{"count":1"#), "{snap}");
    }
}
